// Sharded checkpoint store scaling sweep: acked store() throughput as a
// function of shard count x replication factor x concurrent writers, over
// real TCP ORBs — one server ORB per shard (distinct "hosts"), dispatch-pool
// execution, a multiplexing client.
//
// The single-shard baseline is the PR 2 deployment: every checkpoint in the
// cluster funnels through ONE servant, so the dispatch pool's FIFO-per-
// object-key ordering serializes all writers no matter how many dispatch
// threads the server owns.  Sharding turns the store into S independent
// object keys, so the same thread budget executes S writes concurrently.
// Replication factor R adds R-1 asynchronous followers per shard (the
// ReplicatingStore forward path) — off the ack path by design, so the
// sweep shows what the durability upgrade costs at ack time.
//
// A second section measures FileCheckpointStore fsync modes (off/data/full)
// directly: the per-write price of the durability satellite.
//
// Emits BENCH_ckptstore.json ("shard_sweep" + "fsync_modes" sections).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ft/checkpoint_store.hpp"
#include "ft/delta.hpp"
#include "ft/sharded_store.hpp"
#include "ft/store_replication.hpp"
#include "orb/orb.hpp"

namespace {

constexpr std::size_t kStateBytes = 4096;

corba::Blob blob_of(std::size_t bytes) {
  return corba::Blob(bytes, std::byte{0x5a});
}

/// Deterministic per-write cost standing in for a durable store's media
/// latency: a checksum pass plus a blocking stall of fsync-class duration.
/// The sim-time CostModel cannot be used here — this is a wall-clock bench —
/// and without per-write cost the loopback transport, not the servant, would
/// be the bottleneck and the sweep would measure the network instead of the
/// store.  The stall is a *blocking wait* rather than CPU spin on purpose:
/// durable-write cost is I/O latency, and blocking waits overlap across
/// shard servants even on a single-core runner, while the single servant's
/// FIFO-per-object-key dispatch serializes them — the exact bottleneck the
/// sweep exists to expose.
class BurnStore final : public ft::CheckpointStoreClient {
 public:
  static constexpr std::chrono::microseconds kWriteStall{1000};

  explicit BurnStore(std::shared_ptr<ft::CheckpointStoreClient> inner)
      : inner_(std::move(inner)) {}

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override {
    burn(state);
    inner_->store(key, version, state);
  }
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override {
    burn(delta);
    inner_->store_delta(key, base_version, version, delta);
  }
  std::optional<ft::Checkpoint> load(const std::string& key) override {
    return inner_->load(key);
  }
  void remove(const std::string& key) override { inner_->remove(key); }
  std::vector<std::string> keys() override { return inner_->keys(); }
  std::uint64_t head_version(const std::string& key) override {
    return inner_->head_version(key);
  }
  ft::CheckpointLog fetch_log(const std::string& key,
                              std::uint64_t since) override {
    return inner_->fetch_log(key, since);
  }

 private:
  static void burn(const corba::Blob& payload) {
    std::uint64_t sink = ft::fnv1a(payload);
    benchmark_do_not_optimize(sink);
    std::this_thread::sleep_for(kWriteStall);  // WAL-append / fsync latency
  }
  // Local stand-in for benchmark::DoNotOptimize (this bench does not link
  // google-benchmark).
  static void benchmark_do_not_optimize(std::uint64_t& value) {
    asm volatile("" : "+r"(value));
  }

  std::shared_ptr<ft::CheckpointStoreClient> inner_;
};

struct ShardServer {
  std::shared_ptr<corba::ORB> orb;
  std::shared_ptr<ft::ReplicatingStore> primary;
  std::string ior;
};

/// One checkpoint key per writer, chosen to spread evenly over the ring.
/// A production store carries hundreds of keys, so per-shard load is near
/// uniform; eight keys are a tiny sample of that population, and an unlucky
/// draw would measure hash luck instead of the architecture.  Balancing the
/// sample removes the luck without touching the contract under test: the
/// single-servant baseline still serializes every key behind one dispatch
/// FIFO no matter which keys are picked.
std::vector<std::string> pick_writer_keys(std::size_t shards, int writers) {
  const ft::HashRing ring(shards, ft::ShardedCheckpointStore::Options{}.virtual_nodes);
  const std::size_t cap =
      (static_cast<std::size_t>(writers) + shards - 1) / shards;
  std::vector<std::size_t> load(shards, 0);
  std::vector<std::string> keys;
  for (int n = 0; keys.size() < static_cast<std::size_t>(writers); ++n) {
    const std::string key = "obj-" + std::to_string(n);
    const std::size_t shard = ring.shard_for(key);
    if (load[shard] >= cap) continue;
    ++load[shard];
    keys.push_back(key);
  }
  return keys;
}

struct SweepPoint {
  double ops_per_sec = 0.0;
  double ns_per_store = 0.0;
  std::uint64_t forwards = 0;
};

/// One sweep point: `shards` server ORBs, replication factor `replicas`,
/// `writers` client threads issuing `reps` synchronous store() calls each
/// (distinct keys, monotone versions, 4 KiB states).  The clock covers the
/// acked writes only; follower flush happens after it stops.
SweepPoint run_point(std::size_t shards, std::size_t replicas, int writers,
                     int reps) {
  std::vector<ShardServer> servers;
  servers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ShardServer server;
    server.orb = corba::ORB::init({
        .endpoint_name = "ckpt-shard-" + std::to_string(s),
        .enable_tcp = true,
        .dispatch_threads = 2,
        .io_threads = 1,
    });
    ft::ReplicatingStore::Options options;
    for (std::size_t r = 1; r < replicas; ++r)
      options.followers.push_back(std::make_shared<ft::MemoryCheckpointStore>());
    options.publish_events = false;
    options.shard_id = s;
    server.primary = std::make_shared<ft::ReplicatingStore>(
        std::make_shared<BurnStore>(std::make_shared<ft::MemoryCheckpointStore>()),
        std::move(options));
    const corba::ObjectRef ref = server.orb->activate(
        std::make_shared<ft::CheckpointStoreServant>(server.primary));
    server.ior = server.orb->object_to_string(ref);
    servers.push_back(std::move(server));
  }

  auto client_orb = corba::ORB::init(
      {.endpoint_name = "ckpt-client", .enable_tcp = true});

  // One sharded client per writer thread, exactly as independent worker
  // processes would hold them.
  auto make_client = [&] {
    std::vector<ft::ShardedCheckpointStore::ShardReplicas> sets;
    for (const ShardServer& server : servers) {
      ft::ShardedCheckpointStore::ShardReplicas set;
      set.replicas.push_back(std::make_shared<ft::CheckpointStoreStub>(
          client_orb->string_to_object(server.ior)));
      sets.push_back(std::move(set));
    }
    return std::make_shared<ft::ShardedCheckpointStore>(std::move(sets));
  };

  const corba::Blob state = blob_of(kStateBytes);
  const std::vector<std::string> keys = pick_writer_keys(shards, writers);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto client = make_client();
      const std::string& key = keys[static_cast<std::size_t>(w)];
      for (int rep = 1; rep <= reps; ++rep)
        client->store(key, static_cast<std::uint64_t>(rep), state);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  SweepPoint point;
  const double seconds = std::chrono::duration<double>(elapsed).count();
  const double total = static_cast<double>(writers) * reps;
  point.ops_per_sec = total / seconds;
  point.ns_per_store =
      std::chrono::duration<double, std::nano>(elapsed).count() / total;
  for (ShardServer& server : servers) {
    server.primary->flush();  // drain follower forwards outside the clock
    point.forwards += server.primary->forwards();
  }
  return point;
}

void run_shard_sweep(std::vector<bench::JsonRow>& rows) {
  using namespace bench;
  const bool smoke = smoke_mode();
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> replica_counts = {1, 2};
  const int writers = 8;
  const int reps = smoke ? 250 : 1500;

  std::printf("Sharded store sweep (%d writers, %zu-byte states, TCP):\n\n",
              writers, kStateBytes);
  std::printf("%7s  %9s  %12s  %12s  %10s\n", "Shards", "Replicas", "ops/s",
              "ns/store", "vs single");
  print_rule(58);

  for (std::size_t replicas : replica_counts) {
    double single_ops = 0.0;
    for (std::size_t shards : shard_counts) {
      const SweepPoint point = run_point(shards, replicas, writers, reps);
      if (shards == 1) single_ops = point.ops_per_sec;
      const double speedup =
          single_ops > 0.0 ? point.ops_per_sec / single_ops : 1.0;
      std::printf("%7zu  %9zu  %12.0f  %12.0f  %9.2fx\n", shards, replicas,
                  point.ops_per_sec, point.ns_per_store, speedup);
      rows.push_back({jstr("section", "shard_sweep"),
                      jstr("mode", shards == 1 ? "single" : "sharded"),
                      jint("shards", shards), jint("replicas", replicas),
                      jint("writers", static_cast<std::uint64_t>(writers)),
                      jint("state_bytes", kStateBytes),
                      jnum("ops_per_sec", point.ops_per_sec),
                      jnum("ns_per_store", point.ns_per_store),
                      jnum("speedup_vs_single", speedup),
                      jint("replication_forwards", point.forwards)});
    }
  }
}

void run_fsync_sweep(std::vector<bench::JsonRow>& rows) {
  using namespace bench;
  const int reps = smoke_mode() ? 64 : 512;
  const corba::Blob state = blob_of(kStateBytes);

  std::printf("\nFileCheckpointStore fsync modes (%zu-byte states):\n\n",
              kStateBytes);
  std::printf("%6s  %12s\n", "Mode", "us/store");
  print_rule(20);

  for (const ft::FsyncMode mode :
       {ft::FsyncMode::off, ft::FsyncMode::data, ft::FsyncMode::full}) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("corbaft_bench_ckptstore_" + std::string(ft::to_string(mode)));
    std::filesystem::remove_all(dir);
    ft::FileCheckpointStore store(dir, ft::DeltaPolicy{}, mode);
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 1; rep <= reps; ++rep)
      store.store("k", static_cast<std::uint64_t>(rep), state);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    std::filesystem::remove_all(dir);

    const double us_per_store =
        std::chrono::duration<double, std::micro>(elapsed).count() / reps;
    std::printf("%6s  %12.1f\n", std::string(ft::to_string(mode)).c_str(),
                us_per_store);
    rows.push_back({jstr("section", "fsync_modes"),
                    jstr("mode", std::string(ft::to_string(mode))),
                    jint("state_bytes", kStateBytes),
                    jnum("us_per_store", us_per_store),
                    jint("stores", static_cast<std::uint64_t>(reps))});
  }
}

}  // namespace

int main() {
  std::vector<bench::JsonRow> rows;
  run_shard_sweep(rows);
  run_fsync_sweep(rows);
  bench::write_bench_json("BENCH_ckptstore.json", "micro_ckptstore", rows);
  return 0;
}
