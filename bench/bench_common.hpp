// Shared scaffolding for the experiment harness: scenario configuration
// (the paper's 30/3 and 100/7 setups), deployment helpers and table
// printing.  Every headline bench builds a fresh simulated NOW per data
// point, so runs are independent and deterministic.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <numeric>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "opt/manager.hpp"
#include "sim/fault_injector.hpp"

namespace bench {

/// True when the bench should run a reduced workload (CI smoke runs, the
/// `bench-smoke` target).  An env var rather than a flag so google-benchmark
/// binaries don't need their own argument parsing.
inline bool smoke_mode() {
  return std::getenv("CORBAFT_BENCH_SMOKE") != nullptr;
}

// --- perf-trajectory JSON ----------------------------------------------------
// BENCH_*.json files record each bench's headline numbers as
//   {"bench": <name>, "schema_version": 1, "rows": [{...}, ...]}
// with flat string/number fields per row, so the trajectory can be diffed
// across commits by simple tooling.

struct JsonField {
  std::string key;
  std::string literal;  ///< pre-rendered JSON value (quoted or numeric)
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline JsonField jstr(std::string key, const std::string& value) {
  return {std::move(key), "\"" + json_escape(value) + "\""};
}

inline JsonField jnum(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return {std::move(key), buf};
}

inline JsonField jint(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value)};
}

using JsonRow = std::vector<JsonField>;

/// Writes the trajectory file; returns false (after a warning) on IO errors
/// so benches keep printing their tables even on a read-only work dir.
/// Every file also embeds the run's global metrics snapshot under
/// "metrics" (schema in src/obs/metrics.hpp), so a trajectory diff can see
/// not just the headline numbers but the runtime counters behind them.
inline bool write_bench_json(const std::string& path, const std::string& name,
                             const std::vector<JsonRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\"bench\": \"" << json_escape(name) << "\", \"schema_version\": 1, "
      << "\"rows\": [";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t f = 0; f < rows[r].size(); ++f) {
      if (f > 0) out << ", ";
      out << "\"" << json_escape(rows[r][f].key) << "\": " << rows[r][f].literal;
    }
    out << "}";
  }
  // Zero the scrape timestamp: bench artifacts are diffed across runs as a
  // determinism check, and a wall-clock taken_at is meaningless for a
  // finished run anyway (live scrapers get the real one via telemetry).
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  snapshot.taken_at = 0.0;
  out << "\n],\n\"metrics\": " << obs::to_json(snapshot) << "}\n";
  return out.good();
}

/// Per-bench latency aggregation on top of the obs histogram: benches used
/// to hand-roll mean/percentile sums; this gives them the same fixed-bucket
/// machinery the runtime instrumentation uses (and the same quantile
/// semantics, documented on Histogram::Snapshot).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::string name,
                           std::vector<double> bounds = obs::default_latency_bounds())
      : histogram_(std::move(name), std::move(bounds)) {}

  void record(double seconds) { histogram_.record(seconds); }
  std::uint64_t count() const { return histogram_.count(); }
  double sum() const { return histogram_.sum(); }
  double mean() const { return histogram_.snapshot().mean(); }
  /// Bucket-resolution quantile (upper bound of the bucket holding q).
  double quantile(double q) const { return histogram_.snapshot().quantile(q); }
  const obs::Histogram& histogram() const { return histogram_; }

 private:
  obs::Histogram histogram_;
};

/// Simulated workstation speed in work units per virtual second.  The
/// absolute value only fixes the time unit; all comparisons are ratios.
/// (Calibration notes in EXPERIMENTS.md.)
inline constexpr double kHostSpeed = 1e5;

/// One experiment scenario: the paper names them "<dimension>/<workers>".
struct Scenario {
  std::string name;
  int hosts = 10;
  int dimension = 100;
  int workers = 7;
  int worker_iterations = 6000;
  int manager_iterations = 20;
};

/// The paper's two scenarios (§4): 30-dim/3 workers on 6 workstations and
/// 100-dim/7 workers on 10 workstations.
inline Scenario scenario_30_3() {
  return Scenario{"30/3", 6, 30, 3, 3000, 25};
}
inline Scenario scenario_100_7() {
  return Scenario{"100/7", 10, 100, 7, 6000, 20};
}

struct RunSettings {
  naming::ResolveStrategy strategy = naming::ResolveStrategy::winner;
  /// Hosts carrying one compute-bound background process each.
  std::vector<std::string> loaded_hosts;
  bool use_ft = false;
  ft::RecoveryPolicy ft_policy{};
  /// Checkpoint cost model (Table 1 calibration; see EXPERIMENTS.md).
  double work_per_state_byte = 0.0;
  ft::MemoryCheckpointStore::CostModel store_cost{};
  std::uint64_t seed = 1;
  int worker_iterations_override = 0;
  /// Injected workstation crashes (virtual time, host).
  std::vector<std::pair<double, std::string>> crashes;
  /// Deterministic message-level fault schedule, armed after deployment
  /// (scheduled times count from the run's start).
  std::optional<sim::FaultPlan> faults;
  /// Per-request timeout; needed for partition faults to surface (a reply
  /// held by a healing partition otherwise just stalls the caller).
  double request_timeout = 0.0;
};

struct RunOutcome {
  double runtime = 0.0;  ///< virtual seconds
  double best_value = 0.0;
  int rounds = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t retries = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t deadline_exhaustions = 0;
  double backoff_waited_s = 0.0;
  std::vector<std::string> placements;
  // Fault-injection telemetry (zero without a fault plan).
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_blocks = 0;
  std::uint64_t injected_spikes = 0;
};

inline std::string host_name(int i) { return "node" + std::to_string(i); }

/// Runs one complete decomposed optimization on a fresh simulated NOW.
/// Throws corba::COMM_FAILURE if the computation dies (plain mode + crash).
inline RunOutcome run_scenario(const Scenario& scenario,
                               const RunSettings& settings) {
  sim::Cluster cluster;
  for (int i = 0; i < scenario.hosts; ++i)
    cluster.add_host(host_name(i), kHostSpeed);
  // Background load is present from the start (the paper generates it
  // before measuring), so even the very first load reports see it.
  for (const std::string& host : settings.loaded_hosts)
    cluster.set_background_load(host, 1);

  rt::RuntimeOptions options;
  options.naming_strategy = settings.strategy;
  options.seed = settings.seed;
  options.winner_stale_after = 2.5;
  options.checkpoint_cost = settings.store_cost;
  options.infra_speed = kHostSpeed;  // infra workstation is ordinary hardware
  options.request_timeout = settings.request_timeout;
  rt::SimRuntime runtime(cluster, options);

  // Let at least one full reporting round reach the system manager before
  // placement decisions are made.
  runtime.events().run_until(runtime.events().now() + 1.1);

  for (const auto& [when, host] : settings.crashes)
    cluster.crash_host_at(when, host);

  opt::SolverConfig config;
  config.dimension = scenario.dimension;
  config.workers = scenario.workers;
  config.worker_iterations = settings.worker_iterations_override > 0
                                 ? settings.worker_iterations_override
                                 : scenario.worker_iterations;
  config.manager_iterations = scenario.manager_iterations;
  config.seed = settings.seed;
  config.manager_host = host_name(scenario.hosts - 1);
  config.manager_work_per_round = 500.0;
  config.use_ft = settings.use_ft;
  config.ft_policy = settings.ft_policy;
  config.work_per_state_byte = settings.work_per_state_byte;

  opt::DecomposedSolver solver(runtime, config);
  solver.deploy();
  std::shared_ptr<sim::FaultInjector> injector;
  if (settings.faults) {
    injector = std::make_shared<sim::FaultInjector>(*settings.faults);
    injector->set_origin(runtime.events().now());
    cluster.set_fault_injector(injector);
  }
  const opt::SolverResult result = solver.run();

  RunOutcome outcome;
  outcome.runtime = result.virtual_seconds;
  outcome.best_value = result.best_value;
  outcome.rounds = result.rounds;
  outcome.recoveries = result.recoveries;
  outcome.checkpoints = result.checkpoints;
  outcome.retries = result.retries;
  outcome.checkpoint_failures = result.checkpoint_failures;
  outcome.deadline_exhaustions = result.deadline_exhaustions;
  outcome.backoff_waited_s = result.backoff_waited_s;
  outcome.placements = solver.placements();
  if (injector) {
    outcome.injected_drops = injector->drops();
    outcome.injected_blocks = injector->partition_blocks();
    outcome.injected_spikes = injector->latency_spikes();
  }
  return outcome;
}

/// Mean runtime over `trials` random placements of `loaded` background
/// hosts (the paper reports one placement; averaging placements gives the
/// curve its shape without cherry-picking).
inline double mean_runtime_over_placements(const Scenario& scenario,
                                           naming::ResolveStrategy strategy,
                                           int loaded, int trials,
                                           std::uint64_t seed_base) {
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<int> hosts(static_cast<std::size_t>(scenario.hosts));
    std::iota(hosts.begin(), hosts.end(), 0);
    std::mt19937_64 rng(seed_base + static_cast<std::uint64_t>(trial) * 7919);
    std::shuffle(hosts.begin(), hosts.end(), rng);

    RunSettings settings;
    settings.strategy = strategy;
    settings.seed = seed_base + static_cast<std::uint64_t>(trial);
    for (int i = 0; i < loaded; ++i)
      settings.loaded_hosts.push_back(host_name(hosts[static_cast<std::size_t>(i)]));
    total += run_scenario(scenario, settings).runtime;
  }
  return total / trials;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
