// Ablation A1: resolve-strategy comparison.
//
// The paper only contrasts the unmodified naming service with the
// Winner-informed one.  This ablation fills in the design space: `first`
// (all workers pile onto one machine), `round_robin` (spread but
// load-blind), `random` (spread in expectation), `winner` (load-aware).
// Run on the 100/7 scenario with 4 of 10 hosts loaded.
#include "bench_common.hpp"

int main() {
  using namespace bench;

  const Scenario scenario = scenario_100_7();
  constexpr int kLoaded = 4;
  constexpr int kTrials = 5;

  std::printf(
      "Ablation A1 — naming-service resolve strategies, %s scenario,\n"
      "%d of %d hosts with background load (runtime in virtual seconds,\n"
      "mean over %d placements).\n\n",
      scenario.name.c_str(), kLoaded, scenario.hosts, kTrials);
  std::printf("%-14s%12s%12s\n", "strategy", "runtime", "vs winner");
  print_rule(38);

  const std::vector<std::pair<std::string, naming::ResolveStrategy>> strategies =
      {{"first", naming::ResolveStrategy::first},
       {"round_robin", naming::ResolveStrategy::round_robin},
       {"random", naming::ResolveStrategy::random},
       {"winner", naming::ResolveStrategy::winner}};

  std::vector<double> runtimes;
  for (const auto& [label, strategy] : strategies) {
    runtimes.push_back(mean_runtime_over_placements(scenario, strategy,
                                                    kLoaded, kTrials, 2000));
  }
  const double winner_runtime = runtimes.back();
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    std::printf("%-14s%12.1f%+11.0f%%\n", strategies[i].first.c_str(),
                runtimes[i],
                100.0 * (runtimes[i] - winner_runtime) / winner_runtime);
  }
  std::printf(
      "\nExpected ordering: first >> random >= round_robin > winner.\n"
      "`first` serializes all workers on one machine; the load-blind\n"
      "spreading strategies pay for every collision with a loaded host;\n"
      "winner avoids loaded hosts while spare capacity exists.\n");
  return 0;
}
