// Ablation A4: load-driven migration.
//
// The paper observes that a checkpoint/restore-capable service can be
// migrated "not only when an error occurred but also due to a changing
// load situation" (§3).  This bench creates a stateful service on an
// initially idle workstation, ramps background load onto it, migrates the
// service via the proxy's recovery path (factory on the Winner-best host +
// state restore) and compares per-call latency before and after.
#include "bench_common.hpp"
#include "ft/checkpoint.hpp"
#include "orb/cdr.hpp"
#include "sim/work_meter.hpp"

namespace {

// A stateful service whose call cost is significant: each call charges a
// fixed amount of work and folds the argument into a running sum.
class AccumulatorServant final : public corba::Servant,
                                 public ft::CheckpointableServant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/Accumulator:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    if (op == "accumulate") {
      corba::Servant::check_arity(op, args, 1);
      sim::WorkMeter::charge(5e4);  // 0.5 s on an idle workstation
      sum_ += args[0].as_f64();
      return corba::Value(sum_);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  corba::Blob get_state() override {
    corba::CdrOutputStream out;
    out.write_f64(sum_);
    return out.take_buffer();
  }
  void set_state(const corba::Blob& state) override {
    corba::CdrInputStream in(state);
    sum_ = in.read_f64();
  }

 private:
  double sum_ = 0.0;
};

}  // namespace

int main() {
  using namespace bench;

  sim::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.add_host(host_name(i), kHostSpeed);
  rt::RuntimeOptions options;
  options.infra_speed = kHostSpeed;
  rt::SimRuntime runtime(cluster, options);
  runtime.registry()->register_type(
      "Accumulator", [] { return std::make_shared<AccumulatorServant>(); });
  const naming::Name name = naming::Name::parse("Accumulator");
  runtime.deploy_everywhere(name, "Accumulator");
  runtime.events().run_until(1.001);

  ft::ProxyConfig config =
      runtime.make_proxy_config(name, "Accumulator", "acc-1");
  ft::ProxyEngine engine(std::move(config));
  auto timed_call = [&](double value) {
    const double t0 = runtime.events().now();
    engine.call("accumulate", {corba::Value(value)});
    return runtime.events().now() - t0;
  };

  std::printf("Ablation A4 — proxy-driven migration on load change.\n\n");
  const std::string original = engine.current().ior().host;
  LatencyRecorder before("bench.migration.before_s");
  for (int i = 0; i < 5; ++i) before.record(timed_call(1.0));
  std::printf("service on %-8s (idle):      mean call latency %6.3f s\n",
              original.c_str(), before.mean());

  // Load ramps up on the service's workstation.
  cluster.set_background_load(original, 4);
  runtime.events().run_until(runtime.events().now() + 2.0);
  LatencyRecorder loaded("bench.migration.loaded_s");
  for (int i = 0; i < 5; ++i) loaded.record(timed_call(1.0));
  std::printf("service on %-8s (+4 procs):  mean call latency %6.3f s\n",
              original.c_str(), loaded.mean());

  // Migrate: same machinery as failure recovery, no failure required.
  engine.recover_now();
  const std::string migrated = engine.current().ior().host;
  LatencyRecorder after("bench.migration.after_s");
  for (int i = 0; i < 5; ++i) after.record(timed_call(1.0));
  std::printf("migrated to %-8s:            mean call latency %6.3f s\n",
              migrated.c_str(), after.mean());

  const double total = engine.call("accumulate", {corba::Value(0.0)}).as_f64();
  std::printf(
      "\nstate preserved across migration: sum = %.0f after 15 x 1.0 + 0.0 "
      "(%s)\n",
      total, total == 15.0 ? "correct" : "WRONG");
  std::printf("latency recovered to within %.0f%% of the idle baseline.\n",
              100.0 * (after.mean() - before.mean()) / before.mean());
  return 0;
}
