// Ablation A3: behaviour under workstation crashes.
//
// Validates the paper's §1 motivation — "it is obviously crucial to provide
// mechanisms to prevent the whole computation from failing due to a single
// error on the server side": without proxies, one crash aborts the entire
// long-running optimization; with proxies the run completes, paying only
// the recovery and re-execution cost, and (checkpoint semantics) returns
// the same optimization trajectory.
#include "bench_common.hpp"

int main() {
  using namespace bench;

  Scenario scenario = scenario_100_7();
  scenario.manager_iterations = 8;
  scenario.worker_iterations = 8000;

  RunSettings ft_base;
  ft_base.strategy = naming::ResolveStrategy::winner;
  ft_base.use_ft = true;
  ft_base.ft_policy.max_attempts = 6;
  ft_base.work_per_state_byte = 150.0;
  ft_base.store_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
  const RunOutcome failure_free = run_scenario(scenario, ft_base);

  std::printf(
      "Ablation A3 — runs under injected workstation crashes, %s scenario\n"
      "(virtual seconds; crashes spaced 200s apart starting at t=250).\n\n",
      scenario.name.c_str());
  std::printf("%-10s%16s%16s%12s%14s\n", "crashes", "plain naming",
              "with FT proxy", "recoveries", "same result");
  print_rule(68);

  for (int crashes = 0; crashes <= 3; ++crashes) {
    std::vector<std::pair<double, std::string>> schedule;
    for (int i = 0; i < crashes; ++i)
      schedule.emplace_back(250.0 + 200.0 * i, host_name(i));

    std::string plain_cell;
    try {
      RunSettings plain;
      plain.strategy = naming::ResolveStrategy::winner;
      plain.crashes = schedule;
      const RunOutcome outcome = run_scenario(scenario, plain);
      plain_cell = std::to_string(outcome.runtime).substr(0, 7);
    } catch (const corba::COMM_FAILURE&) {
      plain_cell = "aborts";
    }

    RunSettings ft = ft_base;
    ft.crashes = schedule;
    const RunOutcome outcome = run_scenario(scenario, ft);
    std::printf("%-10d%16s%16.1f%12llu%14s\n", crashes, plain_cell.c_str(),
                outcome.runtime,
                static_cast<unsigned long long>(outcome.recoveries),
                outcome.best_value == failure_free.best_value ? "yes" : "NO");
  }
  std::printf(
      "\nReading: every crash aborts the plain run; the proxied run "
      "completes with\nthe identical optimization result, paying recovery + "
      "re-execution time.\n");
  return 0;
}
