// Ablation A3: behaviour under injected faults.
//
// Part 1 validates the paper's §1 motivation — "it is obviously crucial to
// provide mechanisms to prevent the whole computation from failing due to a
// single error on the server side": without proxies, one crash aborts the
// entire long-running optimization; with proxies the run completes, paying
// only the recovery and re-execution cost, and (checkpoint semantics)
// returns the same optimization trajectory.
//
// Part 2 goes beyond clean crashes: a deterministic fault matrix — message
// drop rate × healing network partition × retry backoff on/off — run on the
// 30/3 scenario.  Every cell must still converge to the failure-free
// optimum; the runtime and retry columns show what each fault mode costs
// and what backoff buys.  Results are also emitted as machine-readable
// BENCH_recovery.json for the perf trajectory.
#include "bench_common.hpp"

namespace {

struct MatrixCell {
  double drop_rate = 0.0;
  bool partition = false;
  bool backoff = false;
  bench::RunOutcome outcome;
  bool same_result = false;
};

void json_outcome(std::FILE* f, const bench::RunOutcome& o) {
  std::fprintf(f,
               "\"runtime\": %.6f, \"best_value\": %.17g, "
               "\"recoveries\": %llu, \"retries\": %llu, "
               "\"checkpoints\": %llu, \"checkpoint_failures\": %llu, "
               "\"deadline_exhaustions\": %llu, \"backoff_waited_s\": %.6f, "
               "\"injected_drops\": %llu, \"injected_blocks\": %llu, "
               "\"injected_spikes\": %llu",
               o.runtime, o.best_value,
               static_cast<unsigned long long>(o.recoveries),
               static_cast<unsigned long long>(o.retries),
               static_cast<unsigned long long>(o.checkpoints),
               static_cast<unsigned long long>(o.checkpoint_failures),
               static_cast<unsigned long long>(o.deadline_exhaustions),
               o.backoff_waited_s,
               static_cast<unsigned long long>(o.injected_drops),
               static_cast<unsigned long long>(o.injected_blocks),
               static_cast<unsigned long long>(o.injected_spikes));
}

}  // namespace

int main() {
  using namespace bench;

  // ---- Part 1: workstation crashes (100/7, as before) ----------------------
  Scenario crash_scenario = scenario_100_7();
  crash_scenario.manager_iterations = 8;
  crash_scenario.worker_iterations = 8000;

  RunSettings ft_base;
  ft_base.strategy = naming::ResolveStrategy::winner;
  ft_base.use_ft = true;
  ft_base.ft_policy.max_attempts = 6;
  ft_base.work_per_state_byte = 150.0;
  ft_base.store_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
  const RunOutcome crash_free = run_scenario(crash_scenario, ft_base);

  std::printf(
      "Ablation A3 — runs under injected workstation crashes, %s scenario\n"
      "(virtual seconds; crashes spaced 200s apart starting at t=250).\n\n",
      crash_scenario.name.c_str());
  std::printf("%-10s%16s%16s%12s%14s\n", "crashes", "plain naming",
              "with FT proxy", "recoveries", "same result");
  print_rule(68);

  struct CrashRow {
    int crashes;
    bool plain_aborts;
    double plain_runtime;
    RunOutcome ft;
    bool same_result;
  };
  std::vector<CrashRow> crash_rows;
  for (int crashes = 0; crashes <= 3; ++crashes) {
    std::vector<std::pair<double, std::string>> schedule;
    for (int i = 0; i < crashes; ++i)
      schedule.emplace_back(250.0 + 200.0 * i, host_name(i));

    CrashRow row;
    row.crashes = crashes;
    std::string plain_cell;
    try {
      RunSettings plain;
      plain.strategy = naming::ResolveStrategy::winner;
      plain.crashes = schedule;
      const RunOutcome outcome = run_scenario(crash_scenario, plain);
      row.plain_aborts = false;
      row.plain_runtime = outcome.runtime;
      plain_cell = std::to_string(outcome.runtime).substr(0, 7);
    } catch (const corba::COMM_FAILURE&) {
      row.plain_aborts = true;
      row.plain_runtime = 0.0;
      plain_cell = "aborts";
    }

    RunSettings ft = ft_base;
    ft.crashes = schedule;
    row.ft = run_scenario(crash_scenario, ft);
    row.same_result = row.ft.best_value == crash_free.best_value;
    std::printf("%-10d%16s%16.1f%12llu%14s\n", crashes, plain_cell.c_str(),
                row.ft.runtime,
                static_cast<unsigned long long>(row.ft.recoveries),
                row.same_result ? "yes" : "NO");
    crash_rows.push_back(std::move(row));
  }

  // ---- Part 2: fault matrix (30/3) -----------------------------------------
  // Drops + an optional healing partition around node0.  Workers are
  // stateful and exclusively owned, so recovery mints fresh factory
  // instances; the request timeout lets partition-held replies surface as
  // TIMEOUT instead of stalling until the heal.
  const Scenario matrix_scenario = scenario_30_3();

  RunSettings matrix_base;
  matrix_base.strategy = naming::ResolveStrategy::winner;
  matrix_base.use_ft = true;
  matrix_base.ft_policy.max_attempts = 6;
  matrix_base.ft_policy.mode = ft::RecoveryMode::factory;
  matrix_base.ft_policy.rebind_new_offer = false;
  matrix_base.ft_policy.call_deadline_s = 30.0;
  matrix_base.work_per_state_byte = 150.0;
  matrix_base.store_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
  matrix_base.request_timeout = 15.0;
  const RunOutcome fault_free = run_scenario(matrix_scenario, matrix_base);

  std::printf(
      "\nFault matrix — %s scenario, drop rate x partition x backoff\n"
      "(partition: node0 cut off for [40s, 70s); timeout %.0fs; deadline "
      "budget %.0fs).\n\n",
      matrix_scenario.name.c_str(), matrix_base.request_timeout,
      matrix_base.ft_policy.call_deadline_s);
  std::printf("%-8s%-11s%-9s%12s%12s%10s%12s%14s\n", "drop", "partition",
              "backoff", "runtime", "recoveries", "retries", "drops",
              "same result");
  print_rule(88);

  std::vector<MatrixCell> cells;
  for (const double drop_rate : {0.0, 0.005, 0.02}) {
    for (const bool partition : {false, true}) {
      if (drop_rate == 0.0 && !partition) continue;  // = baseline
      for (const bool backoff : {false, true}) {
        RunSettings settings = matrix_base;
        settings.ft_policy.backoff_initial_s = backoff ? 0.05 : 0.0;
        sim::FaultPlan plan;
        plan.seed = 20260806;
        plan.drop_probability = drop_rate;
        if (partition)
          plan.partitions.push_back(
              {.start = 40.0, .heal = 70.0, .group = {host_name(0)}});
        settings.faults = plan;

        MatrixCell cell;
        cell.drop_rate = drop_rate;
        cell.partition = partition;
        cell.backoff = backoff;
        cell.outcome = run_scenario(matrix_scenario, settings);
        cell.same_result = cell.outcome.best_value == fault_free.best_value;
        std::printf("%-8.3f%-11s%-9s%12.1f%12llu%10llu%12llu%14s\n",
                    drop_rate, partition ? "yes" : "no",
                    backoff ? "on" : "off", cell.outcome.runtime,
                    static_cast<unsigned long long>(cell.outcome.recoveries),
                    static_cast<unsigned long long>(cell.outcome.retries),
                    static_cast<unsigned long long>(cell.outcome.injected_drops),
                    cell.same_result ? "yes" : "NO");
        cells.push_back(std::move(cell));
      }
    }
  }

  std::printf(
      "\nReading: every crash aborts the plain run; the proxied run "
      "completes with\nthe identical optimization result under crashes, "
      "drops and partitions alike,\npaying recovery + re-execution time.\n");

  // ---- Machine-readable output ---------------------------------------------
  const char* json_path = "BENCH_recovery.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_recovery\",\n");
  std::fprintf(f, "  \"crash_scenario\": \"%s\",\n",
               crash_scenario.name.c_str());
  std::fprintf(f, "  \"crash_baseline\": {");
  json_outcome(f, crash_free);
  std::fprintf(f, "},\n  \"crash_ablation\": [\n");
  for (std::size_t i = 0; i < crash_rows.size(); ++i) {
    const CrashRow& row = crash_rows[i];
    std::fprintf(f,
                 "    {\"crashes\": %d, \"plain_aborts\": %s, "
                 "\"plain_runtime\": %.6f, \"same_result\": %s, ",
                 row.crashes, row.plain_aborts ? "true" : "false",
                 row.plain_runtime, row.same_result ? "true" : "false");
    json_outcome(f, row.ft);
    std::fprintf(f, "}%s\n", i + 1 < crash_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"matrix_scenario\": \"%s\",\n",
               matrix_scenario.name.c_str());
  std::fprintf(f, "  \"matrix_baseline\": {");
  json_outcome(f, fault_free);
  std::fprintf(f, "},\n  \"fault_matrix\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& cell = cells[i];
    std::fprintf(f,
                 "    {\"drop_rate\": %.3f, \"partition\": %s, "
                 "\"backoff\": %s, \"same_result\": %s, ",
                 cell.drop_rate, cell.partition ? "true" : "false",
                 cell.backoff ? "true" : "false",
                 cell.same_result ? "true" : "false");
    json_outcome(f, cell.outcome);
    std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Same embedded-metrics convention as write_bench_json, including the
  // zeroed scrape timestamp (bench artifacts diff across runs).
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  snapshot.taken_at = 0.0;
  const std::string metrics = obs::to_json(snapshot);
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}
