// Table 1 reproduction: runtimes of the 100-dimensional / 7-worker
// decomposed Rosenbrock optimization with and without fault-tolerance
// proxies, for a growing number of worker iterations (the algorithm's
// stopping criterion and hence the per-call work).
//
// Expected shape (paper §4): the checkpoint overhead is constant per method
// call (fetch state + store it in the unoptimized checkpoint service), so
// the relative slowdown falls as calls get longer; in the worst case the
// proxied run costs more than 3x the plain run.
//
// Beyond the paper's table this bench measures the checkpoint pipeline:
//   * a checkpoint-mode axis (full-sync / delta-sync / delta-async) over the
//     scenario at a fixed iteration count, and
//   * a synthetic per-call-overhead point — 64 KiB service state, ~10% of
//     chunks dirtied per call — isolating the shipping cost from the
//     optimization workload.
// Results land in BENCH_table1.json (schema in bench_common.hpp).
#include "bench_common.hpp"

#include "ft/checkpoint.hpp"
#include "sim/work_meter.hpp"

namespace {

using namespace bench;

/// Synthetic checkpointable service: an opaque state blob of fixed size; each
/// touch() call dirties a deterministic rotating subset of the delta chunks
/// and performs a small fixed amount of simulated work.
class DirtyBlobServant final : public corba::Servant,
                               public ft::CheckpointableServant {
 public:
  DirtyBlobServant(std::size_t state_bytes, double dirty_fraction,
                   std::uint32_t chunk_size, double work_per_call)
      : state_(state_bytes, std::byte{0}),
        chunk_size_(chunk_size),
        work_per_call_(work_per_call) {
    const std::size_t chunks = (state_bytes + chunk_size - 1) / chunk_size;
    dirty_per_call_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(dirty_fraction *
                                        static_cast<double>(chunks) +
                                    0.5));
  }

  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/DirtyBlob:1.0";
  }

  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    if (op == "touch") {
      check_arity(op, args, 0);
      sim::WorkMeter::charge(work_per_call_);
      const std::size_t chunks =
          (state_.size() + chunk_size_ - 1) / chunk_size_;
      for (std::size_t j = 0; j < dirty_per_call_; ++j) {
        const std::size_t chunk = (calls_ * dirty_per_call_ + j) % chunks;
        auto& byte = state_[chunk * chunk_size_];
        byte = std::byte{static_cast<unsigned char>(std::to_integer<int>(byte) + 1)};
      }
      ++calls_;
      return corba::Value(static_cast<std::int64_t>(calls_));
    }
    throw corba::BAD_OPERATION(std::string(op));
  }

  corba::Blob get_state() override { return state_; }
  void set_state(const corba::Blob& state) override { state_ = state; }

 private:
  corba::Blob state_;
  std::uint32_t chunk_size_;
  double work_per_call_;
  std::size_t dirty_per_call_ = 1;
  std::size_t calls_ = 0;
};

struct SyntheticPoint {
  double per_call_s = 0.0;          ///< virtual seconds per touch() call
  double per_call_p50_s = 0.0;      ///< bucket-resolution median call latency
  double per_call_p99_s = 0.0;      ///< bucket-resolution tail call latency
  std::uint64_t checkpoints = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t coalesced = 0;
};

/// Measures the per-call cost of `calls` touch() invocations through a
/// fault-tolerance proxy on a fresh two-workstation simulated NOW.  With no
/// mode the proxy checkpoints nothing (the baseline the overhead is taken
/// against); otherwise it checkpoints after every call in the given mode.
SyntheticPoint run_synthetic(std::optional<ft::CheckpointMode> mode,
                             std::size_t state_bytes, double dirty_fraction,
                             int calls) {
  constexpr double kWorkPerCall = 2e4;  // 0.2 virtual seconds per call

  sim::Cluster cluster;
  cluster.add_host("node0", kHostSpeed);
  cluster.add_host("node1", kHostSpeed);

  rt::RuntimeOptions options;
  options.winner_stale_after = 2.5;
  options.infra_speed = kHostSpeed;
  // Same "not optimized for speed" storage cost model as the paper table;
  // the store bills the bytes actually shipped, which is where the delta
  // modes win.
  options.checkpoint_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
  rt::SimRuntime runtime(cluster, options);
  runtime.events().run_until(runtime.events().now() + 1.1);

  ft::RecoveryPolicy policy;
  policy.checkpoint_every = mode ? 1 : 0;
  if (mode) policy.checkpoint_mode = *mode;

  const naming::Name name = naming::Name::parse("BenchDirtyBlob");
  const corba::ObjectRef ref = runtime.deploy(
      "node0",
      std::make_shared<DirtyBlobServant>(state_bytes, dirty_fraction,
                                         policy.delta_chunk_size, kWorkPerCall),
      name);
  ft::ProxyEngine engine(
      runtime.make_proxy_config(name, "DirtyBlob", "dirty-blob", policy, ref));

  // Warm-up call outside the timed window: the delta modes anchor their
  // chain with one unavoidable full store, which is a start-up cost, not
  // part of the steady-state per-call overhead being measured.
  engine.call("touch", {});
  if (ft::CheckpointPipeline* pipeline = engine.checkpoint_pipeline())
    pipeline->flush();

  // Per-call distribution rides along via the obs histogram; the headline
  // per_call_s stays elapsed/calls (includes the final flush), unchanged.
  LatencyRecorder latency("bench.synthetic.call_s");
  const double start = runtime.events().now();
  for (int i = 0; i < calls; ++i) {
    const double t0 = runtime.events().now();
    engine.call("touch", {});
    latency.record(runtime.events().now() - t0);
  }
  if (ft::CheckpointPipeline* pipeline = engine.checkpoint_pipeline())
    pipeline->flush();
  const double elapsed = runtime.events().now() - start;

  SyntheticPoint point;
  point.per_call_s = elapsed / calls;
  point.per_call_p50_s = latency.quantile(0.5);
  point.per_call_p99_s = latency.quantile(0.99);
  if (ft::CheckpointPipeline* pipeline = engine.checkpoint_pipeline()) {
    point.checkpoints = pipeline->stored();
    point.bytes_shipped = pipeline->bytes_shipped();
    point.coalesced = pipeline->coalesced();
  }
  return point;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  std::vector<JsonRow> rows;

  // --- paper table: overhead vs per-call work (full-sync, as in §4) ---------
  const std::vector<int> iteration_counts =
      smoke ? std::vector<int>{10000}
            : std::vector<int>{10000, 20000, 30000, 40000, 50000};
  Scenario scenario = scenario_100_7();
  scenario.manager_iterations = smoke ? 3 : 6;

  std::printf(
      "Table 1 — Runtimes for a 100-dimensional Rosenbrock function with 7 "
      "worker\nproblems and a varying number of worker iterations "
      "(virtual seconds).\n\n");
  std::printf("%12s  %18s  %18s  %12s\n", "Iterations", "Runtime w/o proxy",
              "Runtime w/ proxy", "Overhead [%]");
  print_rule(66);

  double worst_factor = 0.0;
  double previous_overhead = 1e300;
  bool monotone = true;
  for (int iterations : iteration_counts) {
    RunSettings plain;
    plain.strategy = naming::ResolveStrategy::winner;
    plain.worker_iterations_override = iterations;
    const RunOutcome base = run_scenario(scenario, plain);

    RunSettings ft = plain;
    ft.use_ft = true;
    // The paper's checkpoint storage "has not been optimized for speed in
    // any way"; the cost model is calibrated so the worst case exceeds 3x
    // (see EXPERIMENTS.md).
    ft.work_per_state_byte = 150.0;
    ft.store_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
    const RunOutcome proxied = run_scenario(scenario, ft);

    const double overhead =
        100.0 * (proxied.runtime - base.runtime) / base.runtime;
    std::printf("%12d  %18.1f  %18.1f  %12.1f\n", iterations, base.runtime,
                proxied.runtime, overhead);
    worst_factor = std::max(worst_factor, proxied.runtime / base.runtime);
    if (overhead > previous_overhead) monotone = false;
    previous_overhead = overhead;

    rows.push_back({jstr("section", "paper_table"),
                    jint("iterations", static_cast<std::uint64_t>(iterations)),
                    jnum("runtime_plain_s", base.runtime),
                    jnum("runtime_proxy_s", proxied.runtime),
                    jnum("overhead_pct", overhead)});

    // Sanity: fault tolerance must not change the computation's result.
    if (proxied.best_value != base.best_value)
      std::printf("  WARNING: proxied result differs from plain result!\n");
  }

  std::printf(
      "\nworst-case slowdown: %.2fx (paper: \"more than three times\")\n",
      worst_factor);
  std::printf(
      "relative overhead falls as per-call work grows: %s (paper: \"the\n"
      "relative slowdown is lower the more time is spent in the called "
      "method\")\n",
      monotone ? "yes" : "NO");

  // --- checkpoint-mode axis over the scenario -------------------------------
  const int axis_iterations = smoke ? 10000 : 20000;
  RunSettings axis_plain;
  axis_plain.strategy = naming::ResolveStrategy::winner;
  axis_plain.worker_iterations_override = axis_iterations;
  const RunOutcome axis_base = run_scenario(scenario, axis_plain);

  std::printf("\nCheckpoint-mode axis (%d worker iterations):\n\n",
              axis_iterations);
  std::printf("%12s  %12s  %12s  %12s\n", "Mode", "Runtime", "Overhead [%]",
              "Checkpoints");
  print_rule(54);
  std::printf("%12s  %12.1f  %12s  %12s\n", "none", axis_base.runtime, "-",
              "-");

  const ft::CheckpointMode kModes[] = {ft::CheckpointMode::full_sync,
                                       ft::CheckpointMode::delta_sync,
                                       ft::CheckpointMode::delta_async};
  for (ft::CheckpointMode mode : kModes) {
    RunSettings ft_run = axis_plain;
    ft_run.use_ft = true;
    ft_run.work_per_state_byte = 150.0;
    ft_run.store_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
    ft_run.ft_policy.checkpoint_mode = mode;
    const RunOutcome outcome = run_scenario(scenario, ft_run);
    const double overhead =
        100.0 * (outcome.runtime - axis_base.runtime) / axis_base.runtime;
    const std::string mode_name(ft::to_string(mode));
    std::printf("%12s  %12.1f  %12.1f  %12llu\n", mode_name.c_str(),
                outcome.runtime, overhead,
                static_cast<unsigned long long>(outcome.checkpoints));
    if (outcome.best_value != axis_base.best_value)
      std::printf("  WARNING: %s result differs from plain result!\n",
                  mode_name.c_str());
    rows.push_back(
        {jstr("section", "mode_axis"),
         jint("iterations", static_cast<std::uint64_t>(axis_iterations)),
         jstr("mode", mode_name), jnum("runtime_s", outcome.runtime),
         jnum("overhead_pct", overhead),
         jint("checkpoints", outcome.checkpoints)});
  }

  // --- synthetic per-call overhead: 64 KiB state, ~10% dirty ----------------
  const std::size_t state_bytes = 64 * 1024;
  const double dirty_fraction = 0.10;
  const int calls = smoke ? 8 : 32;

  const SyntheticPoint base_point =
      run_synthetic(std::nullopt, state_bytes, dirty_fraction, calls);

  std::printf(
      "\nSynthetic per-call checkpoint overhead (64 KiB state, ~10%% of "
      "chunks\ndirtied per call, virtual seconds):\n\n");
  std::printf("%12s  %14s  %14s  %14s\n", "Mode", "Per call [s]",
              "Overhead [s]", "Bytes shipped");
  print_rule(60);
  std::printf("%12s  %14.3f  %14s  %14s\n", "none", base_point.per_call_s, "-",
              "-");

  double full_sync_overhead = 0.0;
  double delta_async_overhead = 0.0;
  for (ft::CheckpointMode mode : kModes) {
    const SyntheticPoint point =
        run_synthetic(mode, state_bytes, dirty_fraction, calls);
    const double overhead = point.per_call_s - base_point.per_call_s;
    if (mode == ft::CheckpointMode::full_sync) full_sync_overhead = overhead;
    if (mode == ft::CheckpointMode::delta_async)
      delta_async_overhead = overhead;
    const std::string mode_name(ft::to_string(mode));
    std::printf("%12s  %14.3f  %14.3f  %14llu\n", mode_name.c_str(),
                point.per_call_s, overhead,
                static_cast<unsigned long long>(point.bytes_shipped));
    rows.push_back({jstr("section", "synthetic"),
                    jint("state_bytes", state_bytes),
                    jnum("dirty_fraction", dirty_fraction),
                    jstr("mode", mode_name),
                    jnum("per_call_s", point.per_call_s),
                    jnum("per_call_p50_s", point.per_call_p50_s),
                    jnum("per_call_p99_s", point.per_call_p99_s),
                    jnum("per_call_overhead_s", overhead),
                    jint("checkpoints", point.checkpoints),
                    jint("bytes_shipped", point.bytes_shipped),
                    jint("coalesced", point.coalesced)});
  }

  const double ratio = delta_async_overhead > 0.0
                           ? full_sync_overhead / delta_async_overhead
                           : 0.0;
  rows.push_back({jstr("section", "synthetic_summary"),
                  jnum("full_sync_overhead_s", full_sync_overhead),
                  jnum("delta_async_overhead_s", delta_async_overhead),
                  jnum("full_over_delta_async", ratio)});
  std::printf(
      "\ndelta-async per-call overhead is %.1fx lower than full-sync "
      "(target: >= 5x): %s\n",
      ratio, ratio >= 5.0 ? "ok" : "MISSED");

  write_bench_json("BENCH_table1.json", "table1_proxy_overhead", rows);
  return 0;
}
