// Table 1 reproduction: runtimes of the 100-dimensional / 7-worker
// decomposed Rosenbrock optimization with and without fault-tolerance
// proxies, for a growing number of worker iterations (the algorithm's
// stopping criterion and hence the per-call work).
//
// Expected shape (paper §4): the checkpoint overhead is constant per method
// call (fetch state + store it in the unoptimized checkpoint service), so
// the relative slowdown falls as calls get longer; in the worst case the
// proxied run costs more than 3x the plain run.
#include "bench_common.hpp"

int main() {
  using namespace bench;

  const std::vector<int> iteration_counts = {10000, 20000, 30000, 40000,
                                             50000};
  Scenario scenario = scenario_100_7();
  scenario.manager_iterations = 6;  // fewer rounds; per-row cost unchanged

  std::printf(
      "Table 1 — Runtimes for a 100-dimensional Rosenbrock function with 7 "
      "worker\nproblems and a varying number of worker iterations "
      "(virtual seconds).\n\n");
  std::printf("%12s  %18s  %18s  %12s\n", "Iterations", "Runtime w/o proxy",
              "Runtime w/ proxy", "Overhead [%]");
  print_rule(66);

  double worst_factor = 0.0;
  double previous_overhead = 1e300;
  bool monotone = true;
  for (int iterations : iteration_counts) {
    RunSettings plain;
    plain.strategy = naming::ResolveStrategy::winner;
    plain.worker_iterations_override = iterations;
    const RunOutcome base = run_scenario(scenario, plain);

    RunSettings ft = plain;
    ft.use_ft = true;
    // The paper's checkpoint storage "has not been optimized for speed in
    // any way"; the cost model is calibrated so the worst case exceeds 3x
    // (see EXPERIMENTS.md).
    ft.work_per_state_byte = 150.0;
    ft.store_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
    const RunOutcome proxied = run_scenario(scenario, ft);

    const double overhead =
        100.0 * (proxied.runtime - base.runtime) / base.runtime;
    std::printf("%12d  %18.1f  %18.1f  %12.1f\n", iterations, base.runtime,
                proxied.runtime, overhead);
    worst_factor = std::max(worst_factor, proxied.runtime / base.runtime);
    if (overhead > previous_overhead) monotone = false;
    previous_overhead = overhead;

    // Sanity: fault tolerance must not change the computation's result.
    if (proxied.best_value != base.best_value)
      std::printf("  WARNING: proxied result differs from plain result!\n");
  }

  std::printf(
      "\nworst-case slowdown: %.2fx (paper: \"more than three times\")\n",
      worst_factor);
  std::printf(
      "relative overhead falls as per-call work grows: %s (paper: \"the\n"
      "relative slowdown is lower the more time is spent in the called "
      "method\")\n",
      monotone ? "yes" : "NO");
  return 0;
}
