// Quickstart: the whole runtime in ~100 lines.
//
// Builds a small simulated network of workstations, deploys a trivial
// stateful service on every node, resolves it through the load-distributing
// naming service, wraps it in a fault-tolerance proxy, and survives a
// workstation crash.  Run it:  ./build/examples/quickstart
#include <cstdio>

#include "core/sim_runtime.hpp"
#include "ft/checkpoint.hpp"
#include "ft/proxy.hpp"
#include "orb/cdr.hpp"

namespace {

// A minimal checkpointable service: a counter.
//   interface Counter { long long add(in long long n); };
class CounterServant final : public corba::Servant,
                             public ft::CheckpointableServant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:example/Counter:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    if (op == "add") {
      check_arity(op, args, 1);
      total_ += args[0].as_i64();
      return corba::Value(total_);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  corba::Blob get_state() override {
    corba::CdrOutputStream out;
    out.write_i64(total_);
    return out.take_buffer();
  }
  void set_state(const corba::Blob& state) override {
    corba::CdrInputStream in(state);
    total_ = in.read_i64();
  }

 private:
  std::int64_t total_ = 0;
};

}  // namespace

int main() {
  // 1. A network of four simulated workstations (name, speed in work/s).
  sim::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.add_host("node" + std::to_string(i), 1e5);

  // 2. The paper's runtime: per-node ORBs and Winner node managers, plus
  // the central naming service, system manager and checkpoint store.
  rt::SimRuntime runtime(cluster, {.winner_stale_after = 2.5});
  std::printf("deployed runtime with %zu workstations + infrastructure\n",
              runtime.worker_hosts().size());

  // 3. Register the service type and put one instance on every node — the
  // offers the naming service picks from.
  runtime.registry()->register_type(
      "Counter", [] { return std::make_shared<CounterServant>(); });
  const naming::Name name = naming::Name::parse("Examples/Counter");
  runtime.naming().bind_new_context(naming::Name::parse("Examples"));
  runtime.deploy_everywhere(name, "Counter");
  runtime.events().run_until(1.0);  // first load reports arrive

  // 4. Transparent load-aware resolution: plain resolve() returns the
  // instance on the currently best workstation.
  cluster.set_background_load("node0", 3);  // node0 is busy
  runtime.events().run_until(2.0);
  const corba::ObjectRef ref = runtime.resolve(name);
  std::printf("naming service picked %s (node0 is loaded)\n",
              ref.ior().host.c_str());

  // 5. Fault tolerance: a proxy that checkpoints after every call and
  // recovers from COMM_FAILURE.
  ft::ProxyEngine proxy(runtime.make_proxy_config(name, "Counter",
                                                  "quickstart-counter"));
  for (int i = 1; i <= 3; ++i)
    proxy.call("add", {corba::Value(std::int64_t{10})});
  std::printf("3 calls made, total=30, checkpoints=%llu\n",
              static_cast<unsigned long long>(proxy.checkpoints_taken()));

  // 6. Kill the workstation the service runs on...
  const std::string victim = proxy.current().ior().host;
  cluster.crash_host(victim);
  std::printf("crashed %s!\n", victim.c_str());

  // ...and keep calling: the proxy re-resolves, restores the checkpoint
  // into a fresh instance and retries — the client code never notices.
  const std::int64_t total =
      proxy.call("add", {corba::Value(std::int64_t{12})}).as_i64();
  std::printf("next call recovered to %s: total=%lld (state intact)\n",
              proxy.current().ior().host.c_str(),
              static_cast<long long>(total));
  std::printf("virtual time elapsed: %.3f s, recoveries: %llu\n",
              runtime.events().now(),
              static_cast<unsigned long long>(proxy.recoveries()));
  return total == 42 ? 0 : 1;
}
