// Fault-tolerance deep dive: the full lifecycle of a checkpointed service —
// per-call checkpoints, crash recovery via re-resolve, recovery via a
// service factory once offers run out, DII request proxies, and load-driven
// migration.  Everything the paper's §3 describes, narrated step by step.
//
// Along the way it shows the observability layer in action: a text metrics
// exporter plus a RecoveryTimeline that records, in virtual-time order,
// what the fault detector, quarantine and proxy engine did about each
// injected failure.
#include <cstdio>

#include "core/sim_runtime.hpp"
#include "ft/checkpoint.hpp"
#include "ft/proxy.hpp"
#include "ft/request_proxy.hpp"
#include "obs/metrics.hpp"
#include "obs/orbtop.hpp"
#include "obs/timeline.hpp"
#include "orb/cdr.hpp"
#include "sim/work_meter.hpp"

namespace {

// A key/value table service — state that visibly survives recovery.
//   interface Table { void put(in string k, in double v); double get(in string k); long long size(); };
class TableServant final : public corba::Servant,
                           public ft::CheckpointableServant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:example/Table:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    sim::WorkMeter::charge(1e4);
    if (op == "put") {
      check_arity(op, args, 2);
      table_[args[0].as_string()] = args[1].as_f64();
      return {};
    }
    if (op == "get") {
      check_arity(op, args, 1);
      auto it = table_.find(args[0].as_string());
      if (it == table_.end())
        throw corba::BAD_PARAM("no such key: " + args[0].as_string());
      return corba::Value(it->second);
    }
    if (op == "size") {
      return corba::Value(static_cast<std::int64_t>(table_.size()));
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  corba::Blob get_state() override {
    corba::CdrOutputStream out;
    out.write_u32(static_cast<std::uint32_t>(table_.size()));
    for (const auto& [key, value] : table_) {
      out.write_string(key);
      out.write_f64(value);
    }
    return out.take_buffer();
  }
  void set_state(const corba::Blob& state) override {
    corba::CdrInputStream in(state);
    std::map<std::string, double> table;
    const std::uint32_t count = in.read_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string key = in.read_string();
      table[std::move(key)] = in.read_f64();
    }
    table_ = std::move(table);
  }

 private:
  std::map<std::string, double> table_;
};

}  // namespace

int main() {
  sim::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.add_host("node" + std::to_string(i), 1e5);
  rt::SimRuntime runtime(cluster, {.winner_stale_after = 2.5, .infra_speed = 1e5});

  // Observability: collect recovery events while the demo runs.  (The
  // runtime already stamps them with the simulation's virtual clock.)
  obs::RecoveryTimeline timeline;
  obs::install_timeline(&timeline);
  runtime.registry()->register_type(
      "Table", [] { return std::make_shared<TableServant>(); });
  const naming::Name name = naming::Name::parse("Table");
  runtime.deploy_everywhere(name, "Table");
  runtime.events().run_until(1.001);

  ft::RecoveryPolicy policy;
  policy.max_attempts = 5;
  policy.mode = ft::RecoveryMode::reresolve_then_factory;
  ft::ProxyEngine proxy(runtime.make_proxy_config(name, "Table", "demo-table",
                                                  policy));
  std::printf("service instance on %s\n", proxy.current().ior().host.c_str());

  // Build up state through the proxy (checkpoint after every call).
  proxy.call("put", {corba::Value("pi"), corba::Value(3.14159)});
  proxy.call("put", {corba::Value("e"), corba::Value(2.71828)});
  std::printf("stored 2 entries, checkpoints taken: %llu\n\n",
              static_cast<unsigned long long>(proxy.checkpoints_taken()));

  // Crash #1: recovery re-resolves to another existing instance.
  std::string victim = proxy.current().ior().host;
  cluster.crash_host(victim);
  std::printf("crash #1 (%s): ", victim.c_str());
  const double pi = proxy.call("get", {corba::Value("pi")}).as_f64();
  std::printf("recovered to %s via re-resolve, pi=%.5f\n",
              proxy.current().ior().host.c_str(), pi);

  // Crash #2: recovery again (fresh offers still exist).
  victim = proxy.current().ior().host;
  cluster.crash_host(victim);
  runtime.events().run_until(runtime.events().now() + 5.0);  // staleness
  std::printf("crash #2 (%s): ", victim.c_str());
  proxy.call("put", {corba::Value("phi"), corba::Value(1.61803)});
  std::printf("recovered to %s, added a third entry\n",
              proxy.current().ior().host.c_str());

  // Crash #3: every original instance is gone; a ServiceFactory on the
  // remaining live workstation creates a brand-new one, and the checkpoint
  // store repopulates it.
  victim = proxy.current().ior().host;
  cluster.crash_host(victim);
  runtime.events().run_until(runtime.events().now() + 5.0);
  for (const std::string& host : runtime.worker_hosts())
    if (!cluster.host(host).alive()) cluster.restart_host(host);
  std::printf("crash #3 (%s), dead hosts rebooted empty: ", victim.c_str());
  const std::int64_t size = proxy.call("size", {}).as_i64();
  std::printf("factory-created replacement on %s holds %lld entries\n\n",
              proxy.current().ior().host.c_str(),
              static_cast<long long>(size));

  // Deferred-synchronous calls through a fault-tolerant request proxy.
  ft::RequestProxy request(proxy, "get");
  request.add_argument(corba::Value("phi"));
  request.send_deferred();
  request.get_response();
  std::printf("DII request proxy: phi=%.5f (reissues after failure: %d)\n",
              request.return_value().as_f64(), request.reissues());

  // Migration: no failure, just a better machine.
  const std::string before = proxy.current().ior().host;
  cluster.set_background_load(before, 5);
  runtime.events().run_until(runtime.events().now() + 2.0);
  proxy.recover_now();
  std::printf("migration: %s (loaded) -> %s; table still has %lld entries\n",
              before.c_str(), proxy.current().ior().host.c_str(),
              static_cast<long long>(proxy.call("size", {}).as_i64()));

  std::printf("\ntotals: recoveries=%llu checkpoints=%llu retries=%llu\n",
              static_cast<unsigned long long>(proxy.recoveries()),
              static_cast<unsigned long long>(proxy.checkpoints_taken()),
              static_cast<unsigned long long>(proxy.retries()));

  // What the runtime saw: the full recovery timeline of the three crashes
  // and the migration, then the text metrics export.
  obs::install_timeline(nullptr);
  std::printf("\n--- recovery timeline (virtual seconds) ---\n%s",
              timeline.to_string().c_str());
  std::printf("\n--- metrics (text exporter) ---\n%s",
              obs::to_text(obs::MetricsRegistry::global().snapshot()).c_str());

  // The same data is reachable in-band: every node binds a telemetry
  // servant under `_obs/<host>`, and orbtop renders the cluster from it.
  naming::NamingContextStub root = runtime.naming();
  std::printf("\n--- orbtop (one snapshot of this cluster) ---\n%s",
              obs::render_table(obs::collect_cluster(root)).c_str());
  std::printf(
      "\n(live TCP deployments: ./build/tools/orbtop --ior <naming IOR> "
      "--watch 2)\n");
  return size == 3 ? 0 : 1;
}
