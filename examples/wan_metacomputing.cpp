// Wide-area meta-computing (§5 future work (c)) as a runnable example:
// two sites federated by the hierarchical Winner manager.  Placement stays
// on the home site while it has capacity, spills across the WAN when home
// machines are saturated, and comes back once the load clears.
#include <cstdio>

#include "core/sim_runtime.hpp"
#include "orb/dii.hpp"
#include "sim/work_meter.hpp"

namespace {

class CruncherServant final : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:example/Cruncher:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "crunch") {
      check_arity(op, args, 1);
      sim::WorkMeter::charge(args[0].as_f64());
      return corba::Value(true);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

}  // namespace

int main() {
  // Two sites: 3 workstations in Siegen, 4 in a remote partner lab,
  // connected by a 30 ms / 1 MB/s WAN.
  sim::Cluster cluster;
  std::map<std::string, std::string> domains;
  for (int i = 0; i < 3; ++i) {
    cluster.add_host("siegen" + std::to_string(i), 1e5);
    domains["siegen" + std::to_string(i)] = "siegen";
  }
  for (int i = 0; i < 4; ++i) {
    cluster.add_host("partner" + std::to_string(i), 1e5);
    domains["partner" + std::to_string(i)] = "partner";
  }
  cluster.network().wan_latency_s = 0.03;
  cluster.network().wan_bandwidth_bytes_per_s = 1e6;

  rt::RuntimeOptions options;
  options.host_domains = domains;
  options.home_domain = "siegen";
  options.wan_remote_penalty = 0.5;  // coarse-grained work amortizes the WAN
  options.infra_speed = 1e5;
  options.winner_stale_after = 2.5;
  rt::SimRuntime runtime(cluster, options);

  runtime.registry()->register_type(
      "Cruncher", [] { return std::make_shared<CruncherServant>(); });
  const naming::Name name = naming::Name::parse("Cruncher");
  runtime.deploy_everywhere(name, "Cruncher");
  runtime.events().run_until(runtime.events().now() + 1.1);

  std::printf("sites: %zu hosts at siegen (home), %zu at partner (WAN)\n\n",
              std::size_t{3}, std::size_t{4});

  // Resolve five workers: the first three fill the home site, the WAN
  // penalty is then cheaper than doubling up, so the rest spill over.
  std::printf("placing 5 workers through the hierarchical naming service:\n");
  std::vector<corba::ObjectRef> workers;
  int home = 0, remote = 0;
  for (int i = 0; i < 5; ++i) {
    workers.push_back(runtime.resolve(name));
    const std::string host = workers.back().ior().host;
    (host.rfind("siegen", 0) == 0 ? home : remote) += 1;
    std::printf("  worker %d -> %s\n", i, host.c_str());
  }
  std::printf("=> %d local, %d across the WAN\n\n", home, remote);

  // Run them in parallel: 30 s of work each, deferred-synchronously.
  const double t0 = runtime.events().now();
  std::vector<corba::Request> requests;
  for (const corba::ObjectRef& worker : workers) {
    requests.emplace_back(worker, "crunch");
    requests.back().add_argument(corba::Value(3e6));
    requests.back().send_deferred();
  }
  for (corba::Request& request : requests) request.get_response();
  std::printf("5 x 30 s of work finished in %.1f virtual seconds "
              "(vs 60.0 s on the home site alone)\n",
              runtime.events().now() - t0);
  return (home == 3 && remote == 2) ? 0 : 1;
}
