// The paper's flagship workload as a runnable example: parallel
// minimization of the decomposed 100-dimensional Rosenbrock function by 7
// Complex Box workers on a simulated 10-workstation NOW, with Winner-driven
// placement and fault-tolerant request proxies.
//
// Two of the ten workstations carry background load, and one placed worker
// host crashes mid-run — the optimization routes around the load and
// survives the crash, the scenario the paper's engineering (MDO)
// applications motivate.
#include <cstdio>

#include "opt/manager.hpp"

int main() {
  sim::Cluster cluster;
  for (int i = 0; i < 10; ++i)
    cluster.add_host("node" + std::to_string(i), 1e5);

  rt::RuntimeOptions options;
  options.naming_strategy = naming::ResolveStrategy::winner;
  options.winner_stale_after = 2.5;
  options.infra_speed = 1e5;
  rt::SimRuntime runtime(cluster, options);

  // Background load on two machines, visible to Winner before placement.
  cluster.set_background_load("node2", 1);
  cluster.set_background_load("node5", 1);
  runtime.events().run_until(1.001);

  opt::SolverConfig config;
  config.dimension = 100;
  config.workers = 7;
  config.worker_iterations = 4000;
  config.manager_iterations = 12;
  config.manager_host = "node9";
  config.use_ft = true;
  config.ft_policy.max_attempts = 5;
  config.work_per_state_byte = 20.0;

  opt::DecomposedSolver solver(runtime, config);
  solver.deploy();

  std::printf("100-dim Rosenbrock, 7 workers + 6-dim manager problem\n");
  std::printf("background load on: node2 node5\n");
  std::printf("worker placement:  ");
  for (const std::string& host : solver.placements())
    std::printf(" %s", host.c_str());
  std::printf("\n");

  // One of the placed workstations dies a few minutes in.
  const std::string victim = solver.placements().front();
  cluster.crash_host_at(120.0, victim);
  std::printf("scheduled crash of %s at t=120s\n\n", victim.c_str());

  const opt::SolverResult result = solver.run();

  std::printf("done: best value %.4f after %d parallel rounds "
              "(%lld worker calls)\n",
              result.best_value, result.rounds,
              static_cast<long long>(result.worker_calls));
  std::printf("virtual runtime: %.1f s\n", result.virtual_seconds);
  std::printf("recoveries: %llu, checkpoints: %llu\n",
              static_cast<unsigned long long>(result.recoveries),
              static_cast<unsigned long long>(result.checkpoints));

  // The loaded machines must not have been selected for workers.
  bool avoided = true;
  for (const std::string& host : solver.placements())
    if (host == "node2" || host == "node5") avoided = false;
  std::printf("loaded machines avoided by placement: %s\n",
              avoided ? "yes" : "no");
  return (result.recoveries >= 1 && avoided) ? 0 : 1;
}
