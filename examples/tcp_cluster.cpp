// Real-socket deployment: the same services, over TCP.
//
// Everything the other examples do in virtual time also runs on the real
// transport: this example starts three "server processes" (ORBs with TCP
// endpoints on loopback), a naming service with the load-distribution
// extension, a Winner system manager fed by node managers (here with
// synthetic sensors; swap in ProcLoadavgSensor for the real machine), and
// an optimization worker pool — then places and calls workers through
// stringified IORs exactly as separate processes would.
#include <cstdio>

#include "ft/checkpoint.hpp"
#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "obs/telemetry.hpp"
#include "opt/worker.hpp"
#include "orb/tcp_transport.hpp"
#include "winner/node_manager.hpp"
#include "winner/system_manager.hpp"
#include "winner/system_manager_corba.hpp"

int main() {
  // --- the "infrastructure process" ----------------------------------------
  auto infra = corba::ORB::init({.endpoint_name = "infra", .enable_tcp = true});
  auto winner_impl = std::make_shared<winner::SystemManager>();
  const corba::ObjectRef winner_ref = infra->activate(
      std::make_shared<winner::SystemManagerServant>(winner_impl));
  naming::NamingContextOptions naming_options;
  naming_options.default_strategy = naming::ResolveStrategy::winner;
  naming_options.winner = winner_impl;
  auto [naming_servant, naming_ref] =
      naming::NamingContextServant::create_root(infra, naming_options);
  // In a real deployment this string is what you hand to other processes.
  const std::string naming_ior = naming_ref.ior().to_string();
  std::printf("naming service: %.60s...\n", naming_ior.c_str());
  // Drop the full IOR where tools can pick it up:
  //   ./build/tools/orbtop --ior-file tcp_cluster.ior --json
  if (std::FILE* ior_file = std::fopen("tcp_cluster.ior", "w")) {
    std::fprintf(ior_file, "%s\n", naming_ior.c_str());
    std::fclose(ior_file);
    std::printf("full IOR written to tcp_cluster.ior (try: "
                "tools/orbtop --ior-file tcp_cluster.ior)\n");
  }

  // --- three "workstation processes" ---------------------------------------
  opt::WorkerProblem problem;
  problem.dimension = 30;
  problem.blocks = 3;
  std::vector<std::shared_ptr<corba::ORB>> nodes;
  std::vector<std::unique_ptr<winner::NodeManager>> managers;
  std::vector<double> synthetic_load = {2.0, 0.1, 1.0};
  for (int i = 0; i < 3; ++i) {
    const std::string host = "tcp-node" + std::to_string(i);
    auto orb = corba::ORB::init({.endpoint_name = host, .enable_tcp = true});
    // Each node bootstraps from the stringified naming IOR.
    naming::NamingContextStub root(orb->string_to_object(naming_ior));
    winner_impl->register_host(host, 1.0);
    const corba::ObjectRef worker_ref =
        orb->activate(std::make_shared<opt::OptWorkerServant>(problem));
    root.bind_offer(naming::Name::parse("OptWorker"), worker_ref, host);
    // A node manager reporting (synthetic) load over the wire, oneway.
    auto manager_stub = std::make_shared<winner::SystemManagerStub>(
        orb->make_ref(winner_ref.ior()));
    managers.push_back(std::make_unique<winner::NodeManager>(
        host,
        std::make_shared<winner::CallbackSensor>(
            [&, i] { return synthetic_load[static_cast<std::size_t>(i)]; }),
        manager_stub, 0.05));
    managers.back()->start_threaded();
    // In-band telemetry under the reserved `_obs/<host>` path, so orbtop
    // (and any other client holding the naming IOR) can inspect this node.
    obs::TelemetryOptions telemetry;
    telemetry.host = host;
    telemetry.load_index = [&winner_impl, host] {
      return winner_impl->host_index(host);
    };
    obs::install_telemetry(orb, *naming_servant, std::move(telemetry));
    nodes.push_back(std::move(orb));
    std::printf("%s listening on port %u, synthetic load %.1f\n", host.c_str(),
                nodes.back()->tcp_port(),
                synthetic_load[static_cast<std::size_t>(i)]);
  }

  // --- a "client process" ----------------------------------------------------
  auto client = corba::ORB::init({.endpoint_name = "client", .enable_tcp = true});
  naming::NamingContextStub root(client->string_to_object(naming_ior));

  // Wait until every node has reported at least once.
  for (const auto& manager : managers)
    while (manager->reports_sent() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Load-aware resolution over real sockets: tcp-node1 has the least load.
  const corba::ObjectRef picked = root.resolve(naming::Name::parse("OptWorker"));
  std::printf("\nresolve() picked %s (expected tcp-node1)\n",
              picked.ior().host == "127.0.0.1" ? "a TCP endpoint" : "?!");

  opt::OptWorkerStub worker(picked);
  const std::vector<double> coupling = {1.0, 1.0};
  const opt::SolveOutcome outcome = worker.solve(0, coupling, 2000);
  std::printf("remote solve over TCP: best=%.4f after %lld evaluations\n",
              outcome.best_value,
              static_cast<long long>(outcome.evaluations));

  // Checkpoint over the wire, restore into a different node's worker.
  const corba::Blob state = ft::get_state(picked);
  const corba::ObjectRef other = root.resolve_with(
      naming::Name::parse("OptWorker"), naming::ResolveStrategy::round_robin);
  ft::set_state(other, state);
  std::printf("checkpoint (%zu bytes) transplanted to another node: calls=%lld\n",
              state.size(),
              static_cast<long long>(opt::OptWorkerStub(other).calls()));

  for (auto& manager : managers) manager->stop();
  for (auto& node : nodes) node->shutdown();
  infra->shutdown();
  client->shutdown();
  std::printf("clean shutdown.\n");
  return outcome.evaluations > 0 ? 0 : 1;
}
