// Unit tests for the Checkpointable mixin and its client accessors.
#include "ft/checkpoint.hpp"

#include <gtest/gtest.h>

#include "ft_test_common.hpp"
#include "orb/orb.hpp"

namespace ft {
namespace {

using corbaft_test::CounterServant;
using corbaft_test::CounterStub;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    orb_ = corba::ORB::init({.endpoint_name = "node", .network = network_});
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> orb_;
};

TEST_F(CheckpointTest, StateRoundTripsThroughTheWire) {
  const corba::ObjectRef ref = orb_->activate(std::make_shared<CounterServant>());
  CounterStub counter(ref);
  counter.add(30);
  counter.add(12);

  const corba::Blob state = get_state(ref);
  EXPECT_FALSE(state.empty());

  // Restore into a brand-new instance: it continues from 42.
  const corba::ObjectRef fresh = orb_->activate(std::make_shared<CounterServant>());
  set_state(fresh, state);
  EXPECT_EQ(CounterStub(fresh).total(), 42);
}

TEST_F(CheckpointTest, SetStateOverwritesExistingState) {
  const corba::ObjectRef a = orb_->activate(std::make_shared<CounterServant>());
  const corba::ObjectRef b = orb_->activate(std::make_shared<CounterServant>());
  CounterStub(a).add(7);
  CounterStub(b).add(1000);
  set_state(b, get_state(a));
  EXPECT_EQ(CounterStub(b).total(), 7);
}

TEST_F(CheckpointTest, StateOpsValidateArity) {
  const corba::ObjectRef ref = orb_->activate(std::make_shared<CounterServant>());
  EXPECT_THROW(ref.invoke(kGetStateOp, {corba::Value(1)}), corba::BAD_PARAM);
  EXPECT_THROW(ref.invoke(kSetStateOp, {}), corba::BAD_PARAM);
}

TEST_F(CheckpointTest, NonCheckpointableServantRejectsStateOps) {
  class Plain : public corba::Servant {
   public:
    std::string_view repo_id() const noexcept override {
      return "IDL:corbaft/tests/Plain:1.0";
    }
    corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
      throw corba::BAD_OPERATION(std::string(op));
    }
  };
  const corba::ObjectRef ref = orb_->activate(std::make_shared<Plain>());
  EXPECT_THROW(get_state(ref), corba::BAD_OPERATION);
}

TEST_F(CheckpointTest, CorruptStateBlobRejected) {
  const corba::ObjectRef ref = orb_->activate(std::make_shared<CounterServant>());
  corba::Blob garbage{std::byte{1}};  // too short for an i64
  EXPECT_THROW(set_state(ref, garbage), corba::MARSHAL);
}

}  // namespace
}  // namespace ft
