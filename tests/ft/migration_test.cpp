// Tests of the automatic migration manager: threshold behaviour, no
// self-chasing, state preservation, and the simulated drive mode.
#include "ft/migration.hpp"

#include <gtest/gtest.h>

#include "ft_test_common.hpp"

namespace ft {
namespace {

using corbaft_test::FtDeploymentTest;

class MigrationTest : public FtDeploymentTest {
 protected:
  void let_reports_arrive() {
    runtime_->events().run_until(runtime_->events().now() + 2.0);
  }
};

TEST_F(MigrationTest, ConfigValidation) {
  EXPECT_THROW(MigrationManager(nullptr, {}), corba::BAD_PARAM);
  EXPECT_THROW(MigrationManager(runtime_->winner_impl(), {.period = 0}),
               corba::BAD_PARAM);
  EXPECT_THROW(
      MigrationManager(runtime_->winner_impl(), {.min_improvement = 0}),
      corba::BAD_PARAM);
  EXPECT_THROW(
      MigrationManager(runtime_->winner_impl(), {.max_migrations_per_sweep = 0}),
      corba::BAD_PARAM);
}

TEST_F(MigrationTest, BalancedClusterCausesNoMigration) {
  ProxyEngine engine(proxy_config());
  MigrationManager manager(runtime_->winner_impl(), {});
  manager.manage(engine);
  for (int i = 0; i < 5; ++i) {
    manager.sweep();
    let_reports_arrive();
  }
  EXPECT_EQ(manager.migrations(), 0u);
}

TEST_F(MigrationTest, MigratesAwayFromLoadedHostWithState) {
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{42})});
  const std::string original = engine.current_host();

  cluster_.set_background_load(original, 3);
  let_reports_arrive();

  MigrationManager manager(runtime_->winner_impl(), {});
  manager.manage(engine);
  manager.sweep();
  EXPECT_EQ(manager.migrations(), 1u);
  EXPECT_NE(engine.current_host(), original);
  // State moved with the service.
  EXPECT_EQ(engine.call("total", {}).as_i64(), 42);
}

TEST_F(MigrationTest, SmallImbalanceBelowThresholdIgnored) {
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{1})});
  cluster_.set_background_load(engine.current_host(), 1);  // gap 1.0 < 1.5
  let_reports_arrive();
  MigrationManager manager(runtime_->winner_impl(), {});
  manager.manage(engine);
  manager.sweep();
  EXPECT_EQ(manager.migrations(), 0u);
}

TEST_F(MigrationTest, DoesNotChaseItsOwnTail) {
  // After migrating once, the manager must settle: the service's own
  // presence on the new host is not a reason to move again.
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{1})});
  cluster_.set_background_load(engine.current_host(), 3);
  let_reports_arrive();
  MigrationManager manager(runtime_->winner_impl(), {});
  manager.manage(engine);
  manager.sweep();
  ASSERT_EQ(manager.migrations(), 1u);
  const std::string home = engine.current_host();
  for (int i = 0; i < 5; ++i) {
    let_reports_arrive();
    manager.sweep();
  }
  EXPECT_EQ(manager.migrations(), 1u);
  EXPECT_EQ(engine.current_host(), home);
}

TEST_F(MigrationTest, MigrationsPerSweepAreCapped) {
  ProxyEngine a(proxy_config());
  ft::ProxyConfig config_b = runtime_->make_proxy_config(
      service_name(), std::string(corbaft_test::kCounterServiceType),
      "counter-2");
  ProxyEngine b(std::move(config_b));
  a.call("add", {corba::Value(std::int64_t{1})});
  b.call("add", {corba::Value(std::int64_t{1})});
  cluster_.set_background_load(a.current_host(), 4);
  cluster_.set_background_load(b.current_host(), 4);
  let_reports_arrive();

  MigrationManager manager(runtime_->winner_impl(),
                           {.max_migrations_per_sweep = 1});
  manager.manage(a);
  manager.manage(b);
  manager.sweep();
  EXPECT_EQ(manager.migrations(), 1u);
  let_reports_arrive();
  manager.sweep();
  EXPECT_EQ(manager.migrations(), 2u);
}

TEST_F(MigrationTest, UnmanagedEngineIsLeftAlone) {
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{1})});
  cluster_.set_background_load(engine.current_host(), 4);
  let_reports_arrive();
  MigrationManager manager(runtime_->winner_impl(), {});
  manager.manage(engine);
  manager.unmanage(engine);
  manager.sweep();
  EXPECT_EQ(manager.migrations(), 0u);
}

TEST_F(MigrationTest, SimulatedModeMigratesOnItsOwn) {
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{7})});
  const std::string original = engine.current_host();
  MigrationManager manager(runtime_->winner_impl(), {.period = 2.0});
  manager.manage(engine);
  manager.start_simulated(runtime_->events());

  cluster_.set_background_load(original, 3);
  runtime_->events().run_until(runtime_->events().now() + 6.0);
  manager.stop();
  EXPECT_GE(manager.sweeps(), 2u);
  EXPECT_EQ(manager.migrations(), 1u);
  EXPECT_NE(engine.current_host(), original);
  EXPECT_EQ(engine.call("total", {}).as_i64(), 7);
}

}  // namespace
}  // namespace ft
