// Unit tests for service factories and the servant registry.
#include "ft/service_factory.hpp"

#include <gtest/gtest.h>

#include "ft_test_common.hpp"
#include "orb/orb.hpp"

namespace ft {
namespace {

using corbaft_test::CounterServant;
using corbaft_test::CounterStub;

TEST(ServantFactoryRegistry, CreateAndList) {
  ServantFactoryRegistry registry;
  registry.register_type("Counter",
                         [] { return std::make_shared<CounterServant>(); });
  registry.register_type("Other",
                         [] { return std::make_shared<CounterServant>(); });
  EXPECT_EQ(registry.service_types(),
            (std::vector<std::string>{"Counter", "Other"}));
  EXPECT_NE(registry.create("Counter"), nullptr);
  EXPECT_THROW(registry.create("Missing"), UnknownServiceType);
  EXPECT_THROW(registry.register_type("X", nullptr), corba::BAD_PARAM);
}

class FactoryWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    orb_ = corba::ORB::init({.endpoint_name = "node7", .network = network_});
    registry_ = std::make_shared<ServantFactoryRegistry>();
    registry_->register_type("Counter",
                             [] { return std::make_shared<CounterServant>(); });
    servant_ = std::make_shared<ServiceFactoryServant>(orb_, "node7", registry_);
    stub_ = ServiceFactoryStub(orb_->activate(servant_, "Factory"));
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> orb_;
  std::shared_ptr<ServantFactoryRegistry> registry_;
  std::shared_ptr<ServiceFactoryServant> servant_;
  ServiceFactoryStub stub_;
};

TEST_F(FactoryWireTest, CreateActivatesFreshInstances) {
  const corba::ObjectRef a = stub_.create("Counter");
  const corba::ObjectRef b = stub_.create("Counter");
  EXPECT_FALSE(a.ior() == b.ior());
  EXPECT_EQ(servant_->created(), 2u);

  // The created objects are live, independent services on the factory host.
  CounterStub ca(a), cb(b);
  ca.add(5);
  EXPECT_EQ(ca.total(), 5);
  EXPECT_EQ(cb.total(), 0);
  EXPECT_EQ(a.ior().host, "node7");
}

TEST_F(FactoryWireTest, UnknownTypeCrossesWire) {
  EXPECT_THROW(stub_.create("Nope"), UnknownServiceType);
}

TEST_F(FactoryWireTest, MetadataQueries) {
  EXPECT_EQ(stub_.host(), "node7");
  EXPECT_EQ(stub_.service_types(), (std::vector<std::string>{"Counter"}));
  EXPECT_TRUE(stub_.is_a(kServiceFactoryRepoId));
}

TEST_F(FactoryWireTest, RegistryIsSharedLive) {
  // Types registered after factory construction are immediately available.
  registry_->register_type("Late",
                           [] { return std::make_shared<CounterServant>(); });
  EXPECT_NO_THROW(stub_.create("Late"));
}

}  // namespace
}  // namespace ft
