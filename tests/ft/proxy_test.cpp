// Tests of the fault-tolerance proxy engine — the paper's §3 mechanism:
// checkpoint after every call, COMM_FAILURE -> re-resolve/restart ->
// restore -> retry, plus the policy knobs (checkpoint frequency, recovery
// modes, attempt limits).
#include "ft/proxy.hpp"

#include <gtest/gtest.h>

#include "ft_test_common.hpp"
#include "orb/log.hpp"

namespace ft {
namespace {

using corbaft_test::CounterStub;
using corbaft_test::FtDeploymentTest;

class ProxyTest : public FtDeploymentTest {};

TEST_F(ProxyTest, TransparentCallsAndCheckpointEveryCall) {
  ProxyEngine engine(proxy_config());
  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{40})}).as_i64(), 40);
  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{2})}).as_i64(), 42);
  EXPECT_EQ(engine.checkpoints_taken(), 2u);
  EXPECT_EQ(engine.recoveries(), 0u);

  // The checkpoint service holds the latest state under the proxy's key.
  const auto checkpoint = runtime_->checkpoint_store()->load("counter-1");
  ASSERT_TRUE(checkpoint);
  EXPECT_EQ(checkpoint->version, 2u);
}

TEST_F(ProxyTest, CheckpointEveryNthCall) {
  ft::RecoveryPolicy policy;
  policy.checkpoint_every = 3;
  ProxyEngine engine(proxy_config(policy));
  for (int i = 0; i < 7; ++i) engine.call("add", {corba::Value(std::int64_t{1})});
  EXPECT_EQ(engine.checkpoints_taken(), 2u);  // after calls 3 and 6
}

TEST_F(ProxyTest, CheckpointingDisabled) {
  ft::RecoveryPolicy policy;
  policy.checkpoint_every = 0;
  ProxyEngine engine(proxy_config(policy));
  engine.call("add", {corba::Value(std::int64_t{1})});
  EXPECT_EQ(engine.checkpoints_taken(), 0u);
  EXPECT_EQ(runtime_->checkpoint_store()->load("counter-1"), std::nullopt);
}

TEST_F(ProxyTest, CrashRecoverRestoreRetry) {
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{40})});
  engine.call("add", {corba::Value(std::int64_t{2})});

  // Kill the workstation the service runs on.
  const std::string victim = engine.current().ior().host;
  cluster_.crash_host(victim);

  // The next call recovers transparently and the restored state is intact:
  // total continues from 42.
  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{8})}).as_i64(), 50);
  EXPECT_EQ(engine.recoveries(), 1u);
  EXPECT_NE(engine.current().ior().host, victim);
}

TEST_F(ProxyTest, RecoveryUnbindsTheDeadOffer) {
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{1})});
  const std::string victim = engine.current().ior().host;
  cluster_.crash_host(victim);
  engine.call("add", {corba::Value(std::int64_t{1})});

  for (const naming::Offer& offer :
       runtime_->naming().list_offers(service_name())) {
    EXPECT_NE(offer.host, victim);
  }
}

TEST_F(ProxyTest, SequentialCrashesExhaustOffersThenFactoryTakesOver) {
  ft::RecoveryPolicy policy;
  policy.mode = RecoveryMode::reresolve_then_factory;
  policy.max_attempts = 10;
  ProxyEngine engine(proxy_config(policy));
  std::int64_t expected = 0;
  // Crash the current host after each successful call, three times: node 4
  // hosts survive, so the last recovery must go through a factory on an
  // already-used-or-remaining host.
  for (int round = 0; round < 3; ++round) {
    expected += 5;
    EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{5})}).as_i64(),
              expected);
    cluster_.crash_host(engine.current().ior().host);
    // Let Winner notice the death via missed reports.
    runtime_->events().run_until(runtime_->events().now() + 5.0);
  }
  expected += 5;
  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{5})}).as_i64(),
            expected);
  EXPECT_EQ(engine.recoveries(), 3u);
}

TEST_F(ProxyTest, FactoryModeCreatesFreshInstanceAndRebindsOffer) {
  ft::RecoveryPolicy policy;
  policy.mode = RecoveryMode::factory;
  policy.rebind_new_offer = true;
  ProxyEngine engine(proxy_config(policy));
  engine.call("add", {corba::Value(std::int64_t{7})});
  const std::string victim = engine.current().ior().host;
  cluster_.crash_host(victim);
  runtime_->events().run_until(runtime_->events().now() + 5.0);

  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{3})}).as_i64(), 10);
  // The offer pool was repaired: still 4 offers, none on the dead host.
  const auto offers = runtime_->naming().list_offers(service_name());
  EXPECT_EQ(offers.size(), 4u);
  for (const naming::Offer& offer : offers) EXPECT_NE(offer.host, victim);
}

TEST_F(ProxyTest, MaxAttemptsOneMeansNoFaultTolerance) {
  ft::RecoveryPolicy policy;
  policy.max_attempts = 1;
  ProxyEngine engine(proxy_config(policy));
  cluster_.crash_host(engine.current().ior().host);
  EXPECT_THROW(engine.call("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
  EXPECT_EQ(engine.recoveries(), 0u);
}

TEST_F(ProxyTest, CompletedMaybePolicyStopsRetries) {
  ft::RecoveryPolicy policy;
  policy.retry_on_completed_maybe = false;
  ProxyEngine engine(proxy_config(policy));
  // Crash mid-call => COMPLETED_MAYBE; the strict policy must surface it.
  const std::string victim = engine.current().ior().host;
  cluster_.events().schedule_after(
      0.0005, [this, victim] { cluster_.crash_host(victim); });
  try {
    engine.call("add", {corba::Value(std::int64_t{1})});
    // Depending on timing the call may complete before the crash; accept
    // success, but a failure must not have been retried.
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
    EXPECT_EQ(engine.recoveries(), 0u);
  }
}

TEST_F(ProxyTest, StatelessServiceRecoversWithoutStore) {
  ft::ProxyConfig config = proxy_config();
  config.store = nullptr;
  config.checkpoint_key.clear();
  ProxyEngine engine(std::move(config));
  engine.call("add", {corba::Value(std::int64_t{5})});
  cluster_.crash_host(engine.current().ior().host);
  // Recovery succeeds but the replacement starts from scratch (no restore).
  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{1})}).as_i64(), 1);
}

TEST_F(ProxyTest, ReresolveOnlyModeFailsWhenNoOffersLeft) {
  // Single-offer deployment: unbind the other three, crash the last.
  // Recovery failures are swallowed while attempts remain (a transient
  // recovery hiccup must not fail the call), so what surfaces once the
  // budget is exhausted is the *call's* failure against the dead host.
  ft::RecoveryPolicy policy;
  policy.mode = RecoveryMode::reresolve;
  ProxyEngine engine(proxy_config(policy));
  const std::string current = engine.current().ior().host;
  for (const naming::Offer& offer :
       runtime_->naming().list_offers(service_name())) {
    if (offer.host != current)
      runtime_->naming().unbind_offer(service_name(), offer.host);
  }
  cluster_.crash_host(current);
  EXPECT_THROW(engine.call("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
}

TEST_F(ProxyTest, MigrationViaRecoverNow) {
  // The paper notes checkpoint/restore also enables migration "due to a
  // changing load situation": recover_now() without any failure.
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{42})});
  const std::string before = engine.current().ior().host;
  engine.recover_now();
  EXPECT_NE(engine.current().ior().host, before);
  EXPECT_EQ(engine.call("total", {}).as_i64(), 42);  // state migrated
}

TEST_F(ProxyTest, OnRebindHookFires) {
  ProxyEngine engine(proxy_config());
  corba::ObjectRef seen;
  engine.on_rebind = [&seen](const corba::ObjectRef& ref) { seen = ref; };
  engine.call("add", {corba::Value(std::int64_t{1})});
  cluster_.crash_host(engine.current().ior().host);
  engine.call("add", {corba::Value(std::int64_t{1})});
  EXPECT_FALSE(seen.is_nil());
  EXPECT_EQ(seen.ior(), engine.current().ior());
}

TEST_F(ProxyTest, CheckpointFailureNeitherFailsNorRetriesTheCall) {
  // A dead checkpoint service must not fail (or duplicate!) a call that
  // already succeeded — the regression this guards: COMM_FAILURE raised
  // while checkpointing used to be caught by the retry loop, re-executing
  // the call.
  ft::ProxyConfig config = proxy_config();
  corba::IOR bogus;
  bogus.protocol = std::string(corba::protocol::inproc);
  bogus.host = "no-such-store";
  bogus.key = corba::ObjectKey::from_string("k");
  config.store = std::make_shared<ft::CheckpointStoreStub>(
      runtime_->client_orb()->make_ref(bogus));
  ProxyEngine engine(std::move(config));

  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{5})}).as_i64(), 5);
  EXPECT_EQ(engine.checkpoint_failures(), 1u);
  EXPECT_EQ(engine.checkpoints_taken(), 0u);
  EXPECT_EQ(engine.retries(), 0u);
  // The add executed exactly once; the service still answers (recovery with
  // an unreachable store aborts midway, leaving the live instance alone).
  EXPECT_EQ(engine.call("total", {}).as_i64(), 5);
}

TEST_F(ProxyTest, AbortedRecoveryLeavesOfferPoolIntact) {
  // recover_now with an unreachable checkpoint store fails during restore —
  // before any offer bookkeeping — so the naming service is untouched.
  ft::ProxyConfig config = proxy_config();
  corba::IOR bogus;
  bogus.protocol = std::string(corba::protocol::inproc);
  bogus.host = "no-such-store";
  bogus.key = corba::ObjectKey::from_string("k");
  config.store = std::make_shared<ft::CheckpointStoreStub>(
      runtime_->client_orb()->make_ref(bogus));
  ProxyEngine engine(std::move(config));
  EXPECT_THROW(engine.recover_now(), corba::COMM_FAILURE);
  EXPECT_EQ(runtime_->naming().list_offers(service_name()).size(), 4u);
}

TEST_F(ProxyTest, RecoveryEmitsLogEvents) {
  std::vector<std::string> messages;
  corba::log::set_sink([&](corba::log::Level, std::string_view component,
                           std::string_view message) {
    messages.push_back(std::string(component) + ": " + std::string(message));
  });
  ProxyEngine engine(proxy_config());
  engine.call("add", {corba::Value(std::int64_t{1})});
  cluster_.crash_host(engine.current().ior().host);
  engine.call("add", {corba::Value(std::int64_t{1})});
  corba::log::clear_sink();
  ASSERT_FALSE(messages.empty());
  bool saw_retarget = false;
  for (const std::string& message : messages)
    saw_retarget = saw_retarget ||
                   message.find("ft.proxy: service") != std::string::npos;
  EXPECT_TRUE(saw_retarget);
}

TEST_F(ProxyTest, ConfigValidation) {
  ft::ProxyConfig config;
  EXPECT_THROW(ProxyEngine{config}, corba::BAD_PARAM);  // nil target
  config = proxy_config();
  config.policy.max_attempts = 0;
  EXPECT_THROW(ProxyEngine{config}, corba::BAD_PARAM);
  config = proxy_config();
  config.checkpoint_key.clear();
  EXPECT_THROW(ProxyEngine{config}, corba::BAD_PARAM);  // store without key
}

}  // namespace
}  // namespace ft
