// Unit and property tests for chunked state deltas (ft/delta.hpp) and for
// the delta-checkpoint support of both store backends: materialization
// across compaction boundaries, orphan-segment recovery, and the wire ops.
#include "ft/delta.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <random>

#include "ft/checkpoint_store.hpp"
#include "orb/orb.hpp"
#include "sim/work_meter.hpp"

namespace ft {
namespace {

corba::Blob pattern_blob(std::size_t size, std::uint8_t salt = 0) {
  corba::Blob blob(size);
  for (std::size_t i = 0; i < size; ++i)
    blob[i] = static_cast<std::byte>((i * 31 + salt) & 0xff);
  return blob;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Random in-place mutation + occasional resize, deterministic per seed.
corba::Blob mutate(corba::Blob state, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> action(0, 9);
  const int roll = action(rng);
  if (roll == 0 && state.size() > 1) {
    state.resize(state.size() / 2);  // shrink
  } else if (roll == 1) {
    const corba::Blob extra = pattern_blob(1 + rng() % 5000,
                                           static_cast<std::uint8_t>(rng()));
    state.insert(state.end(), extra.begin(), extra.end());  // grow
  }
  if (!state.empty()) {
    std::uniform_int_distribution<std::size_t> pos(0, state.size() - 1);
    const std::size_t touches = 1 + rng() % 8;
    for (std::size_t t = 0; t < touches; ++t)
      state[pos(rng)] = static_cast<std::byte>(rng() & 0xff);
  }
  return state;
}

TEST(StateDelta, DiffDetectsChangedChunksOnly) {
  const corba::Blob base = pattern_blob(4 * kDefaultChunkSize);
  corba::Blob next = base;
  next[0] = ~next[0];                            // chunk 0
  next[2 * kDefaultChunkSize + 7] = std::byte{0x42};  // chunk 2

  const StateDelta delta =
      StateDelta::diff(chunk_fingerprints(base, kDefaultChunkSize),
                       base.size(), next, kDefaultChunkSize);
  ASSERT_EQ(delta.chunks.size(), 2u);
  EXPECT_EQ(delta.chunks[0].index, 0u);
  EXPECT_EQ(delta.chunks[1].index, 2u);
  EXPECT_EQ(delta.apply(base), next);
}

TEST(StateDelta, IdenticalStatesProduceEmptyDelta) {
  const corba::Blob base = pattern_blob(3 * kDefaultChunkSize + 100);
  const StateDelta delta =
      StateDelta::diff(chunk_fingerprints(base, kDefaultChunkSize),
                       base.size(), base, kDefaultChunkSize);
  EXPECT_TRUE(delta.chunks.empty());
  EXPECT_EQ(delta.apply(base), base);
}

TEST(StateDelta, GrowthAndShrinkRoundTrip) {
  const corba::Blob base = pattern_blob(10000);
  for (const std::size_t next_size : {0ul, 1ul, 4096ul, 9999ul, 30000ul}) {
    corba::Blob next = pattern_blob(next_size, 7);
    const StateDelta delta =
        StateDelta::diff(chunk_fingerprints(base, kDefaultChunkSize),
                         base.size(), next, kDefaultChunkSize);
    EXPECT_EQ(delta.apply(base), next) << "next_size=" << next_size;
  }
}

TEST(StateDelta, EncodeDecodeRoundTrip) {
  const corba::Blob base = pattern_blob(3 * 512);
  corba::Blob next = base;
  next[600] = std::byte{0xff};
  const StateDelta delta = StateDelta::diff(chunk_fingerprints(base, 512),
                                            base.size(), next, 512);
  const corba::Blob wire = delta.encode();
  const StateDelta decoded = StateDelta::decode(wire);
  EXPECT_EQ(decoded.chunk_size, delta.chunk_size);
  EXPECT_EQ(decoded.new_size, delta.new_size);
  ASSERT_EQ(decoded.chunks.size(), delta.chunks.size());
  EXPECT_EQ(decoded.apply(base), next);
}

TEST(StateDelta, ApplyRejectsWrongBase) {
  // A delta whose chunk lies beyond the new size is corrupt.
  StateDelta delta;
  delta.chunk_size = 16;
  delta.new_size = 8;
  delta.chunks.push_back({2, pattern_blob(16)});
  EXPECT_THROW(delta.apply(pattern_blob(64)), corba::BAD_PARAM);
}

TEST(StateDelta, RandomizedDiffApplyProperty) {
  std::mt19937_64 rng(1234);
  for (int round = 0; round < 20; ++round) {
    corba::Blob state = pattern_blob(1 + rng() % 20000,
                                     static_cast<std::uint8_t>(round));
    for (int step = 0; step < 15; ++step) {
      const corba::Blob next = mutate(state, rng);
      const StateDelta delta =
          StateDelta::diff(chunk_fingerprints(state, kDefaultChunkSize),
                           state.size(), next, kDefaultChunkSize);
      ASSERT_EQ(delta.apply(state), next)
          << "round " << round << " step " << step;
      state = next;
    }
  }
}

// --- store-backend delta support -------------------------------------------

template <typename Store>
void exercise_delta_contract(Store& store) {
  const corba::Blob v1 = pattern_blob(3 * kDefaultChunkSize);
  store.store("k", 1, v1);

  corba::Blob v2 = v1;
  v2[10] = std::byte{0xee};
  const StateDelta d2 =
      StateDelta::diff(chunk_fingerprints(v1, kDefaultChunkSize), v1.size(),
                       v2, kDefaultChunkSize);
  store.store_delta("k", 1, 2, d2.encode());

  auto loaded = store.load("k");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 2u);
  EXPECT_EQ(loaded->state, v2);

  // Stale and mismatched deltas are rejected like stale full stores.
  EXPECT_THROW(store.store_delta("k", 1, 2, d2.encode()), corba::BAD_PARAM);
  EXPECT_THROW(store.store_delta("k", 1, 3, d2.encode()), corba::BAD_PARAM);
  EXPECT_THROW(store.store_delta("missing", 1, 2, d2.encode()),
               corba::BAD_PARAM);

  // A full store supersedes the chain.
  store.store("k", 7, v1);
  loaded = store.load("k");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 7u);
  EXPECT_EQ(loaded->state, v1);
}

TEST(MemoryCheckpointStoreDelta, Contract) {
  MemoryCheckpointStore store;
  exercise_delta_contract(store);
}

TEST(FileCheckpointStoreDelta, Contract) {
  FileCheckpointStore store(fresh_dir("delta_contract"));
  exercise_delta_contract(store);
}

/// Long random mutation chain through store_delta must materialize the full
/// state at every version, across multiple compaction boundaries.
template <typename Store>
void exercise_delta_chain_property(Store& store) {
  std::mt19937_64 rng(99);
  corba::Blob state = pattern_blob(12000);
  store.store("chain", 1, state);
  std::uint64_t version = 1;

  for (int step = 0; step < 40; ++step) {
    const corba::Blob next = mutate(state, rng);
    const StateDelta delta =
        StateDelta::diff(chunk_fingerprints(state, kDefaultChunkSize),
                         state.size(), next, kDefaultChunkSize);
    store.store_delta("chain", version, version + 1, delta.encode());
    ++version;
    state = next;

    const auto loaded = store.load("chain");
    ASSERT_TRUE(loaded);
    EXPECT_EQ(loaded->version, version) << "step " << step;
    ASSERT_EQ(loaded->state, state) << "step " << step;
  }
}

TEST(MemoryCheckpointStoreDelta, ChainMaterializesAcrossCompactions) {
  MemoryCheckpointStore store({}, DeltaPolicy{.max_chain = 4});
  exercise_delta_chain_property(store);
  EXPECT_GT(store.compactions(), 0u);
  EXPECT_GT(store.delta_stores(), 0u);
}

TEST(FileCheckpointStoreDelta, ChainMaterializesAcrossCompactions) {
  FileCheckpointStore store(fresh_dir("delta_chain"),
                            DeltaPolicy{.max_chain = 4});
  exercise_delta_chain_property(store);
}

TEST(MemoryCheckpointStoreDelta, ChargesShippedBytesNotStateBytes) {
  MemoryCheckpointStore store({.work_per_store = 0.0, .work_per_byte = 1.0});
  const corba::Blob v1 = pattern_blob(8 * kDefaultChunkSize);
  store.store("k", 1, v1);
  corba::Blob v2 = v1;
  v2[0] = ~v2[0];
  const corba::Blob delta =
      StateDelta::diff(chunk_fingerprints(v1, kDefaultChunkSize), v1.size(),
                       v2, kDefaultChunkSize)
          .encode();
  sim::WorkScope scope;
  store.store_delta("k", 1, 2, delta);
  EXPECT_DOUBLE_EQ(scope.consumed(), static_cast<double>(delta.size()));
}

TEST(FileCheckpointStoreDelta, ChainSurvivesReopen) {
  const std::string dir = fresh_dir("delta_reopen");
  const corba::Blob v1 = pattern_blob(9000);
  corba::Blob v2 = v1;
  v2[5000] = std::byte{0x01};
  corba::Blob v3 = v2;
  v3[0] = std::byte{0x02};
  {
    FileCheckpointStore store(dir);
    store.store("k", 1, v1);
    store.store_delta(
        "k", 1, 2,
        StateDelta::diff(chunk_fingerprints(v1, kDefaultChunkSize), v1.size(),
                         v2, kDefaultChunkSize)
            .encode());
    store.store_delta(
        "k", 2, 3,
        StateDelta::diff(chunk_fingerprints(v2, kDefaultChunkSize), v2.size(),
                         v3, kDefaultChunkSize)
            .encode());
  }
  FileCheckpointStore reopened(dir);
  const auto loaded = reopened.load("k");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 3u);
  EXPECT_EQ(loaded->state, v3);
}

/// Crash-restart orphan handling: segments whose base is gone, or whose
/// chain has a gap, are discarded instead of corrupting the materialization.
TEST(FileCheckpointStoreDelta, DiscardsOrphanSegments) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("delta_orphans");
  const corba::Blob v1 = pattern_blob(9000);
  corba::Blob v2 = v1;
  v2[100] = std::byte{0x11};
  corba::Blob v3 = v2;
  v3[8000] = std::byte{0x22};
  {
    FileCheckpointStore store(dir);
    store.store("k", 1, v1);
    store.store_delta(
        "k", 1, 2,
        StateDelta::diff(chunk_fingerprints(v1, kDefaultChunkSize), v1.size(),
                         v2, kDefaultChunkSize)
            .encode());
    store.store_delta(
        "k", 2, 3,
        StateDelta::diff(chunk_fingerprints(v2, kDefaultChunkSize), v2.size(),
                         v3, kDefaultChunkSize)
            .encode());
  }

  // Simulate a crash that lost the middle segment: the chain now has a gap
  // at version 2, so version 3 must be discarded and the base survive.
  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".dckpt") ++segments;
  }
  ASSERT_EQ(segments, 2u);
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".2.dckpt") != std::string::npos) fs::remove(entry.path());
  }

  FileCheckpointStore reopened(dir);
  const auto loaded = reopened.load("k");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 1u);
  EXPECT_EQ(loaded->state, v1);
  // The gapped segment file is gone for good.
  for (const auto& entry : fs::directory_iterator(dir))
    EXPECT_NE(entry.path().extension(), ".dckpt");
}

TEST(FileCheckpointStoreDelta, DiscardsSegmentsWithoutBase) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("delta_no_base");
  const corba::Blob v1 = pattern_blob(5000);
  corba::Blob v2 = v1;
  v2[0] = std::byte{0x33};
  {
    FileCheckpointStore store(dir);
    store.store("k", 1, v1);
    store.store_delta(
        "k", 1, 2,
        StateDelta::diff(chunk_fingerprints(v1, kDefaultChunkSize), v1.size(),
                         v2, kDefaultChunkSize)
            .encode());
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") fs::remove(entry.path());
  }
  FileCheckpointStore reopened(dir);
  EXPECT_EQ(reopened.load("k"), std::nullopt);
  for (const auto& entry : fs::directory_iterator(dir))
    EXPECT_NE(entry.path().extension(), ".dckpt");
}

TEST(CheckpointStoreDelta, WorksOverTheWire) {
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto orb = corba::ORB::init({.endpoint_name = "store", .network = network});
  auto backend = std::make_shared<MemoryCheckpointStore>();
  CheckpointStoreStub stub(
      orb->activate(std::make_shared<CheckpointStoreServant>(backend)));
  exercise_delta_contract(stub);
  EXPECT_GT(backend->delta_stores(), 0u);
}

}  // namespace
}  // namespace ft
