// Sharded + replicated checkpoint store: hash-ring determinism, routing,
// cross-shard key merge, freshest-replica failover, async replication with
// suffix/full catch-up, and multi-writer convergence (this binary carries
// the tsan label — the threaded tests run under -DSANITIZE=thread).
#include "ft/sharded_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <utility>

#include "ft/checkpoint_pipeline.hpp"
#include "ft/delta.hpp"
#include "ft/store_replication.hpp"

namespace ft {
namespace {

constexpr std::uint32_t kChunk = 64;

corba::Blob blob_of(std::string_view text) {
  corba::Blob blob(text.size());
  std::memcpy(blob.data(), text.data(), text.size());
  return blob;
}

/// 1 KiB state of a single fill byte: single-chunk deltas stay far below the
/// base size, so the backend's chain accumulates instead of compacting on
/// every append (which would defeat the suffix catch-up tests).
corba::Blob state_of(char fill) {
  return corba::Blob(1024, std::byte{static_cast<unsigned char>(fill)});
}

corba::Blob mutate(corba::Blob state, std::size_t index, char value) {
  state[index] = std::byte{static_cast<unsigned char>(value)};
  return state;
}

corba::Blob delta_between(const corba::Blob& base, const corba::Blob& next) {
  return StateDelta::diff(chunk_fingerprints(base, kChunk), base.size(), next,
                          kChunk)
      .encode();
}

/// Wrapper that simulates a crashed replica: every call throws TRANSIENT
/// while `down` is set.
class FlakyStore final : public CheckpointStoreClient {
 public:
  explicit FlakyStore(std::shared_ptr<CheckpointStoreClient> inner)
      : inner_(std::move(inner)) {}

  bool down = false;

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override {
    check();
    inner_->store(key, version, state);
  }
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override {
    check();
    inner_->store_delta(key, base_version, version, delta);
  }
  std::optional<Checkpoint> load(const std::string& key) override {
    check();
    return inner_->load(key);
  }
  void remove(const std::string& key) override {
    check();
    inner_->remove(key);
  }
  std::vector<std::string> keys() override {
    check();
    return inner_->keys();
  }
  std::uint64_t head_version(const std::string& key) override {
    check();
    return inner_->head_version(key);
  }
  CheckpointLog fetch_log(const std::string& key,
                          std::uint64_t since) override {
    check();
    return inner_->fetch_log(key, since);
  }

 private:
  void check() const {
    if (down) throw corba::TRANSIENT("replica host crashed");
  }
  std::shared_ptr<CheckpointStoreClient> inner_;
};

// --- hash ring ---------------------------------------------------------------

TEST(HashRing, IsDeterministicAcrossInstances) {
  const HashRing a(8, 64);
  const HashRing b(8, 64);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "object-" + std::to_string(i);
    EXPECT_EQ(a.shard_for(key), b.shard_for(key)) << key;
  }
}

TEST(HashRing, SpreadsKeysOverEveryShard) {
  const HashRing ring(8, 64);
  std::set<std::size_t> hit;
  for (int i = 0; i < 500; ++i)
    hit.insert(ring.shard_for("object-" + std::to_string(i)));
  EXPECT_EQ(hit.size(), 8u);  // 500 keys cannot miss a shard on a 512-pt ring
}

TEST(HashRing, SingleShardTakesEverything) {
  const HashRing ring(1, 64);
  EXPECT_EQ(ring.shard_for("anything"), 0u);
  EXPECT_EQ(ring.shard_for(""), 0u);
}

// --- routing and key merge ---------------------------------------------------

std::vector<ShardedCheckpointStore::ShardReplicas> memory_shards(
    std::size_t count,
    std::vector<std::shared_ptr<MemoryCheckpointStore>>* backends = nullptr) {
  std::vector<ShardedCheckpointStore::ShardReplicas> shards;
  for (std::size_t i = 0; i < count; ++i) {
    auto backend = std::make_shared<MemoryCheckpointStore>();
    if (backends) backends->push_back(backend);
    ShardedCheckpointStore::ShardReplicas set;
    set.replicas.push_back(backend);
    shards.push_back(std::move(set));
  }
  return shards;
}

TEST(ShardedCheckpointStore, RoutesEveryKeyToItsRingShard) {
  std::vector<std::shared_ptr<MemoryCheckpointStore>> backends;
  ShardedCheckpointStore store(memory_shards(4, &backends));
  for (int i = 0; i < 64; ++i) {
    const std::string key = "object-" + std::to_string(i);
    store.store(key, 1, blob_of("v1"));
    const std::size_t shard = store.shard_for_key(key);
    for (std::size_t s = 0; s < backends.size(); ++s) {
      const bool here = backends[s]->load(key).has_value();
      EXPECT_EQ(here, s == shard) << key;
    }
  }
}

TEST(ShardedCheckpointStore, ContractHoldsAcrossShards) {
  ShardedCheckpointStore store(memory_shards(4));
  store.store("k", 1, blob_of("a"));
  EXPECT_THROW(store.store("k", 1, blob_of("b")), corba::BAD_PARAM);
  store.store("k", 2, blob_of("b"));
  EXPECT_EQ(store.load("k")->state, blob_of("b"));
  EXPECT_EQ(store.head_version("k"), 2u);
  EXPECT_EQ(store.load("missing"), std::nullopt);
  store.remove("k");
  EXPECT_EQ(store.load("k"), std::nullopt);
}

TEST(ShardedCheckpointStore, KeysMergeSortedAcrossShards) {
  ShardedCheckpointStore store(memory_shards(4));
  std::vector<std::string> expected;
  for (int i = 0; i < 32; ++i) {
    const std::string key = "object-" + std::to_string(i);
    store.store(key, 1, blob_of("x"));
    expected.push_back(key);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(store.keys(), expected);
}

// --- failover ----------------------------------------------------------------

TEST(ShardedCheckpointStore, FailsOverToTheFreshestReplicaAndSticks) {
  auto primary_inner = std::make_shared<MemoryCheckpointStore>();
  auto stale_follower = std::make_shared<MemoryCheckpointStore>();
  auto fresh_follower = std::make_shared<MemoryCheckpointStore>();
  auto primary = std::make_shared<FlakyStore>(primary_inner);

  // Everybody has v1; only the fresh follower also has v2 (it kept up).
  for (const auto& s : {std::static_pointer_cast<CheckpointStoreClient>(
                            primary_inner),
                        std::static_pointer_cast<CheckpointStoreClient>(
                            stale_follower),
                        std::static_pointer_cast<CheckpointStoreClient>(
                            fresh_follower)})
    s->store("k", 1, blob_of("v1"));
  fresh_follower->store("k", 2, blob_of("v2"));

  ShardedCheckpointStore::ShardReplicas set;
  set.replicas = {primary, stale_follower, fresh_follower};
  std::vector<ShardedCheckpointStore::ShardReplicas> shards;
  shards.push_back(std::move(set));
  ShardedCheckpointStore store(std::move(shards));

  EXPECT_EQ(store.load("k")->version, 1u);  // primary healthy: no failover
  EXPECT_EQ(store.failovers(), 0u);

  primary->down = true;
  // Failover probes head_version and must pick the *freshest* follower
  // (index 2), not the first one.
  EXPECT_EQ(store.load("k")->version, 2u);
  EXPECT_EQ(store.failovers(), 1u);
  EXPECT_EQ(store.active_replica(0), 2u);

  // Promotion is sticky: later calls go straight to the promoted replica
  // even after the old primary recovers.
  primary->down = false;
  store.store("k", 3, blob_of("v3"));
  EXPECT_EQ(store.failovers(), 1u);
  EXPECT_EQ(fresh_follower->load("k")->version, 3u);
  EXPECT_EQ(primary_inner->load("k")->version, 1u);
}

TEST(ShardedCheckpointStore, RethrowsWhenNoReplicaIsReachable) {
  auto a = std::make_shared<FlakyStore>(std::make_shared<MemoryCheckpointStore>());
  auto b = std::make_shared<FlakyStore>(std::make_shared<MemoryCheckpointStore>());
  a->down = b->down = true;
  ShardedCheckpointStore::ShardReplicas set;
  set.replicas = {a, b};
  std::vector<ShardedCheckpointStore::ShardReplicas> shards;
  shards.push_back(std::move(set));
  ShardedCheckpointStore store(std::move(shards));
  EXPECT_THROW(store.load("k"), corba::TRANSIENT);
  EXPECT_EQ(store.failovers(), 0u);
}

TEST(ShardedCheckpointStore, BadParamDoesNotTriggerFailover) {
  auto primary = std::make_shared<MemoryCheckpointStore>();
  auto follower = std::make_shared<MemoryCheckpointStore>();
  ShardedCheckpointStore::ShardReplicas set;
  set.replicas = {primary, follower};
  std::vector<ShardedCheckpointStore::ShardReplicas> shards;
  shards.push_back(std::move(set));
  ShardedCheckpointStore store(std::move(shards));
  store.store("k", 2, blob_of("v2"));
  EXPECT_THROW(store.store("k", 1, blob_of("stale")), corba::BAD_PARAM);
  EXPECT_EQ(store.failovers(), 0u);
  EXPECT_EQ(store.active_replica(0), 0u);
}

// --- replication -------------------------------------------------------------

/// Deferred-executor harness (what the simulator provides in production).
struct DeferQueue {
  std::vector<std::function<void()>> pending;
  std::function<void(std::function<void()>)> hook() {
    return [this](std::function<void()> fn) {
      pending.push_back(std::move(fn));
    };
  }
  void pump() {
    while (!pending.empty()) {
      auto batch = std::exchange(pending, {});
      for (auto& fn : batch) fn();
    }
  }
};

TEST(ReplicatingStore, ForwardsAcknowledgedWritesInOrder) {
  DeferQueue defer;
  auto follower = std::make_shared<MemoryCheckpointStore>();
  ReplicatingStore::Options options;
  options.followers = {follower};
  options.defer = defer.hook();
  options.publish_events = false;
  ReplicatingStore store(std::make_shared<MemoryCheckpointStore>(),
                         std::move(options));

  const corba::Blob v1 = blob_of("aaaaaaaabbbbbbbb");
  const corba::Blob v2 = blob_of("aaaaaaaacccccccc");
  store.store("k", 1, v1);
  store.store_delta("k", 1, 2, delta_between(v1, v2));
  EXPECT_EQ(follower->load("k"), std::nullopt);  // not drained yet

  defer.pump();
  const auto replicated = follower->load("k");
  ASSERT_TRUE(replicated);
  EXPECT_EQ(replicated->version, 2u);
  EXPECT_EQ(replicated->state, v2);
  EXPECT_EQ(follower->delta_stores(), 1u);  // the delta path was reused
  EXPECT_EQ(store.forwards(), 2u);
  EXPECT_EQ(store.replication_lag(), 0u);
}

TEST(ReplicatingStore, RejectedWritesAreNeverForwarded) {
  DeferQueue defer;
  auto follower = std::make_shared<MemoryCheckpointStore>();
  ReplicatingStore::Options options;
  options.followers = {follower};
  options.defer = defer.hook();
  options.publish_events = false;
  ReplicatingStore store(std::make_shared<MemoryCheckpointStore>(),
                         std::move(options));
  store.store("k", 2, blob_of("v2"));
  EXPECT_THROW(store.store("k", 1, blob_of("stale")), corba::BAD_PARAM);
  defer.pump();
  EXPECT_EQ(follower->load("k")->version, 2u);
  EXPECT_EQ(store.forwards(), 1u);  // only the acknowledged write traveled
}

TEST(ReplicatingStore, LaggingFollowerIsCaughtUpWithTheSegmentSuffix) {
  DeferQueue defer;
  auto follower_backend = std::make_shared<MemoryCheckpointStore>();
  auto follower = std::make_shared<FlakyStore>(follower_backend);
  ReplicatingStore::Options options;
  options.followers = {follower};
  options.defer = defer.hook();
  options.publish_events = false;
  auto backend = std::make_shared<MemoryCheckpointStore>(
      MemoryCheckpointStore::CostModel{}, DeltaPolicy{.max_chain = 16});
  ReplicatingStore store(backend, std::move(options));

  corba::Blob state = state_of('a');
  store.store("k", 1, state);
  defer.pump();
  ASSERT_EQ(follower_backend->head_version("k"), 1u);

  // The follower crashes and misses v2 and v3: those forwards fail.
  follower->down = true;
  for (std::uint64_t v = 2; v <= 3; ++v) {
    corba::Blob next = mutate(state, static_cast<std::size_t>(v), 'x');
    store.store_delta("k", v - 1, v, delta_between(state, next));
    state = next;
  }
  defer.pump();
  ASSERT_EQ(follower_backend->head_version("k"), 1u);
  EXPECT_EQ(store.forward_failures(), 2u);

  // Back up: the v4 forward hits a base mismatch at the follower; catch-up
  // ships the v2..v4 suffix from the primary's log, not a full snapshot.
  follower->down = false;
  const corba::Blob next = mutate(state, 512, 'z');
  store.store_delta("k", 3, 4, delta_between(state, next));
  defer.pump();
  EXPECT_EQ(follower_backend->head_version("k"), 4u);
  EXPECT_EQ(follower_backend->load("k")->state, next);
  EXPECT_EQ(store.catchup_suffixes(), 1u);
  EXPECT_EQ(store.catchup_fulls(), 0u);
  EXPECT_EQ(store.replication_lag(), 0u);
}

TEST(ReplicatingStore, EmptyFollowerIsCaughtUpWithAFullSnapshot) {
  DeferQueue defer;
  auto follower_backend = std::make_shared<MemoryCheckpointStore>();
  auto follower = std::make_shared<FlakyStore>(follower_backend);
  ReplicatingStore::Options options;
  options.followers = {follower};
  options.defer = defer.hook();
  options.publish_events = false;
  ReplicatingStore store(std::make_shared<MemoryCheckpointStore>(),
                         std::move(options));

  const corba::Blob v1 = state_of('a');
  const corba::Blob v2 = mutate(v1, 0, 'b');
  follower->down = true;  // the follower never sees the base
  store.store("k", 1, v1);
  defer.pump();
  ASSERT_EQ(follower_backend->head_version("k"), 0u);

  follower->down = false;
  store.store_delta("k", 1, 2, delta_between(v1, v2));
  defer.pump();
  // Forwarded delta -> "delta without base" -> catch-up; the follower's
  // head (0) is not on the primary's chain, so a full snapshot ships.
  EXPECT_EQ(follower_backend->head_version("k"), 2u);
  EXPECT_EQ(follower_backend->load("k")->state, v2);
  EXPECT_EQ(store.catchup_fulls(), 1u);
}

TEST(ReplicatingStore, UnreachableFollowerCountsAsForwardFailure) {
  DeferQueue defer;
  auto follower =
      std::make_shared<FlakyStore>(std::make_shared<MemoryCheckpointStore>());
  follower->down = true;
  ReplicatingStore::Options options;
  options.followers = {follower};
  options.defer = defer.hook();
  options.forward_attempts = 2;
  options.publish_events = false;
  ReplicatingStore store(std::make_shared<MemoryCheckpointStore>(),
                         std::move(options));
  store.store("k", 1, blob_of("v1"));
  defer.pump();
  EXPECT_EQ(store.forwards(), 0u);
  EXPECT_EQ(store.forward_failures(), 1u);
  EXPECT_EQ(store.replication_lag(), 1u);  // follower is one version behind
}

TEST(ReplicatingStore, WorkerModeConvergesUnderConcurrentWriters) {
  // No defer hook -> lazy worker thread, real concurrency (tsan coverage).
  auto follower = std::make_shared<MemoryCheckpointStore>();
  ReplicatingStore::Options options;
  options.followers = {follower};
  options.publish_events = false;
  auto backend = std::make_shared<MemoryCheckpointStore>();
  ReplicatingStore store(backend, std::move(options));

  constexpr int kWriters = 4;
  constexpr std::uint64_t kVersions = 25;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      const std::string key = "writer-" + std::to_string(w);
      for (std::uint64_t v = 1; v <= kVersions; ++v)
        store.store(key, v, blob_of("state-" + std::to_string(v)));
    });
  }
  for (std::thread& t : writers) t.join();
  store.flush();

  for (int w = 0; w < kWriters; ++w) {
    const std::string key = "writer-" + std::to_string(w);
    EXPECT_EQ(backend->head_version(key), kVersions);
    EXPECT_EQ(follower->head_version(key), kVersions);
  }
  EXPECT_EQ(store.replication_lag(), 0u);
}

TEST(ShardedAndReplicated, ConcurrentWritersAcrossShards) {
  // Full stack, no network: 4 shards x (primary + follower), 8 writer
  // threads hammering their own keys through one sharded client.
  std::vector<std::shared_ptr<ReplicatingStore>> primaries;
  std::vector<std::shared_ptr<MemoryCheckpointStore>> followers;
  std::vector<ShardedCheckpointStore::ShardReplicas> shards;
  for (int s = 0; s < 4; ++s) {
    auto follower = std::make_shared<MemoryCheckpointStore>();
    ReplicatingStore::Options options;
    options.followers = {follower};
    options.publish_events = false;
    auto primary = std::make_shared<ReplicatingStore>(
        std::make_shared<MemoryCheckpointStore>(), std::move(options));
    followers.push_back(follower);
    primaries.push_back(primary);
    ShardedCheckpointStore::ShardReplicas set;
    set.replicas = {primary, follower};
    shards.push_back(std::move(set));
  }
  ShardedCheckpointStore store(std::move(shards));

  constexpr int kWriters = 8;
  constexpr std::uint64_t kVersions = 20;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      const std::string key = "writer-" + std::to_string(w);
      for (std::uint64_t v = 1; v <= kVersions; ++v)
        store.store(key, v, blob_of("state-" + std::to_string(v)));
    });
  }
  for (std::thread& t : writers) t.join();
  for (const auto& primary : primaries) primary->flush();

  for (int w = 0; w < kWriters; ++w) {
    const std::string key = "writer-" + std::to_string(w);
    EXPECT_EQ(store.head_version(key), kVersions);
    const std::size_t shard = store.shard_for_key(key);
    EXPECT_EQ(followers[shard]->head_version(key), kVersions) << key;
  }
}

// --- pipeline fallback visibility (satellite: fallback-storm counter) --------

TEST(CheckpointPipeline, CountsDeltaFallbacksWhenTheBaseMoves) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  CheckpointPipeline::Config config;
  config.store = store;
  config.key = "k";
  config.mode = CheckpointMode::delta_sync;
  config.chunk_size = kChunk;
  CheckpointPipeline pipeline(std::move(config));

  corba::Blob state = state_of('a');
  pipeline.submit(1, state);
  EXPECT_EQ(pipeline.delta_fallbacks(), 0u);

  // Another writer replaces the base under the pipeline — exactly what a
  // failover to a lagging promoted replica looks like from here.
  store->store("k", 5, state_of('i'));

  state = mutate(state, 0, 'z');
  pipeline.submit(6, state);  // delta vs v1 -> BAD_PARAM -> full re-anchor
  EXPECT_EQ(pipeline.delta_fallbacks(), 1u);
  EXPECT_EQ(store->load("k")->version, 6u);
  EXPECT_EQ(pipeline.full_stores(), 2u);

  // Re-anchored: the next capture deltas cleanly again.
  state = mutate(state, 1, 'y');
  pipeline.submit(7, state);
  EXPECT_EQ(pipeline.delta_fallbacks(), 1u);
  EXPECT_EQ(pipeline.delta_stores(), 1u);
}

}  // namespace
}  // namespace ft
