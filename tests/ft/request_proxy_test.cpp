// Tests of fault-tolerant DII request proxies (Fig. 2's "request proxy"):
// deferred-synchronous calls with recovery on get_response.
#include "ft/request_proxy.hpp"

#include <gtest/gtest.h>

#include "ft_test_common.hpp"
#include "sim/work_meter.hpp"

namespace ft {
namespace {

using corbaft_test::FtDeploymentTest;

/// A Counter whose operations take real (virtual) time — long enough that a
/// scheduled mid-call crash deterministically lands while the request is
/// resident on the server (=> COMM_FAILURE / COMPLETED_MAYBE).
class SlowCounterServant final : public corbaft_test::CounterServant {
 public:
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "add" || op == "total") sim::WorkMeter::charge(50.0);  // 0.5s
    return CounterServant::dispatch(op, args);
  }
};

class RequestProxyTest : public FtDeploymentTest {
 protected:
  /// Deploys the slow Counter pool and returns a proxy config for it.
  ft::ProxyConfig slow_config(ft::RecoveryPolicy policy = {}) {
    runtime_->registry()->register_type(
        "SlowCounter", [] { return std::make_shared<SlowCounterServant>(); });
    runtime_->deploy_everywhere(slow_name(), "SlowCounter");
    return runtime_->make_proxy_config(slow_name(), "SlowCounter", "slow-1",
                                       policy);
  }
  static naming::Name slow_name() { return naming::Name::parse("SlowCounter"); }
};

TEST_F(RequestProxyTest, DeferredCallCompletes) {
  ProxyEngine engine(proxy_config());
  RequestProxy request(engine, "add");
  request.add_argument(corba::Value(std::int64_t{42}));
  request.send_deferred();
  request.get_response();
  EXPECT_EQ(request.return_value().as_i64(), 42);
  EXPECT_TRUE(request.completed());
  EXPECT_EQ(request.reissues(), 0);
  // Success through a request proxy also triggers the checkpoint policy.
  EXPECT_EQ(engine.checkpoints_taken(), 1u);
}

TEST_F(RequestProxyTest, CallOrderEnforced) {
  ProxyEngine engine(proxy_config());
  RequestProxy request(engine, "add");
  EXPECT_THROW(request.get_response(), corba::BAD_INV_ORDER);
  EXPECT_THROW(request.poll_response(), corba::BAD_INV_ORDER);
  EXPECT_THROW(request.return_value(), corba::BAD_INV_ORDER);
  request.add_argument(corba::Value(std::int64_t{1}));
  request.send_deferred();
  EXPECT_THROW(request.send_deferred(), corba::BAD_INV_ORDER);
  EXPECT_THROW(request.add_argument(corba::Value(std::int64_t{2})),
               corba::BAD_INV_ORDER);
  request.get_response();
  request.get_response();  // idempotent after completion
  EXPECT_EQ(request.return_value().as_i64(), 1);
}

TEST_F(RequestProxyTest, RecoversWhenHostDiesMidFlight) {
  ProxyEngine engine(proxy_config());
  // Build some state so the recovery has something to restore.
  engine.call("add", {corba::Value(std::int64_t{40})});

  const std::string victim = engine.current().ior().host;
  RequestProxy request(engine, "add");
  request.add_argument(corba::Value(std::int64_t{2}));
  request.send_deferred();
  cluster_.crash_host(victim);

  request.get_response();
  EXPECT_EQ(request.return_value().as_i64(), 42);  // 40 restored + 2
  EXPECT_EQ(request.reissues(), 1);
  EXPECT_EQ(engine.recoveries(), 1u);
}

TEST_F(RequestProxyTest, ParallelRequestsAcrossEnginesWithOneFailure) {
  // Two services, two engines; one host dies while both requests are in
  // flight — the affected request recovers, the other is untouched.
  ProxyEngine engine_a(proxy_config());
  ft::ProxyConfig config_b = runtime_->make_proxy_config(
      service_name(), std::string(corbaft_test::kCounterServiceType),
      "counter-2");
  ProxyEngine engine_b(std::move(config_b));
  ASSERT_NE(engine_a.current().ior().host, engine_b.current().ior().host);

  RequestProxy ra(engine_a, "add");
  RequestProxy rb(engine_b, "add");
  ra.add_argument(corba::Value(std::int64_t{10}));
  rb.add_argument(corba::Value(std::int64_t{20}));
  ra.send_deferred();
  rb.send_deferred();
  cluster_.crash_host(engine_a.current().ior().host);
  ra.get_response();
  rb.get_response();
  EXPECT_EQ(ra.return_value().as_i64(), 10);
  EXPECT_EQ(rb.return_value().as_i64(), 20);
  EXPECT_EQ(engine_a.recoveries(), 1u);
  EXPECT_EQ(engine_b.recoveries(), 0u);
}

TEST_F(RequestProxyTest, ExhaustedAttemptsSurfaceFailure) {
  ft::RecoveryPolicy policy;
  policy.max_attempts = 2;
  ProxyEngine engine(proxy_config(policy));
  RequestProxy request(engine, "add");
  request.add_argument(corba::Value(std::int64_t{1}));
  request.send_deferred();
  // Kill every workstation: recovery has nowhere to go.  The second attempt
  // fails during recovery (TRANSIENT) or delivery (COMM_FAILURE).
  for (const std::string& host : runtime_->worker_hosts())
    cluster_.crash_host(host);
  EXPECT_THROW(request.get_response(), corba::SystemException);
}

TEST_F(RequestProxyTest, MidCallCrashSurfacesCompletedMaybeWhenForbidden) {
  // Non-idempotent services set retry_on_completed_maybe = false; a crash
  // while the method may have run must then surface, not silently re-run.
  ft::RecoveryPolicy policy;
  policy.retry_on_completed_maybe = false;
  ProxyEngine engine(slow_config(policy));
  const std::string victim = engine.current().ior().host;

  RequestProxy request(engine, "add");
  request.add_argument(corba::Value(std::int64_t{1}));
  request.send_deferred();
  // The call needs ~0.5s of virtual time; kill the host in the middle.
  cluster_.events().schedule_after(0.1,
                                   [this, victim] { cluster_.crash_host(victim); });
  try {
    request.get_response();
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.minor(), corba::minor_code::server_crashed);
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
  }
  EXPECT_EQ(request.reissues(), 0);
  EXPECT_EQ(engine.recoveries(), 0u);
  EXPECT_EQ(engine.retries(), 0u);
}

TEST_F(RequestProxyTest, MidCallCrashReissuesAfterBackoffByDefault) {
  // Same mid-call crash under the default (idempotent) policy: the request
  // proxy backs off, recovers and re-issues transparently.
  ProxyEngine engine(slow_config());
  const std::string victim = engine.current().ior().host;

  RequestProxy request(engine, "add");
  request.add_argument(corba::Value(std::int64_t{1}));
  request.send_deferred();
  cluster_.events().schedule_after(0.1,
                                   [this, victim] { cluster_.crash_host(victim); });
  request.get_response();
  EXPECT_EQ(request.return_value().as_i64(), 1);
  EXPECT_EQ(request.reissues(), 1);
  EXPECT_EQ(engine.recoveries(), 1u);
  EXPECT_GT(engine.backoff_waited_s(), 0.0);
  EXPECT_NE(engine.current().ior().host, victim);
}

TEST_F(RequestProxyTest, InvokeIsSendPlusGet) {
  ProxyEngine engine(proxy_config());
  RequestProxy request(engine, "total");
  request.invoke();
  EXPECT_EQ(request.return_value().as_i64(), 0);
}

}  // namespace
}  // namespace ft
