// Tests of deferred-synchronous replica-group requests (GroupRequest):
// parallel semantics for both replication styles, failover inside
// get_response, and call-order enforcement.
#include <gtest/gtest.h>

#include "ft/replication.hpp"
#include "ft_test_common.hpp"

namespace ft {
namespace {

using corbaft_test::FtDeploymentTest;

class GroupRequestTest : public FtDeploymentTest {
 protected:
  ReplicaGroupConfig group_config(ReplicationStyle style, int replicas) {
    ReplicaGroupConfig config;
    config.style = style;
    config.service_type = std::string(corbaft_test::kCounterServiceType);
    for (int i = 0; i < replicas; ++i)
      config.factories.push_back(runtime_->factory_on(host_name(i)));
    return config;
  }
};

TEST_F(GroupRequestTest, DeferredPassiveCallCompletes) {
  ReplicaGroup group(group_config(ReplicationStyle::passive, 2));
  GroupRequest request(group, "add");
  request.add_argument(corba::Value(std::int64_t{5}));
  request.send_deferred();
  request.get_response();
  EXPECT_EQ(request.return_value().as_i64(), 5);
  EXPECT_TRUE(request.completed());
  EXPECT_EQ(group.syncs(), 1u);  // passive success triggers the sync policy
}

TEST_F(GroupRequestTest, DeferredActiveCallCompletes) {
  ReplicaGroup group(group_config(ReplicationStyle::active, 3));
  GroupRequest request(group, "add");
  request.add_argument(corba::Value(std::int64_t{9}));
  request.invoke();
  EXPECT_EQ(request.return_value().as_i64(), 9);
}

TEST_F(GroupRequestTest, CallOrderEnforced) {
  ReplicaGroup group(group_config(ReplicationStyle::passive, 2));
  GroupRequest request(group, "add");
  EXPECT_THROW(request.get_response(), corba::BAD_INV_ORDER);
  EXPECT_THROW(request.return_value(), corba::BAD_INV_ORDER);
  request.add_argument(corba::Value(std::int64_t{1}));
  request.send_deferred();
  EXPECT_THROW(request.send_deferred(), corba::BAD_INV_ORDER);
  EXPECT_THROW(request.add_argument(corba::Value(std::int64_t{2})),
               corba::BAD_INV_ORDER);
  request.get_response();
  request.get_response();  // idempotent
  EXPECT_EQ(request.return_value().as_i64(), 1);
}

TEST_F(GroupRequestTest, PassiveFailoverInsideGetResponse) {
  ReplicaGroup group(group_config(ReplicationStyle::passive, 2));
  group.invoke("add", {corba::Value(std::int64_t{40})});  // synced to backup

  GroupRequest request(group, "add");
  request.add_argument(corba::Value(std::int64_t{2}));
  request.send_deferred();
  cluster_.crash_host(group.primary().ior().host);  // dies mid-flight
  request.get_response();
  EXPECT_EQ(request.return_value().as_i64(), 42);  // backup had 40
  EXPECT_EQ(group.failovers(), 1u);
}

TEST_F(GroupRequestTest, ParallelGroupsOverlapInVirtualTime) {
  // The reason GroupRequest exists: two groups working at once take max(),
  // not sum(), of their call times — checked here with the deferred API
  // running two parallel adds over distinct primaries.
  ReplicaGroupConfig ca = group_config(ReplicationStyle::passive, 1);
  ReplicaGroupConfig cb;
  cb.style = ReplicationStyle::passive;
  cb.service_type = ca.service_type;
  cb.factories.push_back(runtime_->factory_on(host_name(2)));
  ReplicaGroup a(std::move(ca));
  ReplicaGroup b(std::move(cb));
  ASSERT_NE(a.primary().ior().host, b.primary().ior().host);

  GroupRequest ra(a, "add");
  GroupRequest rb(b, "add");
  ra.add_argument(corba::Value(std::int64_t{1}));
  rb.add_argument(corba::Value(std::int64_t{2}));
  ra.send_deferred();
  rb.send_deferred();
  ra.get_response();
  rb.get_response();
  EXPECT_EQ(ra.return_value().as_i64(), 1);
  EXPECT_EQ(rb.return_value().as_i64(), 2);
}

TEST_F(GroupRequestTest, ActiveGathersWithPartialFailure) {
  ReplicaGroupConfig config = group_config(ReplicationStyle::active, 3);
  config.auto_repair = false;
  ReplicaGroup group(std::move(config));
  GroupRequest request(group, "add");
  request.add_argument(corba::Value(std::int64_t{4}));
  request.send_deferred();
  cluster_.crash_host(host_name(1));  // one member dies mid-flight
  request.get_response();
  EXPECT_EQ(request.return_value().as_i64(), 4);
  EXPECT_EQ(group.alive_members(), 2u);
}

}  // namespace
}  // namespace ft
