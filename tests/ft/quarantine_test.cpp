// Unit tests of the offer quarantine (shared circuit breaker): strike
// accumulation, sliding window, expiry, probe-streak release, and the
// flapping-instance re-arm rule.
#include "ft/quarantine.hpp"

#include <gtest/gtest.h>

namespace ft {
namespace {

constexpr const char* kService = "pool/solver";
constexpr const char* kHost = "node0";

QuarantineOptions small_options() {
  return {.strikes_to_quarantine = 3,
          .strike_window_s = 10.0,
          .quarantine_duration_s = 5.0,
          .probe_successes_required = 2};
}

TEST(OfferQuarantineTest, OptionsAreValidated) {
  EXPECT_THROW(OfferQuarantine({.strikes_to_quarantine = 0}),
               std::invalid_argument);
  EXPECT_THROW(OfferQuarantine({.strike_window_s = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(OfferQuarantine({.quarantine_duration_s = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(OfferQuarantine({.probe_successes_required = 0}),
               std::invalid_argument);
}

TEST(OfferQuarantineTest, TripsAfterConfiguredStrikes) {
  OfferQuarantine q(small_options());
  q.report_failure(kService, kHost, 0.0);
  q.report_failure(kService, kHost, 1.0);
  EXPECT_FALSE(q.quarantined(kService, kHost, 1.0));
  q.report_failure(kService, kHost, 2.0);
  EXPECT_TRUE(q.quarantined(kService, kHost, 2.0));
  EXPECT_EQ(q.quarantines_imposed(), 1u);
  // Other instances of the same service are unaffected.
  EXPECT_FALSE(q.quarantined(kService, "node1", 2.0));
  EXPECT_FALSE(q.quarantined("pool/other", kHost, 2.0));
}

TEST(OfferQuarantineTest, StrikesOutsideTheWindowDoNotCount) {
  OfferQuarantine q(small_options());
  q.report_failure(kService, kHost, 0.0);
  q.report_failure(kService, kHost, 1.0);
  // 12s later the old strikes have aged out; this starts a fresh window.
  q.report_failure(kService, kHost, 12.0);
  EXPECT_FALSE(q.quarantined(kService, kHost, 12.0));
  q.report_failure(kService, kHost, 13.0);
  EXPECT_FALSE(q.quarantined(kService, kHost, 13.0));
  q.report_failure(kService, kHost, 14.0);
  EXPECT_TRUE(q.quarantined(kService, kHost, 14.0));
}

TEST(OfferQuarantineTest, SuccessOutsideQuarantineClearsStrikes) {
  OfferQuarantine q(small_options());
  q.report_failure(kService, kHost, 0.0);
  q.report_failure(kService, kHost, 1.0);
  q.report_success(kService, kHost, 2.0);
  q.report_failure(kService, kHost, 3.0);
  q.report_failure(kService, kHost, 4.0);
  EXPECT_FALSE(q.quarantined(kService, kHost, 4.0));  // count restarted
}

TEST(OfferQuarantineTest, QuarantineExpiresOnItsOwn) {
  OfferQuarantine q(small_options());
  for (double t : {0.0, 1.0, 2.0}) q.report_failure(kService, kHost, t);
  EXPECT_TRUE(q.quarantined(kService, kHost, 6.9));
  EXPECT_FALSE(q.quarantined(kService, kHost, 7.0));  // 2.0 + 5s duration
}

TEST(OfferQuarantineTest, ProbeStreakReleasesEarly) {
  OfferQuarantine q(small_options());
  for (double t : {0.0, 1.0, 2.0}) q.report_failure(kService, kHost, t);
  EXPECT_TRUE(q.quarantined(kService, kHost, 3.0));
  q.report_success(kService, kHost, 3.0);
  EXPECT_TRUE(q.quarantined(kService, kHost, 3.1));  // one probe is not enough
  q.report_success(kService, kHost, 3.5);
  EXPECT_FALSE(q.quarantined(kService, kHost, 3.6));
  EXPECT_EQ(q.probe_releases(), 1u);
}

TEST(OfferQuarantineTest, FailureWhileQuarantinedReArmsAndResetsStreak) {
  OfferQuarantine q(small_options());
  for (double t : {0.0, 1.0, 2.0}) q.report_failure(kService, kHost, t);
  q.report_success(kService, kHost, 3.0);  // streak 1 of 2
  q.report_failure(kService, kHost, 4.0);  // flap: re-arm, streak resets
  EXPECT_EQ(q.quarantines_imposed(), 2u);
  // Would have expired at 2.0+5=7.0; the re-arm pushed it to 4.0+5=9.0.
  EXPECT_TRUE(q.quarantined(kService, kHost, 8.0));
  q.report_success(kService, kHost, 8.1);  // streak must restart from zero
  EXPECT_TRUE(q.quarantined(kService, kHost, 8.2));
  q.report_success(kService, kHost, 8.3);
  EXPECT_FALSE(q.quarantined(kService, kHost, 8.4));
}

TEST(OfferQuarantineTest, EmptyFastPathTracksRecordedState) {
  OfferQuarantine q(small_options());
  EXPECT_TRUE(q.empty());
  q.report_success(kService, kHost, 0.0);  // success alone records nothing
  EXPECT_TRUE(q.empty());
  q.report_failure(kService, kHost, 1.0);
  EXPECT_FALSE(q.empty());
}

}  // namespace
}  // namespace ft
