// Shared fixture for the fault-tolerance tests: a checkpointable Counter
// service and a small simulated deployment built on rt::SimRuntime.
//
//   interface Counter {              // checkpointable
//     long long add(in long long n); // returns the new total
//     long long total();
//   };
#pragma once

#include <gtest/gtest.h>

#include "core/sim_runtime.hpp"
#include "ft/checkpoint.hpp"
#include "orb/cdr.hpp"
#include "orb/stub.hpp"

namespace corbaft_test {

inline constexpr std::string_view kCounterRepoId =
    "IDL:corbaft/tests/Counter:1.0";
inline constexpr std::string_view kCounterServiceType = "Counter";

class CounterServant : public corba::Servant,
                       public ft::CheckpointableServant {
 public:
  std::string_view repo_id() const noexcept override { return kCounterRepoId; }

  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    if (op == "add") {
      check_arity(op, args, 1);
      total_ += args[0].as_i64();
      return corba::Value(total_);
    }
    if (op == "total") {
      check_arity(op, args, 0);
      return corba::Value(total_);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }

  corba::Blob get_state() override {
    corba::CdrOutputStream out;
    out.write_i64(total_);
    return out.take_buffer();
  }
  void set_state(const corba::Blob& state) override {
    corba::CdrInputStream in(state);
    total_ = in.read_i64();
  }

 private:
  std::int64_t total_ = 0;
};

class CounterStub : public corba::StubBase {
 public:
  CounterStub() = default;
  explicit CounterStub(corba::ObjectRef ref) : StubBase(std::move(ref)) {}

  std::int64_t add(std::int64_t n) const {
    return call("add", {corba::Value(n)}).as_i64();
  }
  std::int64_t total() const { return call("total", {}).as_i64(); }
};

/// Four-workstation deployment with the Counter type registered.
class FtDeploymentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i)
      cluster_.add_host(host_name(i), 100.0);
    rt::RuntimeOptions options;
    options.naming_strategy = naming::ResolveStrategy::winner;
    options.winner_stale_after = 2.5;  // dead hosts drop out of placement
    runtime_ = std::make_unique<rt::SimRuntime>(cluster_, options);
    runtime_->registry()->register_type(
        std::string(kCounterServiceType),
        [] { return std::make_shared<CounterServant>(); });
    runtime_->deploy_everywhere(service_name(), std::string(kCounterServiceType));
    // Let the first round of load reports arrive.
    runtime_->events().run_until(0.001);
  }

  static std::string host_name(int i) { return "node" + std::to_string(i); }
  static naming::Name service_name() { return naming::Name::parse("Counter"); }

  ft::ProxyConfig proxy_config(ft::RecoveryPolicy policy = {}) {
    return runtime_->make_proxy_config(service_name(),
                                       std::string(kCounterServiceType),
                                       "counter-1", policy);
  }

  sim::Cluster cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

}  // namespace corbaft_test
