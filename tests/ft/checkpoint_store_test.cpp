// Unit tests for the checkpoint storage service: both backends directly,
// version monotonicity, persistence, and the servant/stub over the wire.
#include "ft/checkpoint_store.hpp"

#include <gtest/gtest.h>

#include "orb/orb.hpp"
#include "sim/work_meter.hpp"

namespace ft {
namespace {

/// Fresh (pre-cleaned) directory for file-store tests: TempDir contents
/// survive across test-suite invocations.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

corba::Blob make_blob(std::initializer_list<int> bytes) {
  corba::Blob blob;
  for (int b : bytes) blob.push_back(static_cast<std::byte>(b));
  return blob;
}

template <typename Store>
void exercise_basic_contract(Store& store) {
  EXPECT_EQ(store.load("k"), std::nullopt);
  store.store("k", 1, make_blob({1, 2, 3}));
  const auto checkpoint = store.load("k");
  ASSERT_TRUE(checkpoint);
  EXPECT_EQ(checkpoint->version, 1u);
  EXPECT_EQ(checkpoint->state, make_blob({1, 2, 3}));

  store.store("k", 2, make_blob({9}));
  EXPECT_EQ(store.load("k")->version, 2u);
  EXPECT_EQ(store.load("k")->state, make_blob({9}));

  // Stale writers must not clobber newer checkpoints.
  EXPECT_THROW(store.store("k", 2, make_blob({0})), corba::BAD_PARAM);
  EXPECT_THROW(store.store("k", 1, make_blob({0})), corba::BAD_PARAM);

  store.store("other", 1, {});
  EXPECT_EQ(store.keys(), (std::vector<std::string>{"k", "other"}));

  store.remove("k");
  EXPECT_EQ(store.load("k"), std::nullopt);
  store.remove("k");  // idempotent
}

TEST(MemoryCheckpointStore, BasicContract) {
  MemoryCheckpointStore store;
  exercise_basic_contract(store);
}

TEST(MemoryCheckpointStore, CountsOperations) {
  MemoryCheckpointStore store;
  store.store("a", 1, make_blob({1}));
  store.store("b", 1, make_blob({2}));
  store.load("a");
  EXPECT_EQ(store.stores(), 2u);
  EXPECT_EQ(store.loads(), 1u);
}

TEST(MemoryCheckpointStore, ChargesSimulatedWork) {
  MemoryCheckpointStore store({.work_per_store = 100.0, .work_per_byte = 2.0});
  sim::WorkScope scope;
  store.store("k", 1, make_blob({1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(scope.consumed(), 100.0 + 2.0 * 5);
  store.load("k");
  EXPECT_DOUBLE_EQ(scope.consumed(), 2 * (100.0 + 2.0 * 5));
}

TEST(FileCheckpointStore, BasicContract) {
  FileCheckpointStore store(fresh_dir("ckpt_basic"));
  exercise_basic_contract(store);
}

TEST(FileCheckpointStore, SurvivesReopen) {
  const std::string dir = fresh_dir("ckpt_reopen");
  {
    FileCheckpointStore store(dir);
    store.store("worker0", 7, make_blob({1, 2, 3}));
  }
  FileCheckpointStore reopened(dir);
  const auto checkpoint = reopened.load("worker0");
  ASSERT_TRUE(checkpoint);
  EXPECT_EQ(checkpoint->version, 7u);
  EXPECT_EQ(checkpoint->state, make_blob({1, 2, 3}));
  EXPECT_EQ(reopened.keys(), (std::vector<std::string>{"worker0"}));
}

TEST(FileCheckpointStore, HandlesHostileKeys) {
  FileCheckpointStore store(fresh_dir("ckpt_keys"));
  const std::string key = "../../etc/passwd and spaces/..";
  store.store(key, 1, make_blob({1}));
  ASSERT_TRUE(store.load(key));
  EXPECT_EQ(store.keys(), (std::vector<std::string>{key}));
  store.remove(key);
}

class StoreWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    orb_ = corba::ORB::init({.endpoint_name = "store", .network = network_});
    backend_ = std::make_shared<MemoryCheckpointStore>();
    stub_ = CheckpointStoreStub(
        orb_->activate(std::make_shared<CheckpointStoreServant>(backend_)));
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> orb_;
  std::shared_ptr<MemoryCheckpointStore> backend_;
  CheckpointStoreStub stub_;
};

TEST_F(StoreWireTest, FullContractOverTheWire) {
  exercise_basic_contract(stub_);
}

TEST_F(StoreWireTest, MissingCheckpointIsNulloptNotException) {
  EXPECT_EQ(stub_.load("nothing"), std::nullopt);
}

TEST_F(StoreWireTest, StubAndBackendSeeTheSameData) {
  stub_.store("k", 3, make_blob({4, 2}));
  const auto direct = backend_->load("k");
  ASSERT_TRUE(direct);
  EXPECT_EQ(direct->version, 3u);
}

}  // namespace
}  // namespace ft
