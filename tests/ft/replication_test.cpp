// Tests of replication-based fault tolerance (active and passive object
// groups) — the §3 alternative implemented for comparison.
#include "ft/replication.hpp"

#include <gtest/gtest.h>

#include "ft_test_common.hpp"

namespace ft {
namespace {

using corbaft_test::FtDeploymentTest;

class ReplicationTest : public FtDeploymentTest {
 protected:
  ReplicaGroupConfig group_config(ReplicationStyle style, int replicas) {
    ReplicaGroupConfig config;
    config.style = style;
    config.service_type = std::string(corbaft_test::kCounterServiceType);
    for (int i = 0; i < replicas; ++i)
      config.factories.push_back(runtime_->factory_on(host_name(i)));
    return config;
  }
};

TEST_F(ReplicationTest, ConfigValidation) {
  ReplicaGroupConfig config;
  EXPECT_THROW(ReplicaGroup{config}, corba::BAD_PARAM);
  config = group_config(ReplicationStyle::passive, 2);
  config.service_type.clear();
  EXPECT_THROW(ReplicaGroup{config}, corba::BAD_PARAM);
  config = group_config(ReplicationStyle::passive, 2);
  config.sync_every = 0;
  EXPECT_THROW(ReplicaGroup{config}, corba::BAD_PARAM);
}

TEST_F(ReplicationTest, MembersLiveOnDistinctHosts) {
  ReplicaGroup group(group_config(ReplicationStyle::passive, 3));
  EXPECT_EQ(group.size(), 3u);
  EXPECT_EQ(group.alive_members(), 3u);
  EXPECT_EQ(group.primary().ior().host, host_name(0));
}

TEST_F(ReplicationTest, PassiveInvokesPrimaryOnly) {
  ReplicaGroup group(group_config(ReplicationStyle::passive, 2));
  EXPECT_EQ(group.invoke("add", {corba::Value(std::int64_t{5})}).as_i64(), 5);
  // The backup received the state via sync, not via execution: its own
  // counter was *set*, not incremented, so calling it directly shows 5.
  EXPECT_EQ(group.syncs(), 1u);
}

TEST_F(ReplicationTest, PassiveFailoverKeepsSyncedState) {
  ReplicaGroup group(group_config(ReplicationStyle::passive, 2));
  group.invoke("add", {corba::Value(std::int64_t{40})});
  cluster_.crash_host(group.primary().ior().host);
  // Failover to the backup, which was synced to 40.
  EXPECT_EQ(group.invoke("add", {corba::Value(std::int64_t{2})}).as_i64(), 42);
  EXPECT_EQ(group.failovers(), 1u);
}

TEST_F(ReplicationTest, PassiveSparseSyncLosesRecentDelta) {
  ReplicaGroupConfig config = group_config(ReplicationStyle::passive, 2);
  config.sync_every = 10;  // backups lag
  config.auto_repair = false;
  ReplicaGroup group(std::move(config));
  for (int i = 0; i < 3; ++i)
    group.invoke("add", {corba::Value(std::int64_t{10})});
  cluster_.crash_host(group.primary().ior().host);
  // No sync happened yet: the promoted backup starts from 0.
  EXPECT_EQ(group.invoke("add", {corba::Value(std::int64_t{2})}).as_i64(), 2);
}

TEST_F(ReplicationTest, ActiveExecutesOnAllMembers) {
  ReplicaGroup group(group_config(ReplicationStyle::active, 3));
  EXPECT_EQ(group.invoke("add", {corba::Value(std::int64_t{7})}).as_i64(), 7);
  // Active groups never state-sync: every member advanced by *executing*
  // the call, so even after killing all members but the last, the
  // survivor's own state is correct.
  EXPECT_EQ(group.syncs(), 0u);
  cluster_.crash_host(host_name(0));
  cluster_.crash_host(host_name(1));
  EXPECT_EQ(group.invoke("total", {}).as_i64(), 7);
}

TEST_F(ReplicationTest, ActiveMasksFailuresWithZeroDisruption) {
  ReplicaGroupConfig config = group_config(ReplicationStyle::active, 3);
  config.auto_repair = false;
  ReplicaGroup group(std::move(config));
  group.invoke("add", {corba::Value(std::int64_t{40})});
  cluster_.crash_host(host_name(0));
  cluster_.crash_host(host_name(1));
  // Two of three replicas die; the call still succeeds with correct state.
  EXPECT_EQ(group.invoke("add", {corba::Value(std::int64_t{2})}).as_i64(), 42);
  EXPECT_EQ(group.alive_members(), 1u);
}

TEST_F(ReplicationTest, ActiveAgreementCheckPasses) {
  ReplicaGroupConfig config = group_config(ReplicationStyle::active, 3);
  config.verify_agreement = true;
  ReplicaGroup group(std::move(config));
  EXPECT_EQ(group.invoke("add", {corba::Value(std::int64_t{1})}).as_i64(), 1);
}

TEST_F(ReplicationTest, RepairRestoresGroupStrengthAfterReboot) {
  ReplicaGroup group(group_config(ReplicationStyle::passive, 2));
  group.invoke("add", {corba::Value(std::int64_t{10})});
  const std::string victim = group.primary().ior().host;
  cluster_.crash_host(victim);
  // Failover; the automatic repair attempt finds the host still down.
  group.invoke("add", {corba::Value(std::int64_t{5})});
  EXPECT_EQ(group.alive_members(), 1u);
  EXPECT_EQ(group.repairs(), 0u);

  // The machine reboots; repair() re-creates the member through its
  // factory and brings it up to the group's current state.
  cluster_.restart_host(victim);
  group.repair();
  EXPECT_EQ(group.alive_members(), 2u);
  EXPECT_EQ(group.repairs(), 1u);

  // Another immediate failover is therefore lossless: the repaired member
  // carries the state (15).
  cluster_.crash_host(group.primary().ior().host);
  EXPECT_EQ(group.invoke("total", {}).as_i64(), 15);
}

TEST_F(ReplicationTest, AllMembersDeadRaisesCommFailure) {
  ReplicaGroupConfig config = group_config(ReplicationStyle::passive, 2);
  config.auto_repair = false;
  ReplicaGroup group(std::move(config));
  cluster_.crash_host(host_name(0));
  cluster_.crash_host(host_name(1));
  EXPECT_THROW(group.invoke("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
}

TEST_F(ReplicationTest, ActiveGroupAllDeadRaises) {
  ReplicaGroupConfig config = group_config(ReplicationStyle::active, 2);
  config.auto_repair = false;
  ReplicaGroup group(std::move(config));
  cluster_.crash_host(host_name(0));
  cluster_.crash_host(host_name(1));
  EXPECT_THROW(group.invoke("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
}

}  // namespace
}  // namespace ft
