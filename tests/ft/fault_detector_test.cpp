// Tests of the proactive fault detector: suspicion counting, offer
// cleanup, listener notification, and interplay with recovery.
#include "ft/fault_detector.hpp"

#include <gtest/gtest.h>

#include "ft/proxy.hpp"
#include "ft_test_common.hpp"

namespace ft {
namespace {

using corbaft_test::FtDeploymentTest;

class FaultDetectorTest : public FtDeploymentTest {
 protected:
  std::shared_ptr<naming::NamingContextStub> naming_stub() {
    return std::make_shared<naming::NamingContextStub>(runtime_->naming());
  }
};

TEST_F(FaultDetectorTest, ConfigValidation) {
  EXPECT_THROW(FaultDetector(nullptr, {}), corba::BAD_PARAM);
  EXPECT_THROW(FaultDetector(naming_stub(), {.period = 0}), corba::BAD_PARAM);
  EXPECT_THROW(FaultDetector(naming_stub(), {.suspicion_threshold = 0}),
               corba::BAD_PARAM);
  FaultDetector detector(naming_stub(), {});
  EXPECT_THROW(detector.add_listener(nullptr), corba::BAD_PARAM);
}

TEST_F(FaultDetectorTest, HealthyInstancesStayBound) {
  FaultDetector detector(naming_stub(), {});
  detector.monitor(service_name());
  for (int i = 0; i < 5; ++i) detector.sweep(static_cast<double>(i));
  EXPECT_EQ(detector.sweeps(), 5u);
  EXPECT_EQ(detector.faults_detected(), 0u);
  EXPECT_EQ(runtime_->naming().list_offers(service_name()).size(), 4u);
}

TEST_F(FaultDetectorTest, FaultConfirmedAfterThresholdSweeps) {
  FaultDetector detector(naming_stub(), {.suspicion_threshold = 2});
  detector.monitor(service_name());
  cluster_.crash_host(host_name(1));

  detector.sweep(1.0);  // first miss: suspected, not yet confirmed
  EXPECT_EQ(detector.faults_detected(), 0u);
  EXPECT_EQ(detector.suspicion(service_name(), host_name(1)), 1);
  EXPECT_EQ(runtime_->naming().list_offers(service_name()).size(), 4u);

  detector.sweep(2.0);  // second miss: confirmed, offer removed
  EXPECT_EQ(detector.faults_detected(), 1u);
  const auto offers = runtime_->naming().list_offers(service_name());
  EXPECT_EQ(offers.size(), 3u);
  for (const naming::Offer& offer : offers)
    EXPECT_NE(offer.host, host_name(1));
}

TEST_F(FaultDetectorTest, RecoveredInstanceResetsSuspicion) {
  FaultDetector detector(naming_stub(), {.suspicion_threshold = 3});
  detector.monitor(service_name());
  cluster_.crash_host(host_name(2));
  detector.sweep(1.0);
  detector.sweep(2.0);
  EXPECT_EQ(detector.suspicion(service_name(), host_name(2)), 2);
  // The machine comes back before the threshold: no fault.
  cluster_.restart_host(host_name(2));
  detector.sweep(3.0);
  EXPECT_EQ(detector.suspicion(service_name(), host_name(2)), 0);
  EXPECT_EQ(detector.faults_detected(), 0u);
}

TEST_F(FaultDetectorTest, ListenersReceiveReports) {
  FaultDetector detector(naming_stub(), {.suspicion_threshold = 1});
  detector.monitor(service_name());
  std::vector<FaultReport> reports;
  detector.add_listener([&](const FaultReport& r) { reports.push_back(r); });
  cluster_.crash_host(host_name(0));
  detector.sweep(42.0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].service, service_name());
  EXPECT_EQ(reports[0].host, host_name(0));
  EXPECT_EQ(reports[0].detected_at, 42.0);
}

TEST_F(FaultDetectorTest, ThrowingListenerDoesNotKillDetector) {
  FaultDetector detector(naming_stub(), {.suspicion_threshold = 1});
  detector.monitor(service_name());
  detector.add_listener(
      [](const FaultReport&) { throw std::runtime_error("listener bug"); });
  cluster_.crash_host(host_name(0));
  EXPECT_NO_THROW(detector.sweep(1.0));
  EXPECT_EQ(detector.faults_detected(), 1u);
}

TEST_F(FaultDetectorTest, SimulatedModeSweepsPeriodically) {
  auto detector = std::make_shared<FaultDetector>(
      naming_stub(), FaultDetectorOptions{.period = 1.0,
                                          .suspicion_threshold = 2});
  detector->monitor(service_name());
  detector->start_simulated(runtime_->events());
  cluster_.crash_host(host_name(3));
  // Sweeps at t=1,2 (relative): confirmed by t=2+.
  runtime_->events().run_until(runtime_->events().now() + 3.0);
  EXPECT_EQ(detector->faults_detected(), 1u);
  EXPECT_EQ(runtime_->naming().list_offers(service_name()).size(), 3u);
  detector->stop();
}

TEST_F(FaultDetectorTest, ProxyResolvesCleanPoolAfterDetection) {
  // The payoff: with the detector scrubbing the pool, a client that
  // resolves *after* a crash never sees the dead instance at all.
  FaultDetector detector(naming_stub(), {.suspicion_threshold = 1});
  detector.monitor(service_name());
  cluster_.crash_host(host_name(0));
  detector.sweep(1.0);
  for (int i = 0; i < 6; ++i) {
    const corba::ObjectRef ref = runtime_->resolve(service_name());
    EXPECT_NE(ref.ior().host, host_name(0));
    EXPECT_TRUE(ref.ping());
  }
}

TEST_F(FaultDetectorTest, UnmonitorStopsTracking) {
  FaultDetector detector(naming_stub(), {.suspicion_threshold = 1});
  detector.monitor(service_name());
  detector.unmonitor(service_name());
  cluster_.crash_host(host_name(0));
  detector.sweep(1.0);
  EXPECT_EQ(detector.faults_detected(), 0u);
  EXPECT_EQ(runtime_->naming().list_offers(service_name()).size(), 4u);
}

TEST_F(FaultDetectorTest, ThreadedModeRunsOnWallClock) {
  // Threaded mode needs a non-simulated deployment; reuse the runtime but
  // drive sweeps from a real thread against the live (virtual-time-frozen)
  // naming service.  Pings go through the in-process transport, which
  // completes immediately, so wall-clock sweeps work.
  auto detector = std::make_shared<FaultDetector>(
      naming_stub(),
      FaultDetectorOptions{.period = 0.01, .suspicion_threshold = 1});
  detector->monitor(service_name());
  detector->start_threaded();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (detector->sweeps() < 3 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  detector->stop();
  EXPECT_GE(detector->sweeps(), 3u);
}

TEST_F(FaultDetectorTest, ThreadedModeDetectsFaultsAndReportsQuarantine) {
  // Threaded detection end to end: a wall-clock sweep thread pings the
  // (virtual-time-frozen) deployment, confirms the dead instance after the
  // threshold, unbinds its offer, and its failed probes strike the shared
  // quarantine along the way.
  const auto& quarantine = runtime_->quarantine();
  ASSERT_TRUE(quarantine);
  auto detector = std::make_shared<FaultDetector>(
      naming_stub(),
      FaultDetectorOptions{.period = 0.01,
                           .suspicion_threshold = 3,
                           .quarantine = quarantine});
  detector->monitor(service_name());
  cluster_.crash_host(host_name(1));
  detector->start_threaded();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (detector->faults_detected() < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  detector->stop();

  EXPECT_GE(detector->faults_detected(), 1u);
  const auto offers = runtime_->naming().list_offers(service_name());
  EXPECT_EQ(offers.size(), 3u);
  for (const naming::Offer& offer : offers)
    EXPECT_NE(offer.host, host_name(1));
  // Default quarantine options trip after 3 strikes — exactly the threshold
  // sweeps it took to confirm the fault.
  EXPECT_GE(quarantine->quarantines_imposed(), 1u);
}

TEST_F(FaultDetectorTest, ProbesReleaseQuarantinedInstance) {
  // A quarantined-but-still-bound instance earns its way back through
  // consecutive healthy pings (the probe path the filter deliberately
  // leaves open by keeping quarantined offers in list_offers).
  const auto& quarantine = runtime_->quarantine();
  ASSERT_TRUE(quarantine);
  const std::string service = service_name().to_string();
  const double now = runtime_->events().now();
  for (int i = 0; i < quarantine->options().strikes_to_quarantine; ++i)
    quarantine->report_failure(service, host_name(0), now);
  ASSERT_TRUE(quarantine->quarantined(service, host_name(0), now));

  FaultDetector detector(naming_stub(), {.quarantine = quarantine});
  detector.monitor(service_name());
  // The host is healthy; probe_successes_required sweeps release it.  The
  // release takes effect at the final probing sweep's timestamp.
  double last_sweep = now;
  for (int i = 0; i < quarantine->options().probe_successes_required; ++i) {
    last_sweep = now + 0.1 * (i + 1);
    detector.sweep(last_sweep);
  }
  EXPECT_FALSE(quarantine->quarantined(service, host_name(0), last_sweep));
  EXPECT_EQ(quarantine->probe_releases(), 1u);
  EXPECT_EQ(detector.faults_detected(), 0u);
}

}  // namespace
}  // namespace ft
