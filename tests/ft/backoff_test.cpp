// Tests of the hardened recovery path: exponential backoff with
// deterministic jitter, per-call deadline budgets, and the offer
// quarantine's integration with naming resolution and recovery.
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "ft/proxy.hpp"
#include "ft_test_common.hpp"

namespace ft {
namespace {

using corbaft_test::FtDeploymentTest;

class BackoffTest : public FtDeploymentTest {
 protected:
  /// Fake time source: the clock only advances when the engine sleeps, so
  /// tests see the exact backoff schedule.
  struct FakeTime {
    double now = 0.0;
    std::vector<double> waits;
  };

  ft::ProxyConfig faked_config(ft::RecoveryPolicy policy, FakeTime& time) {
    ft::ProxyConfig config = proxy_config(policy);
    config.clock = [&time] { return time.now; };
    config.sleep = [&time](double delay) {
      time.waits.push_back(delay);
      time.now += delay;
    };
    config.quarantine = nullptr;  // backoff behaviour in isolation
    return config;
  }

  void crash_all_workers() {
    for (const std::string& host : runtime_->worker_hosts())
      cluster_.crash_host(host);
  }
};

TEST_F(BackoffTest, WaitsGrowExponentiallyWithDeterministicJitter) {
  ft::RecoveryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_initial_s = 0.1;
  policy.backoff_factor = 2.0;
  policy.backoff_max_s = 10.0;
  policy.backoff_jitter = 0.25;
  policy.backoff_seed = 99;
  FakeTime time;
  ProxyEngine engine(faked_config(policy, time));
  crash_all_workers();
  EXPECT_THROW(engine.call("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);

  // One wait per retried attempt, each the exponential base scaled by the
  // jitter stream of the policy's seed — reproducible run to run.
  ASSERT_EQ(time.waits.size(), 3u);
  std::mt19937_64 rng(policy.backoff_seed);
  std::uniform_real_distribution<double> jitter(0.75, 1.25);
  double base = policy.backoff_initial_s;
  for (const double wait : time.waits) {
    EXPECT_NEAR(wait, base * jitter(rng), 1e-12);
    base *= policy.backoff_factor;
  }
  EXPECT_EQ(engine.retries(), 3u);
  EXPECT_NEAR(engine.backoff_waited_s(), time.now, 1e-12);
  EXPECT_EQ(engine.deadline_exhaustions(), 0u);
}

TEST_F(BackoffTest, WaitsAreCappedAtBackoffMax) {
  ft::RecoveryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_s = 1.0;
  policy.backoff_factor = 10.0;
  policy.backoff_max_s = 2.0;
  policy.backoff_jitter = 0.0;
  FakeTime time;
  ProxyEngine engine(faked_config(policy, time));
  crash_all_workers();
  EXPECT_THROW(engine.call("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
  ASSERT_EQ(time.waits.size(), 2u);
  EXPECT_DOUBLE_EQ(time.waits[0], 1.0);
  EXPECT_DOUBLE_EQ(time.waits[1], 2.0);  // 10.0 uncapped
}

TEST_F(BackoffTest, ZeroInitialDisablesBackoff) {
  ft::RecoveryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_s = 0.0;
  FakeTime time;
  ProxyEngine engine(faked_config(policy, time));
  crash_all_workers();
  EXPECT_THROW(engine.call("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
  EXPECT_TRUE(time.waits.empty());
  EXPECT_EQ(engine.retries(), 2u);  // retries still happen, just immediately
  EXPECT_DOUBLE_EQ(engine.backoff_waited_s(), 0.0);
}

TEST_F(BackoffTest, DeadlineRefusesRetryThatCannotFit) {
  ft::RecoveryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_initial_s = 1.0;
  policy.backoff_jitter = 0.0;
  policy.call_deadline_s = 0.5;
  FakeTime time;
  ProxyEngine engine(faked_config(policy, time));
  crash_all_workers();
  // The very first backoff wait (1s) cannot fit the 0.5s budget: the
  // original failure surfaces instead of a doomed retry sequence.
  EXPECT_THROW(engine.call("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
  EXPECT_TRUE(time.waits.empty());
  EXPECT_EQ(engine.retries(), 0u);
  EXPECT_EQ(engine.recoveries(), 0u);
  EXPECT_EQ(engine.deadline_exhaustions(), 1u);
}

TEST_F(BackoffTest, DeadlineAllowsRetriesThatFit) {
  ft::RecoveryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_initial_s = 0.2;
  policy.backoff_factor = 2.0;
  policy.backoff_jitter = 0.0;
  policy.call_deadline_s = 0.5;
  FakeTime time;
  ProxyEngine engine(faked_config(policy, time));
  crash_all_workers();
  // Attempt 1 retries (0.2s fits), attempt 2's 0.4s wait would overrun the
  // budget (0.2 + 0.4 > 0.5) and is refused.
  EXPECT_THROW(engine.call("add", {corba::Value(std::int64_t{1})}),
               corba::COMM_FAILURE);
  ASSERT_EQ(time.waits.size(), 1u);
  EXPECT_DOUBLE_EQ(time.waits[0], 0.2);
  EXPECT_EQ(engine.retries(), 1u);
  EXPECT_EQ(engine.deadline_exhaustions(), 1u);
}

TEST_F(BackoffTest, VirtualTimeBackoffAdvancesSimClock) {
  ft::RecoveryPolicy policy;
  policy.backoff_initial_s = 0.5;
  policy.backoff_jitter = 0.0;
  // The runtime-made config sleeps in *virtual* time: a backoff wait moves
  // the simulation clock, not the wall clock.
  ProxyEngine engine(proxy_config(policy));
  cluster_.crash_host(engine.current().ior().host);
  const double t0 = runtime_->events().now();
  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{3})}).as_i64(), 3);
  EXPECT_EQ(engine.recoveries(), 1u);
  EXPECT_EQ(engine.retries(), 1u);
  EXPECT_NEAR(engine.backoff_waited_s(), 0.5, 1e-9);
  EXPECT_GE(runtime_->events().now() - t0, 0.5);
}

TEST_F(BackoffTest, PolicyValidation) {
  auto engine_with = [&](ft::RecoveryPolicy policy) {
    ProxyEngine engine(proxy_config(policy));
  };
  ft::RecoveryPolicy policy;
  policy.backoff_factor = 0.5;
  EXPECT_THROW(engine_with(policy), corba::BAD_PARAM);
  policy = {};
  policy.backoff_jitter = 1.0;
  EXPECT_THROW(engine_with(policy), corba::BAD_PARAM);
  policy = {};
  policy.backoff_initial_s = -0.1;
  EXPECT_THROW(engine_with(policy), corba::BAD_PARAM);
  policy = {};
  policy.call_deadline_s = -1.0;
  EXPECT_THROW(engine_with(policy), corba::BAD_PARAM);
}

// --- quarantine wiring ------------------------------------------------------

class QuarantineWiringTest : public FtDeploymentTest {
 protected:
  void quarantine_host(const std::string& host) {
    const double now = runtime_->events().now();
    const std::string service = service_name().to_string();
    const int strikes = runtime_->quarantine()->options().strikes_to_quarantine;
    for (int i = 0; i < strikes; ++i)
      runtime_->quarantine()->report_failure(service, host, now);
    ASSERT_TRUE(runtime_->quarantine()->quarantined(service, host, now));
  }
};

TEST_F(QuarantineWiringTest, QuarantinedOfferSkippedByResolvesButStillListed) {
  quarantine_host(host_name(2));
  for (int i = 0; i < 8; ++i) {
    const corba::ObjectRef ref = runtime_->naming().resolve_with(
        service_name(), naming::ResolveStrategy::winner);
    EXPECT_NE(ref.ior().host, host_name(2));
  }
  // The offer was filtered, not unbound: probes can still reach it.
  EXPECT_EQ(runtime_->naming().list_offers(service_name()).size(), 4u);
}

TEST_F(QuarantineWiringTest, AllOffersQuarantinedFallsBackToFactory) {
  ProxyEngine engine(proxy_config());
  for (int i = 0; i < 4; ++i) quarantine_host(host_name(i));
  // Every offer filtered: resolution reports the pool as empty...
  EXPECT_THROW(runtime_->naming().resolve_with(
                   service_name(), naming::ResolveStrategy::winner),
               naming::NotFound);
  // ...so recovery falls through to a factory-created instance.
  engine.recover_now();
  EXPECT_EQ(engine.recoveries(), 1u);
  EXPECT_EQ(engine.call("total", {}).as_i64(), 0);
}

TEST_F(QuarantineWiringTest, EngineReportsFailuresToSharedQuarantine) {
  ft::RecoveryPolicy policy;
  policy.backoff_initial_s = 0.0;
  ProxyEngine engine(proxy_config(policy));
  const std::string victim = engine.current().ior().host;
  cluster_.crash_host(victim);
  EXPECT_TRUE(runtime_->quarantine()->empty());
  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{1})}).as_i64(), 1);
  // The failed attempt left a strike against the dead instance.
  EXPECT_FALSE(runtime_->quarantine()->empty());
}

}  // namespace
}  // namespace ft
