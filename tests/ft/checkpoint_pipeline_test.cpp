// Tests for the checkpoint shipping pipeline: mode semantics, delta
// fallback, async queueing/coalescing, the flush barrier, failure
// accounting, and the worker-thread backend.
#include "ft/checkpoint_pipeline.hpp"

#include <gtest/gtest.h>

#include "ft/delta.hpp"

namespace ft {
namespace {

corba::Blob sized_blob(std::size_t size, std::uint8_t fill) {
  return corba::Blob(size, static_cast<std::byte>(fill));
}

/// Deferred-executor harness: captures scheduled drains so tests control
/// exactly when the async path runs (like the simulator's event queue).
struct ManualExecutor {
  std::vector<std::function<void()>> pending;
  std::function<void(std::function<void()>)> hook() {
    return [this](std::function<void()> fn) { pending.push_back(std::move(fn)); };
  }
  void run_all() {
    // Drains may schedule follow-ups; run until quiescent.
    while (!pending.empty()) {
      auto batch = std::move(pending);
      pending.clear();
      for (auto& fn : batch) fn();
    }
  }
};

/// Store decorator that fails a configurable number of store attempts.
class FlakyStore : public CheckpointStoreClient {
 public:
  explicit FlakyStore(int failures) : failures_left_(failures) {}

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override {
    maybe_fail();
    inner_.store(key, version, state);
  }
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override {
    maybe_fail();
    inner_.store_delta(key, base_version, version, delta);
  }
  std::optional<Checkpoint> load(const std::string& key) override {
    return inner_.load(key);
  }
  void remove(const std::string& key) override { inner_.remove(key); }
  std::vector<std::string> keys() override { return inner_.keys(); }

  MemoryCheckpointStore& inner() noexcept { return inner_; }

 private:
  void maybe_fail() {
    if (failures_left_ > 0) {
      --failures_left_;
      throw corba::TRANSIENT("injected store failure");
    }
  }
  MemoryCheckpointStore inner_;
  int failures_left_;
};

CheckpointPipeline::Config base_config(
    std::shared_ptr<CheckpointStoreClient> store, CheckpointMode mode) {
  CheckpointPipeline::Config config;
  config.store = std::move(store);
  config.key = "svc";
  config.mode = mode;
  return config;
}

TEST(CheckpointPipeline, FullSyncStoresEveryVersion) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  CheckpointPipeline pipeline(base_config(store, CheckpointMode::full_sync));
  pipeline.submit(1, sized_blob(100, 1));
  pipeline.submit(2, sized_blob(100, 2));
  EXPECT_EQ(pipeline.stored(), 2u);
  EXPECT_EQ(pipeline.full_stores(), 2u);
  EXPECT_EQ(pipeline.delta_stores(), 0u);
  const auto loaded = store->load("svc");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 2u);
  EXPECT_EQ(loaded->state, sized_blob(100, 2));
}

TEST(CheckpointPipeline, DeltaSyncShipsOnlyChangedChunks) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  CheckpointPipeline pipeline(base_config(store, CheckpointMode::delta_sync));

  corba::Blob state = sized_blob(8 * kDefaultChunkSize, 0x5a);
  pipeline.submit(1, corba::Blob(state));  // first ship: full store
  EXPECT_EQ(pipeline.full_stores(), 1u);

  state[3 * kDefaultChunkSize] = std::byte{0x00};
  pipeline.submit(2, corba::Blob(state));
  EXPECT_EQ(pipeline.delta_stores(), 1u);
  // Shipped bytes: the full base once plus roughly one chunk, far below two
  // full states.
  EXPECT_LT(pipeline.bytes_shipped(), state.size() + 2 * kDefaultChunkSize);

  const auto loaded = store->load("svc");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 2u);
  EXPECT_EQ(loaded->state, state);
}

TEST(CheckpointPipeline, UnprofitableDeltaFallsBackToFullStore) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  CheckpointPipeline pipeline(base_config(store, CheckpointMode::delta_sync));
  pipeline.submit(1, sized_blob(4 * kDefaultChunkSize, 0x11));
  // Every chunk changes: the delta would be bigger than the state itself.
  pipeline.submit(2, sized_blob(4 * kDefaultChunkSize, 0x22));
  EXPECT_EQ(pipeline.full_stores(), 2u);
  EXPECT_EQ(pipeline.delta_stores(), 0u);
  EXPECT_EQ(store->load("svc")->state, sized_blob(4 * kDefaultChunkSize, 0x22));
}

TEST(CheckpointPipeline, DeltaRecoversWhenStoreForgetsTheBase) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  CheckpointPipeline pipeline(base_config(store, CheckpointMode::delta_sync));
  corba::Blob state = sized_blob(4 * kDefaultChunkSize, 0x5a);
  pipeline.submit(1, corba::Blob(state));

  // The store loses the checkpoint (e.g. wiped between runs): the delta is
  // rejected with BAD_PARAM and the pipeline falls back to a full store.
  store->remove("svc");
  state[0] = std::byte{0x00};
  pipeline.submit(2, corba::Blob(state));
  EXPECT_EQ(pipeline.full_stores(), 2u);
  const auto loaded = store->load("svc");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 2u);
  EXPECT_EQ(loaded->state, state);
}

TEST(CheckpointPipeline, SyncModeThrowsOnStoreFailure) {
  auto store = std::make_shared<FlakyStore>(1);
  CheckpointPipeline pipeline(base_config(store, CheckpointMode::full_sync));
  EXPECT_THROW(pipeline.submit(1, sized_blob(10, 1)), corba::TRANSIENT);
  pipeline.submit(2, sized_blob(10, 2));  // store healthy again
  EXPECT_EQ(pipeline.stored(), 1u);
}

TEST(CheckpointPipeline, AsyncDefersShippingUntilExecutorRuns) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  ManualExecutor executor;
  auto config = base_config(store, CheckpointMode::delta_async);
  config.defer = executor.hook();
  CheckpointPipeline pipeline(std::move(config));

  pipeline.submit(1, sized_blob(100, 1));
  EXPECT_EQ(pipeline.stored(), 0u);  // nothing shipped yet
  EXPECT_EQ(store->load("svc"), std::nullopt);

  executor.run_all();
  EXPECT_EQ(pipeline.stored(), 1u);
  ASSERT_TRUE(store->load("svc"));
  EXPECT_EQ(store->load("svc")->version, 1u);
}

TEST(CheckpointPipeline, AsyncCoalescesWhenQueueIsFull) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  ManualExecutor executor;
  auto config = base_config(store, CheckpointMode::delta_async);
  config.defer = executor.hook();
  config.depth = 2;
  CheckpointPipeline pipeline(std::move(config));

  for (std::uint64_t v = 1; v <= 5; ++v)
    pipeline.submit(v, sized_blob(64, static_cast<std::uint8_t>(v)));
  EXPECT_EQ(pipeline.coalesced(), 3u);  // queue holds only the newest two

  executor.run_all();
  EXPECT_EQ(pipeline.stored(), 2u);
  const auto loaded = store->load("svc");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 5u);
  EXPECT_EQ(loaded->state, sized_blob(64, 5));
}

TEST(CheckpointPipeline, FlushShipsEverythingPending) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  ManualExecutor executor;
  auto config = base_config(store, CheckpointMode::delta_async);
  config.defer = executor.hook();
  CheckpointPipeline pipeline(std::move(config));

  pipeline.submit(1, sized_blob(100, 1));
  pipeline.submit(2, sized_blob(100, 2));
  pipeline.flush();  // must not need the executor to run
  EXPECT_EQ(pipeline.stored(), 2u);
  EXPECT_EQ(store->load("svc")->version, 2u);
  executor.run_all();  // leftover deferred drains are harmless no-ops
  EXPECT_EQ(pipeline.stored(), 2u);
}

TEST(CheckpointPipeline, AsyncRetriesThenCountsFailure) {
  // Two injected failures, three attempts: the capture ships on the third.
  auto store = std::make_shared<FlakyStore>(2);
  ManualExecutor executor;
  auto config = base_config(store, CheckpointMode::delta_async);
  config.defer = executor.hook();
  config.attempts = 3;
  CheckpointPipeline pipeline(std::move(config));
  pipeline.submit(1, sized_blob(10, 1));
  executor.run_all();
  EXPECT_EQ(pipeline.stored(), 1u);
  EXPECT_EQ(pipeline.failures(), 0u);
}

TEST(CheckpointPipeline, AsyncDropsCaptureAfterExhaustedAttempts) {
  auto store = std::make_shared<FlakyStore>(100);
  ManualExecutor executor;
  auto config = base_config(store, CheckpointMode::delta_async);
  config.defer = executor.hook();
  config.attempts = 2;
  CheckpointPipeline pipeline(std::move(config));
  pipeline.submit(1, sized_blob(10, 1));  // must not throw
  executor.run_all();
  EXPECT_EQ(pipeline.stored(), 0u);
  EXPECT_EQ(pipeline.failures(), 1u);
}

TEST(CheckpointPipeline, AsyncTreatsStaleVersionAsSuperseded) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  ManualExecutor executor;
  auto config = base_config(store, CheckpointMode::delta_async);
  config.defer = executor.hook();
  CheckpointPipeline pipeline(std::move(config));

  pipeline.submit(1, sized_blob(10, 1));
  // A newer checkpoint lands first (e.g. a sibling proxy after recovery).
  store->store("svc", 5, sized_blob(10, 5));
  executor.run_all();
  EXPECT_EQ(pipeline.failures(), 0u);  // stale != failure
  EXPECT_EQ(store->load("svc")->version, 5u);
}

TEST(CheckpointPipeline, WorkerThreadBackendShipsAndFlushes) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  // No defer hook: the pipeline spawns a real worker thread.
  CheckpointPipeline pipeline(
      base_config(store, CheckpointMode::delta_async));
  corba::Blob state = sized_blob(4 * kDefaultChunkSize, 0x5a);
  for (std::uint64_t v = 1; v <= 10; ++v) {
    state[static_cast<std::size_t>(v)] = static_cast<std::byte>(v);
    pipeline.submit(v, corba::Blob(state));
  }
  pipeline.flush();
  EXPECT_GE(pipeline.stored() + pipeline.coalesced(), 10u);
  const auto loaded = store->load("svc");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 10u);
  EXPECT_EQ(loaded->state, state);
}

TEST(CheckpointPipeline, DestructorDrainsWorkerThreadQueue) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  {
    CheckpointPipeline pipeline(
        base_config(store, CheckpointMode::delta_async));
    pipeline.submit(1, sized_blob(50, 1));
    pipeline.submit(2, sized_blob(50, 2));
  }
  const auto loaded = store->load("svc");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 2u);
}

TEST(CheckpointPipeline, RejectsInvalidConfig) {
  auto store = std::make_shared<MemoryCheckpointStore>();
  EXPECT_THROW(CheckpointPipeline(base_config(nullptr,
                                              CheckpointMode::full_sync)),
               corba::BAD_PARAM);
  auto no_key = base_config(store, CheckpointMode::full_sync);
  no_key.key.clear();
  EXPECT_THROW(CheckpointPipeline(std::move(no_key)), corba::BAD_PARAM);
  auto zero_chunk = base_config(store, CheckpointMode::delta_sync);
  zero_chunk.chunk_size = 0;
  EXPECT_THROW(CheckpointPipeline(std::move(zero_chunk)), corba::BAD_PARAM);
}

TEST(ToString, CoversAllModes) {
  EXPECT_EQ(to_string(CheckpointMode::full_sync), "full-sync");
  EXPECT_EQ(to_string(CheckpointMode::delta_sync), "delta-sync");
  EXPECT_EQ(to_string(CheckpointMode::delta_async), "delta-async");
}

}  // namespace
}  // namespace ft
