// Unit and crash-restart property tests for the shared log-structured
// checkpoint backend (ft/segment_log.hpp) and its file-store incarnation:
// delta chains, compaction, the fetch_log catch-up stream, fsync modes, and
// recovery from every crash point the atomic-write protocol leaves behind.
#include "ft/segment_log.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>

#include "ft/checkpoint_store.hpp"
#include "ft/delta.hpp"
#include "orb/orb.hpp"

namespace ft {
namespace {

constexpr std::uint32_t kChunk = 64;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

corba::Blob blob_of(std::string_view text) {
  corba::Blob blob(text.size());
  std::memcpy(blob.data(), text.data(), text.size());
  return blob;
}

/// 1 KiB state of a single fill byte.  Deltas that touch one chunk encode to
/// far less than the base size, so chains accumulate instead of tripping the
/// payload-outgrows-base compaction rule on every append.
corba::Blob state_of(char fill) {
  return corba::Blob(1024, std::byte{static_cast<unsigned char>(fill)});
}

corba::Blob mutate(corba::Blob state, std::size_t index, char value) {
  state[index] = std::byte{static_cast<unsigned char>(value)};
  return state;
}

/// Encoded StateDelta turning `base` into `next` (the wire payload
/// store_delta ships).
corba::Blob delta_between(const corba::Blob& base, const corba::Blob& next) {
  return StateDelta::diff(chunk_fingerprints(base, kChunk), base.size(), next,
                          kChunk)
      .encode();
}

// --- SegmentLog --------------------------------------------------------------

TEST(SegmentLog, FullPutReplacesAndRejectsStaleVersions) {
  SegmentLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.version(), 0u);
  log.put_full(3, blob_of("aaaa"));
  EXPECT_EQ(log.version(), 3u);
  EXPECT_EQ(log.materialize(), blob_of("aaaa"));
  EXPECT_THROW(log.put_full(3, blob_of("b")), corba::BAD_PARAM);
  EXPECT_THROW(log.put_full(2, blob_of("b")), corba::BAD_PARAM);
  log.put_full(4, blob_of("bbbb"));
  EXPECT_EQ(log.materialize(), blob_of("bbbb"));
}

TEST(SegmentLog, DeltaChainMaterializesAndEnforcesTheBase) {
  SegmentLog log(DeltaPolicy{.max_chain = 8});
  const corba::Blob v1 = state_of('a');
  const corba::Blob v2 = mutate(v1, 0, 'b');
  const corba::Blob v3 = mutate(v2, 512, 'c');
  log.put_full(1, v1);
  EXPECT_FALSE(log.append_delta(1, 2, delta_between(v1, v2)));
  EXPECT_EQ(log.materialize(), v2);
  // Wrong base (1 is no longer the head) and stale versions are rejected.
  EXPECT_THROW(log.append_delta(1, 3, delta_between(v1, v3)),
               corba::BAD_PARAM);
  EXPECT_THROW(log.append_delta(2, 2, delta_between(v2, v3)),
               corba::BAD_PARAM);
  EXPECT_FALSE(log.append_delta(2, 3, delta_between(v2, v3)));
  EXPECT_EQ(log.version(), 3u);
  EXPECT_EQ(log.materialize(), v3);
  EXPECT_EQ(log.segments().size(), 2u);
}

TEST(SegmentLog, CompactsWhenTheChainFills) {
  SegmentLog log(DeltaPolicy{.max_chain = 2});
  corba::Blob state = state_of('a');
  log.put_full(1, state);
  corba::Blob next = mutate(state, 0, 'b');
  EXPECT_FALSE(log.append_delta(1, 2, delta_between(state, next)));
  state = next;
  next = mutate(state, 1, 'c');
  // Second delta hits max_chain: the log compacts to a fresh base.
  EXPECT_TRUE(log.append_delta(2, 3, delta_between(state, next)));
  EXPECT_EQ(log.base_version(), 3u);
  EXPECT_TRUE(log.segments().empty());
  EXPECT_EQ(log.materialize(), next);
}

TEST(SegmentLog, CompactsWhenChainPayloadOutgrowsTheBase) {
  SegmentLog log(DeltaPolicy{.max_chain = 100});
  const corba::Blob small = blob_of("aa");
  log.put_full(1, small);
  // Any delta payload exceeds a 2-byte base.
  EXPECT_TRUE(log.append_delta(1, 2, delta_between(small, blob_of("zz"))));
  EXPECT_EQ(log.base_version(), 2u);
  EXPECT_EQ(log.materialize(), blob_of("zz"));
}

TEST(SegmentLog, LogSinceServesSuffixFullOrEmpty) {
  SegmentLog log(DeltaPolicy{.max_chain = 8});
  const corba::Blob v1 = state_of('a');
  const corba::Blob v2 = mutate(v1, 0, 'b');
  const corba::Blob v3 = mutate(v2, 512, 'c');
  log.put_full(1, v1);
  log.append_delta(1, 2, delta_between(v1, v2));
  log.append_delta(2, 3, delta_between(v2, v3));

  // Caught up: nothing to ship.
  EXPECT_TRUE(log.log_since(3).empty());

  // Anchored at the base: the whole chain, no base payload.
  CheckpointLog from_base = log.log_since(1);
  EXPECT_FALSE(from_base.has_base);
  ASSERT_EQ(from_base.segments.size(), 2u);
  EXPECT_EQ(from_base.segments[0].version, 2u);

  // Anchored mid-chain: just the missing tail.
  CheckpointLog from_mid = log.log_since(2);
  EXPECT_FALSE(from_mid.has_base);
  ASSERT_EQ(from_mid.segments.size(), 1u);
  EXPECT_EQ(from_mid.segments[0].version, 3u);

  // Unknown anchor (compacted away): the full base + chain.
  CheckpointLog full = log.log_since(0);
  ASSERT_TRUE(full.has_base);
  EXPECT_EQ(full.base_version, 1u);
  EXPECT_EQ(full.segments.size(), 2u);
  EXPECT_EQ(materialize(full), v3);
  EXPECT_EQ(full.head_version(), 3u);
}

TEST(SegmentLog, MaterializeRejectsBaselessSuffix) {
  CheckpointLog suffix;
  suffix.segments.push_back({2, 1, {}});
  EXPECT_THROW(materialize(suffix), corba::BAD_PARAM);
}

// --- CheckpointLog wire format ----------------------------------------------

TEST(CheckpointLog, ValueRoundTrips) {
  CheckpointLog log;
  log.has_base = true;
  log.base_version = 7;
  log.base = blob_of("base");
  log.segments.push_back({8, 7, blob_of("d1")});
  log.segments.push_back({9, 8, {}});

  const CheckpointLog decoded = CheckpointLog::from_value(log.to_value());
  EXPECT_TRUE(decoded.has_base);
  EXPECT_EQ(decoded.base_version, 7u);
  EXPECT_EQ(decoded.base, blob_of("base"));
  ASSERT_EQ(decoded.segments.size(), 2u);
  EXPECT_EQ(decoded.segments[0].version, 8u);
  EXPECT_EQ(decoded.segments[0].base_version, 7u);
  EXPECT_EQ(decoded.segments[0].delta, blob_of("d1"));
  EXPECT_EQ(decoded.segments[1].version, 9u);
  EXPECT_TRUE(decoded.segments[1].delta.empty());
}

TEST(CheckpointLog, MalformedPayloadThrowsMarshal) {
  EXPECT_THROW(CheckpointLog::from_value(corba::Value(corba::ValueSeq{})),
               corba::MARSHAL);
  EXPECT_THROW(CheckpointLog::from_value(corba::Value(corba::ValueSeq{
                   corba::Value(std::uint64_t{1}),
                   corba::Value(std::uint64_t{1}), corba::Value(corba::Blob{}),
                   corba::Value(corba::ValueSeq{
                       corba::Value(corba::ValueSeq{})})})),
               corba::MARSHAL);
}

// --- validate_chain ----------------------------------------------------------

TEST(ValidateChain, KeepsTheLinkedRunAndOrphansTheRest) {
  const std::vector<LogSegment> segments = {
      {2, 1, {}},  // fine
      {1, 0, {}},  // stale (<= base)
      {3, 2, {}},  // fine
      {5, 4, {}},  // gap: base 4 was never written
      {6, 5, {}},  // after the gap: orphaned by cascade
  };
  const ChainSplit split = validate_chain(1, segments);
  EXPECT_EQ(split.keep, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(split.orphans, (std::vector<std::size_t>{1, 3, 4}));
}

// --- fetch_log through the backends and the wire -----------------------------

TEST(MemoryCheckpointStore, FetchLogServesSuffixAndHeadVersion) {
  MemoryCheckpointStore store;
  const corba::Blob v1 = state_of('a');
  const corba::Blob v2 = mutate(v1, 0, 'b');
  store.store("k", 1, v1);
  store.store_delta("k", 1, 2, delta_between(v1, v2));

  EXPECT_EQ(store.head_version("k"), 2u);
  EXPECT_EQ(store.head_version("missing"), 0u);
  EXPECT_TRUE(store.fetch_log("missing", 0).empty());
  EXPECT_TRUE(store.fetch_log("k", 2).empty());

  const CheckpointLog suffix = store.fetch_log("k", 1);
  EXPECT_FALSE(suffix.has_base);
  ASSERT_EQ(suffix.segments.size(), 1u);
  EXPECT_EQ(suffix.segments[0].version, 2u);

  const CheckpointLog full = store.fetch_log("k", 0);
  ASSERT_TRUE(full.has_base);
  EXPECT_EQ(materialize(full), v2);
}

TEST(CheckpointStoreWire, HeadVersionAndFetchLogRoundTrip) {
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto orb = corba::ORB::init({.endpoint_name = "seg", .network = network});
  auto backend = std::make_shared<MemoryCheckpointStore>();
  CheckpointStoreStub stub(
      orb->activate(std::make_shared<CheckpointStoreServant>(backend)));

  const corba::Blob v1 = state_of('a');
  const corba::Blob v2 = mutate(v1, 0, 'b');
  stub.store("k", 1, v1);
  stub.store_delta("k", 1, 2, delta_between(v1, v2));

  EXPECT_EQ(stub.head_version("k"), 2u);
  EXPECT_EQ(stub.head_version("nope"), 0u);
  const CheckpointLog suffix = stub.fetch_log("k", 1);
  EXPECT_FALSE(suffix.has_base);
  ASSERT_EQ(suffix.segments.size(), 1u);
  const CheckpointLog full = stub.fetch_log("k", 0);
  ASSERT_TRUE(full.has_base);
  EXPECT_EQ(materialize(full), v2);
}

// --- file store: fsync modes -------------------------------------------------

TEST(FsyncMode, NamesAreStable) {
  EXPECT_EQ(to_string(FsyncMode::off), "off");
  EXPECT_EQ(to_string(FsyncMode::data), "data");
  EXPECT_EQ(to_string(FsyncMode::full), "full");
}

TEST(FileCheckpointStore, AllFsyncModesRoundTrip) {
  for (const FsyncMode mode :
       {FsyncMode::off, FsyncMode::data, FsyncMode::full}) {
    FileCheckpointStore store(
        fresh_dir(std::string("ckpt_fsync_") + std::string(to_string(mode))),
        DeltaPolicy{}, mode);
    EXPECT_EQ(store.fsync_mode(), mode);
    store.store("k", 1, blob_of("state"));
    const auto loaded = store.load("k");
    ASSERT_TRUE(loaded);
    EXPECT_EQ(loaded->state, blob_of("state"));
  }
}

// --- file store: crash-restart properties ------------------------------------

/// The acknowledged history 1..3 written through a store in `dir`.
struct AckedHistory {
  corba::Blob v1 = state_of('a');
  corba::Blob v2 = mutate(v1, 0, 'b');
  corba::Blob v3 = mutate(v2, 512, 'c');
};

/// On-disk segment names hex-encode the key: "k" -> "6b".
constexpr std::string_view kEncodedKey = "6b";

AckedHistory write_acked_history(const std::string& dir) {
  AckedHistory history;
  FileCheckpointStore store(dir, DeltaPolicy{.max_chain = 16});
  store.store("k", 1, history.v1);
  store.store_delta("k", 1, 2, delta_between(history.v1, history.v2));
  store.store_delta("k", 2, 3, delta_between(history.v2, history.v3));
  return history;
}

void write_raw(const std::filesystem::path& path,
               const corba::Blob& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
}

corba::Blob encode_segment(std::uint64_t version, std::uint64_t base_version,
                           const corba::Blob& delta) {
  corba::Blob payload(2 * sizeof(std::uint64_t) + delta.size());
  std::memcpy(payload.data(), &version, sizeof(version));
  std::memcpy(payload.data() + sizeof(version), &base_version,
              sizeof(base_version));
  if (!delta.empty())
    std::memcpy(payload.data() + 2 * sizeof(std::uint64_t), delta.data(),
                delta.size());
  return payload;
}

TEST(FileCheckpointStoreCrash, TmpLeftoverFromKilledWriteIsIgnored) {
  const std::string dir = fresh_dir("ckpt_crash_tmp");
  const AckedHistory history = write_acked_history(dir);
  // Crash between the segment tmp write and its rename: the next segment's
  // bytes exist only under the .tmp name and were never acknowledged.
  write_raw(std::filesystem::path(dir) /
                (std::string(kEncodedKey) + ".4.dckpt.tmp"),
            encode_segment(4, 3, blob_of("garbage")));
  FileCheckpointStore reopened(dir);
  const auto loaded = reopened.load("k");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 3u);  // the last *acknowledged* version
  EXPECT_EQ(loaded->state, history.v3);
}

TEST(FileCheckpointStoreCrash, OrphanAndGapSegmentsAreDiscardedOnReload) {
  const std::string dir = fresh_dir("ckpt_crash_orphans");
  const AckedHistory history = write_acked_history(dir);
  // A crash mid-replication/compaction can leave segments that no longer
  // link to the chain: stale (version <= base after a compaction elsewhere)
  // and gapped (their base version was never acknowledged here).
  const std::filesystem::path stale =
      std::filesystem::path(dir) / (std::string(kEncodedKey) + ".1.dckpt");
  const std::filesystem::path gapped =
      std::filesystem::path(dir) / (std::string(kEncodedKey) + ".9.dckpt");
  write_raw(stale, encode_segment(1, 0, blob_of("stale")));
  write_raw(gapped, encode_segment(9, 8, blob_of("gap")));

  FileCheckpointStore reopened(dir);
  const auto loaded = reopened.load("k");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 3u);
  EXPECT_EQ(loaded->state, history.v3);
  // The orphans were physically discarded, not just skipped.
  EXPECT_FALSE(std::filesystem::exists(stale));
  EXPECT_FALSE(std::filesystem::exists(gapped));
}

TEST(FileCheckpointStoreCrash, TruncatedSegmentIsIgnored) {
  const std::string dir = fresh_dir("ckpt_crash_trunc");
  const AckedHistory history = write_acked_history(dir);
  write_raw(std::filesystem::path(dir) /
                (std::string(kEncodedKey) + ".4.dckpt"),
            blob_of("shrt"));
  FileCheckpointStore reopened(dir);
  const auto loaded = reopened.load("k");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->version, 3u);
  EXPECT_EQ(loaded->state, history.v3);
}

TEST(FileCheckpointStoreCrash, ReloadServesTheCatchUpStream) {
  const std::string dir = fresh_dir("ckpt_crash_fetch");
  const AckedHistory history = write_acked_history(dir);
  FileCheckpointStore reopened(dir);
  EXPECT_EQ(reopened.head_version("k"), 3u);
  const CheckpointLog suffix = reopened.fetch_log("k", 1);
  EXPECT_FALSE(suffix.has_base);
  ASSERT_EQ(suffix.segments.size(), 2u);
  EXPECT_EQ(suffix.segments[0].version, 2u);
  EXPECT_EQ(suffix.segments[1].version, 3u);
  const CheckpointLog full = reopened.fetch_log("k", 0);
  ASSERT_TRUE(full.has_base);
  EXPECT_EQ(materialize(full), history.v3);
}

}  // namespace
}  // namespace ft
