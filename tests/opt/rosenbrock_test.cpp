// Unit tests for the Rosenbrock function and its block decomposition.  The
// central property: the decomposition is *exact* — block objectives sum to
// the full function for any point.
#include "opt/rosenbrock.hpp"

#include <gtest/gtest.h>

#include <random>

namespace opt {
namespace {

TEST(Rosenbrock, KnownValues) {
  const std::vector<double> minimum(5, 1.0);
  EXPECT_DOUBLE_EQ(rosenbrock(minimum), 0.0);

  const std::vector<double> origin(2, 0.0);
  EXPECT_DOUBLE_EQ(rosenbrock(origin), 1.0);  // 100*0 + (1-0)^2

  const std::vector<double> x = {-1.0, 1.0};
  EXPECT_DOUBLE_EQ(rosenbrock(x), 4.0);  // 100*(1-1)^2 + (1-(-1))^2
}

TEST(Rosenbrock, RequiresAtLeastTwoDimensions) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(rosenbrock(one), std::invalid_argument);
}

TEST(Decomposition, PaperScenario30x3) {
  const Decomposition d = Decomposition::make(30, 3);
  ASSERT_EQ(d.block_count(), 3);
  // The paper: "3 worker problems (problem dimension 10, 9 and 9) and a
  // 2 dimensional manager problem".
  EXPECT_EQ(d.block(0).dimension, 10);
  EXPECT_EQ(d.block(1).dimension, 9);
  EXPECT_EQ(d.block(2).dimension, 9);
  EXPECT_EQ(d.coupling_dimension(), 2);
  EXPECT_EQ(d.coupling_indices(), (std::vector<int>{10, 20}));
  EXPECT_EQ(d.block(0).left_coupling, -1);
  EXPECT_EQ(d.block(0).right_coupling, 10);
  EXPECT_EQ(d.block(1).left_coupling, 10);
  EXPECT_EQ(d.block(1).right_coupling, 20);
  EXPECT_EQ(d.block(2).left_coupling, 20);
  EXPECT_EQ(d.block(2).right_coupling, -1);
}

TEST(Decomposition, PaperScenario100x7) {
  const Decomposition d = Decomposition::make(100, 7);
  ASSERT_EQ(d.block_count(), 7);
  EXPECT_EQ(d.coupling_dimension(), 6);
  int total = d.coupling_dimension();
  for (const Block& block : d.blocks()) {
    EXPECT_GE(block.dimension, 13);
    EXPECT_LE(block.dimension, 14);
    total += block.dimension;
  }
  EXPECT_EQ(total, 100);
}

TEST(Decomposition, RejectsTooSmallProblems) {
  EXPECT_THROW(Decomposition::make(5, 3), std::invalid_argument);
  EXPECT_THROW(Decomposition::make(10, 0), std::invalid_argument);
}

class DecompositionExactness
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DecompositionExactness, BlockObjectivesSumToFullFunction) {
  const auto [n, k] = GetParam();
  const Decomposition d = Decomposition::make(n, k);
  std::mt19937_64 rng(static_cast<std::uint64_t>(n * 1000 + k));
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (double& xi : x) xi = dist(rng);

    // Slice the full point into block solutions + coupling values.
    std::vector<double> coupling;
    for (int index : d.coupling_indices())
      coupling.push_back(x[static_cast<std::size_t>(index)]);
    double sum = 0.0;
    std::vector<std::vector<double>> blocks;
    for (const Block& block : d.blocks()) {
      std::vector<double> block_x(
          x.begin() + block.first_variable,
          x.begin() + block.first_variable + block.dimension);
      sum += d.block_objective(block, block_x, coupling);
      blocks.push_back(std::move(block_x));
    }
    EXPECT_NEAR(sum, rosenbrock(x), 1e-9 * (1.0 + rosenbrock(x)));

    // assemble() reconstructs the original point.
    EXPECT_EQ(d.assemble(blocks, coupling), x);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionExactness,
    ::testing::Values(std::pair{30, 3}, std::pair{100, 7}, std::pair{8, 2},
                      std::pair{50, 5}, std::pair{12, 4}, std::pair{30, 1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "k" +
             std::to_string(info.param.second);
    });

TEST(Decomposition, BlockObjectiveValidatesDimensions) {
  const Decomposition d = Decomposition::make(30, 3);
  const std::vector<double> wrong(5, 0.0);
  const std::vector<double> coupling(2, 0.0);
  EXPECT_THROW(d.block_objective(d.block(0), wrong, coupling),
               std::invalid_argument);
  const std::vector<double> block(10, 0.0);
  const std::vector<double> bad_coupling(3, 0.0);
  EXPECT_THROW(d.block_objective(d.block(0), block, bad_coupling),
               std::invalid_argument);
}

TEST(Decomposition, SingleBlockHasNoCoupling) {
  const Decomposition d = Decomposition::make(30, 1);
  EXPECT_EQ(d.coupling_dimension(), 0);
  EXPECT_EQ(d.block(0).dimension, 30);
  std::vector<double> x(30, 1.0);
  EXPECT_DOUBLE_EQ(d.block_objective(d.block(0), x, {}), 0.0);
}

}  // namespace
}  // namespace opt
