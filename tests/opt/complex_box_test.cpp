// Unit tests for the Complex Box optimizer: convergence on standard
// problems, constraint handling, determinism, resumable state, and
// serialization.
#include "opt/complex_box.hpp"

#include <gtest/gtest.h>

#include "opt/rosenbrock.hpp"

namespace opt {
namespace {

double sphere(std::span<const double> x) {
  double sum = 0.0;
  for (double xi : x) sum += xi * xi;
  return sum;
}

TEST(ComplexBox, MinimizesSphere) {
  const std::vector<double> lower(4, -10.0);
  const std::vector<double> upper(4, 10.0);
  BoxOptions options;
  options.max_iterations = 2000;
  const BoxResult result = complex_box(sphere, lower, upper, options);
  EXPECT_LT(result.best_value, 1e-4);
  for (double xi : result.best) EXPECT_NEAR(xi, 0.0, 0.05);
}

TEST(ComplexBox, Minimizes2DRosenbrockIntoTheValley) {
  const std::vector<double> lower(2, -2.048);
  const std::vector<double> upper(2, 2.048);
  BoxOptions options;
  options.max_iterations = 5000;
  options.seed = 3;
  const BoxResult result =
      complex_box([](std::span<const double> x) { return rosenbrock(x); },
                  lower, upper, options);
  EXPECT_LT(result.best_value, 1e-3);
  EXPECT_NEAR(result.best[0], 1.0, 0.1);
  EXPECT_NEAR(result.best[1], 1.0, 0.1);
}

TEST(ComplexBox, RespectsBoxConstraints) {
  // Unconstrained optimum (0) lies outside the box [1, 2]^3: the result
  // must sit on the boundary, inside bounds.
  const std::vector<double> lower(3, 1.0);
  const std::vector<double> upper(3, 2.0);
  BoxOptions options;
  options.max_iterations = 1500;
  const BoxResult result = complex_box(sphere, lower, upper, options);
  for (double xi : result.best) {
    EXPECT_GE(xi, 1.0 - 1e-12);
    EXPECT_LE(xi, 2.0 + 1e-12);
  }
  EXPECT_NEAR(result.best_value, 3.0, 0.05);  // at (1,1,1)
}

TEST(ComplexBox, DeterministicPerSeed) {
  const std::vector<double> lower(3, -5.0);
  const std::vector<double> upper(3, 5.0);
  BoxOptions options;
  options.max_iterations = 500;
  options.seed = 42;
  const BoxResult a = complex_box(sphere, lower, upper, options);
  const BoxResult b = complex_box(sphere, lower, upper, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.evaluations, b.evaluations);

  options.seed = 43;
  const BoxResult c = complex_box(sphere, lower, upper, options);
  EXPECT_NE(a.best, c.best);
}

TEST(ComplexBox, IterationCountIsTheStoppingCriterion) {
  const std::vector<double> lower(2, -5.0);
  const std::vector<double> upper(2, 5.0);
  BoxOptions options;
  options.max_iterations = 123;
  const BoxResult result = complex_box(sphere, lower, upper, options);
  EXPECT_EQ(result.iterations, 123);
  EXPECT_FALSE(result.converged);
  EXPECT_GE(result.evaluations, 123);
}

TEST(ComplexBox, ToleranceStopsEarly) {
  const std::vector<double> lower(2, -5.0);
  const std::vector<double> upper(2, 5.0);
  BoxOptions options;
  options.max_iterations = 100000;
  options.tolerance = 1e-6;
  const BoxResult result = complex_box(sphere, lower, upper, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 100000);
}

TEST(ComplexBox, MoreIterationsMeansMoreEvaluations) {
  // The Table 1 experiment varies worker iterations as the knob for call
  // length; evaluations (and hence simulated work) must scale with it.
  const std::vector<double> lower(5, -5.0);
  const std::vector<double> upper(5, 5.0);
  std::int64_t previous = 0;
  for (int iterations : {100, 1000, 10000}) {
    BoxOptions options;
    options.max_iterations = iterations;
    const BoxResult result = complex_box(sphere, lower, upper, options);
    EXPECT_GT(result.evaluations, previous);
    previous = result.evaluations;
  }
}

TEST(ComplexBox, ResumeContinuesExactlyWhereItStopped) {
  const std::vector<double> lower(3, -5.0);
  const std::vector<double> upper(3, 5.0);

  BoxOptions full;
  full.max_iterations = 400;
  full.seed = 7;
  BoxState full_state;
  const BoxResult one_shot = complex_box(sphere, lower, upper, full, &full_state);

  BoxOptions half = full;
  half.max_iterations = 200;
  BoxState state;
  complex_box(sphere, lower, upper, half, &state);
  const BoxResult resumed = complex_box(sphere, lower, upper, half, &state);

  // 200 + 200 resumed iterations reach the same complex as 400 straight
  // (the RNG stream is carried through the state).
  EXPECT_EQ(resumed.best, one_shot.best);
  EXPECT_EQ(state.total_iterations, 400);
  EXPECT_EQ(state.total_evaluations, full_state.total_evaluations);
}

TEST(ComplexBox, StateSerializationRoundTrips) {
  const std::vector<double> lower(3, -5.0);
  const std::vector<double> upper(3, 5.0);
  BoxOptions options;
  options.max_iterations = 50;
  BoxState state;
  complex_box(sphere, lower, upper, options, &state);

  const corba::Blob blob = state.serialize();
  const BoxState restored = BoxState::deserialize(blob);
  EXPECT_EQ(restored, state);

  // Resuming from the deserialized state gives identical results.
  BoxState a = state;
  BoxState b = restored;
  const BoxResult ra = complex_box(sphere, lower, upper, options, &a);
  const BoxResult rb = complex_box(sphere, lower, upper, options, &b);
  EXPECT_EQ(ra.best, rb.best);
}

TEST(ComplexBox, CorruptStateRejected) {
  corba::Blob garbage{std::byte{9}, std::byte{9}};
  EXPECT_THROW(BoxState::deserialize(garbage), corba::MARSHAL);
}

TEST(ComplexBox, InvalidArgumentsRejected) {
  const std::vector<double> lower(2, -1.0);
  const std::vector<double> upper(2, 1.0);
  const std::vector<double> bad_upper(2, -2.0);
  const std::vector<double> short_upper(1, 1.0);
  BoxOptions options;
  EXPECT_THROW(complex_box(sphere, {}, {}, options), std::invalid_argument);
  EXPECT_THROW(complex_box(sphere, lower, bad_upper, options),
               std::invalid_argument);
  EXPECT_THROW(complex_box(sphere, lower, short_upper, options),
               std::invalid_argument);
  options.alpha = 0.9;
  EXPECT_THROW(complex_box(sphere, lower, upper, options),
               std::invalid_argument);
  options = {};
  options.complex_size = 2;  // < n+1
  EXPECT_THROW(complex_box(sphere, lower, upper, options),
               std::invalid_argument);
}

TEST(ComplexBox, ZeroIterationBudgetJustInitializes) {
  const std::vector<double> lower(2, -1.0);
  const std::vector<double> upper(2, 1.0);
  BoxOptions options;
  options.max_iterations = 0;
  BoxState state;
  const BoxResult result = complex_box(sphere, lower, upper, options, &state);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.evaluations, 4);  // complex size 2n
  EXPECT_TRUE(state.initialized());
}

}  // namespace
}  // namespace opt
