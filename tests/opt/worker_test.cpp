// Unit tests for the OptWorker service: typed calls through the stub, state
// checkpoint/restore, warm starting, and simulated work charging.
#include "opt/worker.hpp"

#include <gtest/gtest.h>

#include "orb/orb.hpp"
#include "sim/work_meter.hpp"

namespace opt {
namespace {

WorkerProblem paper_problem() {
  WorkerProblem problem;
  problem.dimension = 30;
  problem.blocks = 3;
  problem.work_per_eval_per_dim = 2.0;
  return problem;
}

class WorkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    orb_ = corba::ORB::init({.endpoint_name = "node", .network = network_});
    servant_ = std::make_shared<OptWorkerServant>(paper_problem());
    stub_ = OptWorkerStub(orb_->activate(servant_, "worker"));
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> orb_;
  std::shared_ptr<OptWorkerServant> servant_;
  OptWorkerStub stub_;
};

TEST_F(WorkerTest, SolveReducesBlockObjective) {
  const std::vector<double> coupling = {1.0, 1.0};
  const SolveOutcome first = stub_.solve(0, coupling, 50);
  const SolveOutcome second = stub_.solve(0, coupling, 2000);
  EXPECT_GT(first.evaluations, 0);
  EXPECT_LE(second.best_value, first.best_value);
  EXPECT_EQ(stub_.calls(), 2);
}

TEST_F(WorkerTest, AtTrueCouplingBlocksDescendFarBelowRandom) {
  // With coupling values at the global optimum (all ones) each block's own
  // optimum is 0.  The Complex Box is a *local* direct-search method (the
  // paper uses it as-is, §4): depending on the seed it lands in the global
  // basin or in one of the Rosenbrock side basins (f ~ 4..80).  The robust
  // property: the result sits orders of magnitude below random points in
  // the box (O(10^4..10^5)), and warm-started refinement never regresses.
  const std::vector<double> coupling = {1.0, 1.0};
  for (int block = 0; block < 3; ++block) {
    const SolveOutcome coarse = stub_.solve(block, coupling, 2000);
    const SolveOutcome refined = stub_.solve(block, coupling, 20000);
    EXPECT_LT(coarse.best_value, 200.0) << "block " << block;
    EXPECT_LE(refined.best_value, coarse.best_value * (1.0 + 1e-12))
        << "block " << block;
  }
}

TEST_F(WorkerTest, InvalidArgumentsRejected) {
  const std::vector<double> coupling = {0.0, 0.0};
  EXPECT_THROW(stub_.solve(-1, coupling, 10), corba::BAD_PARAM);
  EXPECT_THROW(stub_.solve(3, coupling, 10), corba::BAD_PARAM);
  EXPECT_THROW(stub_.solve(0, coupling, 0), corba::BAD_PARAM);
  const std::vector<double> bad_coupling = {0.0};
  EXPECT_THROW(stub_.solve(0, bad_coupling, 10), corba::BAD_PARAM);
}

TEST_F(WorkerTest, WarmStartImprovesAcrossCalls) {
  const std::vector<double> coupling = {0.5, 0.5};
  double previous = 1e300;
  for (int call = 0; call < 4; ++call) {
    const SolveOutcome outcome = stub_.solve(1, coupling, 300);
    EXPECT_LE(outcome.best_value, previous * (1.0 + 1e-12));
    previous = outcome.best_value;
  }
}

TEST_F(WorkerTest, StateTransplantsToFreshWorker) {
  const std::vector<double> coupling = {0.5, 0.5};
  stub_.solve(0, coupling, 500);
  stub_.solve(1, coupling, 500);
  const corba::Blob state = ft::get_state(stub_.ref());

  auto replacement = std::make_shared<OptWorkerServant>(paper_problem());
  OptWorkerStub fresh(orb_->activate(replacement, "worker2"));
  ft::set_state(fresh.ref(), state);
  EXPECT_EQ(fresh.calls(), 2);
  EXPECT_EQ(fresh.total_evaluations(), stub_.total_evaluations());

  // The restored worker continues from the checkpointed complex: its next
  // solve is a warm start, not a cold one.
  const SolveOutcome restored = fresh.solve(0, coupling, 300);
  auto cold = std::make_shared<OptWorkerServant>(paper_problem());
  const SolveOutcome from_scratch = cold->solve(0, coupling, 300);
  EXPECT_LE(restored.best_value, from_scratch.best_value * (1.0 + 1e-9));
}

TEST_F(WorkerTest, StateRoundTripIsExact) {
  const std::vector<double> coupling = {-0.3, 0.8};
  stub_.solve(2, coupling, 200);
  const corba::Blob state = ft::get_state(stub_.ref());
  auto replacement = std::make_shared<OptWorkerServant>(paper_problem());
  const corba::ObjectRef fresh_ref = orb_->activate(replacement);
  ft::set_state(fresh_ref, state);
  // Identical state => identical continuation.
  const SolveOutcome a = servant_->solve(2, coupling, 100);
  const SolveOutcome b = replacement->solve(2, coupling, 100);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(WorkerTest, ChargesWorkPerEvaluation) {
  const std::vector<double> coupling = {0.0, 0.0};
  sim::WorkScope scope;
  const SolveOutcome outcome = servant_->solve(0, coupling, 100);
  // Block 0 has dimension 10; each evaluation charges 2.0 * 10 units.
  EXPECT_DOUBLE_EQ(scope.consumed(),
                   20.0 * static_cast<double>(outcome.evaluations));
}

TEST_F(WorkerTest, StateMarshalingCostCharged) {
  WorkerProblem costly = paper_problem();
  costly.work_per_state_byte = 3.0;
  auto servant = std::make_shared<OptWorkerServant>(costly);
  const std::vector<double> coupling = {0.0, 0.0};
  servant->solve(0, coupling, 50);
  sim::WorkScope scope;
  const corba::Blob state = servant->get_state();
  EXPECT_DOUBLE_EQ(scope.consumed(), 3.0 * static_cast<double>(state.size()));
}

TEST_F(WorkerTest, DeterministicAcrossIdenticallyConfiguredWorkers) {
  auto other = std::make_shared<OptWorkerServant>(paper_problem());
  const std::vector<double> coupling = {0.25, -0.5};
  const SolveOutcome a = servant_->solve(1, coupling, 400);
  const SolveOutcome b = other->solve(1, coupling, 400);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

}  // namespace
}  // namespace opt
