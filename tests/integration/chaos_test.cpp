// Chaos integration test: the full 30-dim / 3-worker decomposed Rosenbrock
// run under a seeded adversarial fault schedule — random message drops,
// latency spikes, one healing network partition and one workstation crash.
//
// The contract under test is the strongest form of the paper's claim: the
// fault-tolerant run must not merely *survive* the chaos, it must converge
// to exactly the same minimizer as the failure-free run (checkpoint/restore
// plus deterministic reissue preserve the algorithm's state bit-for-bit),
// and the whole ordeal must be reproducible — same fault seed, same event
// trace, same result.  Duplication is deliberately left out of the plan:
// worker solves are stateful, and at-least-once delivery of a state-mutating
// call is exactly what RecoveryPolicy::retry_on_completed_maybe = false is
// for (covered in tests/ft/).
#include <gtest/gtest.h>

#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "opt/manager.hpp"
#include "sim/fault_injector.hpp"

namespace opt {
namespace {

constexpr double kHostSpeed = 1e5;

class ChaosTest : public ::testing::Test {
 protected:
  rt::SimRuntime& make_runtime(int hosts = 6, double request_timeout = 0.0) {
    cluster_ = std::make_unique<sim::Cluster>();
    for (int i = 0; i < hosts; ++i)
      cluster_->add_host("node" + std::to_string(i), kHostSpeed);
    rt::RuntimeOptions options;
    options.winner_stale_after = 2.5;
    options.request_timeout = request_timeout;
    runtime_ = std::make_unique<rt::SimRuntime>(*cluster_, options);
    runtime_->events().run_until(0.01);
    return *runtime_;
  }

  static SolverConfig chaos_config(
      bool use_ft,
      ft::CheckpointMode checkpoint_mode = ft::CheckpointMode::full_sync) {
    SolverConfig config;
    config.ft_policy.checkpoint_mode = checkpoint_mode;
    config.dimension = 30;
    config.workers = 3;
    config.worker_iterations = 400;
    config.manager_iterations = 12;
    config.manager_work_per_round = 100.0;
    config.use_ft = use_ft;
    config.ft_policy.max_attempts = 6;
    config.ft_policy.backoff_initial_s = 0.02;
    // Workers are stateful and *exclusively owned* by their proxy: recovery
    // must mint a fresh private instance (factory) rather than adopt a
    // shared offer — re-resolving onto an instance another worker is using
    // would restore this worker's checkpoint over the other's live state.
    config.ft_policy.mode = ft::RecoveryMode::factory;
    config.ft_policy.rebind_new_offer = false;
    config.manager_host = "node5";
    return config;
  }

  /// Drops + spikes + one partition that isolates `partitioned_host` for two
  /// virtual seconds and then heals.
  static sim::FaultPlan chaos_plan(std::uint64_t seed,
                                   const std::string& partitioned_host) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.drop_probability = 0.01;
    plan.latency_spike_probability = 0.02;
    plan.latency_spike_s = 0.05;
    plan.partitions.push_back(
        {.start = 1.0, .heal = 3.0, .group = {partitioned_host}});
    return plan;
  }

  /// Installs the plan with its schedule anchored at the current virtual
  /// time (deployment noise must not shift the fault windows).
  std::shared_ptr<sim::FaultInjector> arm(sim::FaultPlan plan) {
    auto injector = std::make_shared<sim::FaultInjector>(std::move(plan));
    injector->set_origin(runtime_->events().now());
    cluster_->set_fault_injector(injector);
    return injector;
  }

  SolverResult undisturbed_result() {
    rt::SimRuntime& runtime = make_runtime();
    DecomposedSolver solver(runtime, chaos_config(/*use_ft=*/true));
    solver.deploy();
    return solver.run();
  }

  struct ChaosOutcome {
    SolverResult result;
    std::vector<std::string> trace;
  };

  /// One full FT run under chaos seed `seed`: drops + spikes throughout, a
  /// partition around the first-placed worker, a crash of the second.
  ChaosOutcome chaos_run(std::uint64_t seed,
                         ft::CheckpointMode checkpoint_mode =
                             ft::CheckpointMode::full_sync) {
    rt::SimRuntime& runtime = make_runtime();
    DecomposedSolver solver(runtime,
                            chaos_config(/*use_ft=*/true, checkpoint_mode));
    solver.deploy();
    const auto injector = arm(chaos_plan(seed, solver.placements().front()));
    cluster_->crash_host_at(runtime.events().now() + 5.0,
                            solver.placements()[1]);
    ChaosOutcome outcome;
    outcome.result = solver.run();
    outcome.trace = injector->trace();
    return outcome;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

TEST_F(ChaosTest, ConvergesToFailureFreeMinimizerAcrossSeeds) {
  const SolverResult undisturbed = undisturbed_result();
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const ChaosOutcome outcome = chaos_run(seed);
    EXPECT_GE(outcome.result.recoveries, 1u);
    EXPECT_FALSE(outcome.trace.empty());
    EXPECT_EQ(outcome.result.best_value, undisturbed.best_value);
    EXPECT_EQ(outcome.result.best_coupling, undisturbed.best_coupling);
  }
}

TEST_F(ChaosTest, SameSeedReproducesTraceAndResult) {
  const ChaosOutcome first = chaos_run(11);
  const ChaosOutcome second = chaos_run(11);
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.result.best_value, second.result.best_value);
  EXPECT_EQ(first.result.virtual_seconds, second.result.virtual_seconds);
  EXPECT_EQ(first.result.recoveries, second.result.recoveries);
  EXPECT_EQ(first.result.worker_calls, second.result.worker_calls);
}

TEST_F(ChaosTest, DeltaAsyncConvergesToFailureFreeMinimizerAcrossSeeds) {
  // The checkpoint pipeline must not weaken the exact-recovery contract:
  // delta encoding changes only how state travels, and the async path is
  // flushed before every restore, so the chaos runs still converge to the
  // failure-free minimizer bit-for-bit.
  const SolverResult undisturbed = undisturbed_result();
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const ChaosOutcome outcome =
        chaos_run(seed, ft::CheckpointMode::delta_async);
    EXPECT_GE(outcome.result.recoveries, 1u);
    EXPECT_FALSE(outcome.trace.empty());
    EXPECT_EQ(outcome.result.best_value, undisturbed.best_value);
    EXPECT_EQ(outcome.result.best_coupling, undisturbed.best_coupling);
  }
}

TEST_F(ChaosTest, DeltaAsyncSameSeedReproducesTraceAndResult) {
  // Async shipping runs as virtual-clock deferred events under the
  // simulator, so even the pipelined runs stay fully deterministic.
  const ChaosOutcome first = chaos_run(23, ft::CheckpointMode::delta_async);
  const ChaosOutcome second = chaos_run(23, ft::CheckpointMode::delta_async);
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.result.best_value, second.result.best_value);
  EXPECT_EQ(first.result.virtual_seconds, second.result.virtual_seconds);
  EXPECT_EQ(first.result.recoveries, second.result.recoveries);
  EXPECT_EQ(first.result.worker_calls, second.result.worker_calls);
}

TEST_F(ChaosTest, SameSeedRunsProduceByteIdenticalObservabilityDumps) {
  // The observability layer must obey the same reproducibility contract as
  // the computation itself: spans are stamped from the virtual clock with
  // ids drawn from the runtime's seed, and timeline events are ordered by
  // the event queue — so two same-seed chaos runs render byte-identical
  // trace and recovery-timeline dumps.
  struct ObsDump {
    std::string timeline;
    std::string spans;
    std::string flight;
  };
  auto observed_run = [&](std::uint64_t fault_seed) {
    obs::RecoveryTimeline timeline;
    obs::SpanCollector spans;
    obs::install_timeline(&timeline);
    spans.install();
    const ChaosOutcome outcome = chaos_run(fault_seed);
    obs::install_timeline(nullptr);
    obs::set_trace_sink(nullptr);
    EXPECT_GE(outcome.result.recoveries, 1u);
    // The always-on flight recorder is cleared per SimRuntime, so its dump
    // covers exactly this run; render before the next run clears it again.
    return ObsDump{timeline.to_string(), spans.dump(),
                   obs::FlightRecorder::global().to_text()};
  };

  const ObsDump first = observed_run(11);
  const ObsDump second = observed_run(11);
  ASSERT_FALSE(first.timeline.empty());
  ASSERT_FALSE(first.spans.empty());
  ASSERT_FALSE(first.flight.empty());
  EXPECT_EQ(first.timeline, second.timeline);
  EXPECT_EQ(first.spans, second.spans);
  EXPECT_EQ(first.flight, second.flight);
  // The timeline saw the whole recovery story, not just the rebind.
  EXPECT_NE(first.timeline.find("proxy"), std::string::npos);
  EXPECT_NE(first.timeline.find("recovery started"), std::string::npos);
  EXPECT_NE(first.spans.find("proxy.recover"), std::string::npos);
  EXPECT_NE(first.spans.find("servant.dispatch"), std::string::npos);
  // And the flight recorder saw RPC traffic plus the recovery steps, without
  // anything having been wired up in advance.
  EXPECT_NE(first.flight.find("rpc_start"), std::string::npos);
  EXPECT_NE(first.flight.find("recovery_step"), std::string::npos);
}

TEST_F(ChaosTest, PlainModeAbortsUnderChaos) {
  // Without proxies the first dropped message kills the whole computation —
  // the paper's motivating failure.
  rt::SimRuntime& runtime = make_runtime();
  DecomposedSolver solver(runtime, chaos_config(/*use_ft=*/false));
  solver.deploy();
  sim::FaultPlan plan;
  plan.seed = 11;
  plan.drop_probability = 0.05;
  arm(plan);
  EXPECT_THROW(solver.run(), corba::COMM_FAILURE);
}

TEST_F(ChaosTest, HealedPartitionRecoveryFitsDeadlineBudget) {
  // A partition cuts off one worker for three virtual seconds.  Under the
  // TCP-retransmit model a reply caught inside the partition is simply held
  // until the heal — the fault only *surfaces* through the request timeout.
  // With a timeout configured, the stalled call raises TIMEOUT, the proxy
  // recovers to a fresh instance, and the whole ordeal (backoff waits
  // included) must fit the per-call deadline budget and still reach the
  // failure-free optimum — well before the partition even heals.
  const SolverResult undisturbed = undisturbed_result();
  rt::SimRuntime& runtime = make_runtime(6, /*request_timeout=*/2.0);
  SolverConfig config = chaos_config(/*use_ft=*/true);
  config.ft_policy.call_deadline_s = 8.0;
  DecomposedSolver solver(runtime, config);
  solver.deploy();
  sim::FaultPlan plan;
  plan.seed = 3;
  plan.partitions.push_back(
      {.start = 1.0, .heal = 4.0, .group = {solver.placements().front()}});
  arm(plan);
  const SolverResult result = solver.run();
  EXPECT_GE(result.recoveries, 1u);
  EXPECT_EQ(result.deadline_exhaustions, 0u);
  EXPECT_EQ(result.best_value, undisturbed.best_value);
  EXPECT_EQ(result.best_coupling, undisturbed.best_coupling);
}

}  // namespace
}  // namespace opt
