// Determinism of the push telemetry plane under chaos: two runs with the
// same seed — same cluster, same fault plan, same workload — must render
// byte-identical event streams through a subscriber.  The channel rides the
// virtual clock (SimRuntime binds it with the event-queue defer executor),
// sequence numbers restart per run, and every producer stamps obs::now(),
// so the stream is as reproducible as the flight-recorder dumps whose
// contract it extends.
#include <gtest/gtest.h>

#include <span>
#include <string>

#include "core/sim_runtime.hpp"
#include "obs/event_channel.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_injector.hpp"

namespace rt {
namespace {

class EchoServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "echo") {
      check_arity(op, args, 1);
      return args[0];
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

/// One complete chaos run; returns the subscriber's rendered stream.
std::string run_once(std::uint64_t seed) {
  // The stream includes metrics.delta events carrying absolute counter
  // values, so per-run determinism needs the process-wide registry zeroed —
  // the same contract benches and the flight recorder already follow.
  obs::MetricsRegistry::global().reset();

  sim::Cluster cluster;
  for (int i = 0; i < 3; ++i)
    cluster.add_host("node" + std::to_string(i), 1e5);

  RuntimeOptions options;
  options.seed = seed;
  options.winner_stale_after = 2.5;
  options.enable_sessions = true;  // drops then exercise resume events
  options.metrics_epoch = 0.5;     // periodic metrics.delta producer
  SimRuntime runtime(cluster, options);

  std::string stream;
  const std::uint64_t sub = obs::EventChannel::global().subscribe(
      {.queue_limit = 65536}, [&stream](std::span<const obs::Event> batch) {
        for (const obs::Event& event : batch) {
          stream += event.to_line();
          stream += '\n';
        }
      });

  runtime.events().run_until(1.1);  // first load reports land

  runtime.registry()->register_type(
      "Echo", [] { return std::make_shared<EchoServant>(); });
  const naming::Name name = naming::Name::parse("Echo");
  runtime.deploy_everywhere(name, "Echo");

  // Seeded message-level chaos: drops force session resumes, spikes shift
  // timings.  Armed after deployment, like the experiment harness does.
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = 0.05;
  plan.latency_spike_probability = 0.05;
  plan.latency_spike_s = 0.02;
  auto injector = std::make_shared<sim::FaultInjector>(plan);
  injector->set_origin(runtime.events().now());
  cluster.set_fault_injector(injector);

  for (int i = 0; i < 120; ++i) {
    try {
      runtime.resolve(name).invoke("echo", {corba::Value(std::int64_t{i})});
    } catch (const corba::SystemException&) {
      // Chaos may kill an individual call; the stream, not the workload's
      // success, is under test.
    }
    runtime.events().run_until(runtime.events().now() + 0.05);
  }

  cluster.set_fault_injector(nullptr);
  runtime.stop_node_managers();
  // Drain the queue so every scheduled delivery lands before we stop.
  runtime.events().run_until(runtime.events().now() + 5.0);
  obs::EventChannel::global().unsubscribe(sub);
  return stream;
}

TEST(EventStreamDeterminism, SameSeedRendersByteIdenticalStreams) {
  const std::string first = run_once(42);
  const std::string second = run_once(42);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed event streams diverged";

  // The stream actually carries the plane's traffic, not just one topic.
  EXPECT_NE(first.find(" metrics.delta "), std::string::npos);
  EXPECT_NE(first.find(" load.report "), std::string::npos);

  // A different seed shifts fault timing, so the stream differs (the
  // equality above is not vacuous).
  EXPECT_NE(run_once(43), first);
}

}  // namespace
}  // namespace rt
