// Integration tests of the SimRuntime deployment: the Fig. 1 architecture
// assembled end to end — node managers reporting through the ORB, the
// naming service consulting Winner, factories resolvable per host.
#include "core/sim_runtime.hpp"

#include <gtest/gtest.h>

namespace rt {
namespace {

class EchoServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "echo") {
      check_arity(op, args, 1);
      return args[0];
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i)
      cluster_.add_host("node" + std::to_string(i), 100.0);
  }

  sim::Cluster cluster_;
};

TEST_F(RuntimeTest, InfraHostIsAddedButNotPlaceable) {
  SimRuntime runtime(cluster_);
  EXPECT_TRUE(cluster_.has_host(names::kInfraHost));
  // All worker hosts are known to Winner, the infra host is not.
  runtime.events().run_until(0.5);  // first reports arrive
  const auto known = runtime.winner_impl()->known_hosts();
  EXPECT_EQ(known.size(), 4u);
  for (const std::string& host : known) EXPECT_NE(host, names::kInfraHost);
}

TEST_F(RuntimeTest, NodeManagersReportThroughTheOrb) {
  SimRuntime runtime(cluster_);
  runtime.events().run_until(3.5);
  // Every host has fresh load data (reports at t=0,1,2,3).
  for (const std::string& host : runtime.worker_hosts())
    EXPECT_EQ(runtime.winner_impl()->host_index(host), 0.0) << host;
  // Background load becomes visible through the reports.  The selection
  // index is load per unit of speed: 3 processes on a speed-100 host.
  cluster_.set_background_load("node2", 3);
  runtime.events().run_until(4.5);
  EXPECT_DOUBLE_EQ(runtime.winner_impl()->host_index("node2"), 3.0 / 100.0);
}

TEST_F(RuntimeTest, InitialReferencesAreRegistered) {
  SimRuntime runtime(cluster_);
  auto orb = runtime.client_orb();
  EXPECT_FALSE(orb->resolve_initial_references("NameService").is_nil());
  EXPECT_FALSE(orb->resolve_initial_references("WinnerSystemManager").is_nil());
  EXPECT_FALSE(orb->resolve_initial_references("CheckpointStore").is_nil());
}

TEST_F(RuntimeTest, DeployBindsOfferOnRequestedHost) {
  SimRuntime runtime(cluster_);
  const naming::Name name = naming::Name::parse("Echo");
  runtime.deploy("node2", std::make_shared<EchoServant>(), name);
  const auto offers = runtime.naming().list_offers(name);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].host, "node2");

  const corba::ObjectRef ref = runtime.resolve(name);
  EXPECT_EQ(ref.invoke("echo", {corba::Value("hi")}).as_string(), "hi");
}

TEST_F(RuntimeTest, WinnerResolveSpreadsPlacements) {
  SimRuntime runtime(cluster_);
  runtime.events().run_until(0.5);
  runtime.registry()->register_type(
      "Echo", [] { return std::make_shared<EchoServant>(); });
  const naming::Name name = naming::Name::parse("Echo");
  runtime.deploy_everywhere(name, "Echo");

  std::set<std::string> hosts;
  for (int i = 0; i < 4; ++i) {
    const corba::ObjectRef ref = runtime.resolve(name);
    hosts.insert(ref.ior().host);
  }
  EXPECT_EQ(hosts.size(), 4u);  // four resolves, four distinct machines
}

TEST_F(RuntimeTest, RoundRobinRuntimeIgnoresLoad) {
  RuntimeOptions options;
  options.naming_strategy = naming::ResolveStrategy::round_robin;
  SimRuntime runtime(cluster_, options);
  runtime.events().run_until(0.5);
  cluster_.set_background_load("node0", 5);  // heavily loaded
  runtime.events().run_until(1.5);

  runtime.registry()->register_type(
      "Echo", [] { return std::make_shared<EchoServant>(); });
  const naming::Name name = naming::Name::parse("Echo");
  runtime.deploy_everywhere(name, "Echo");
  // Round robin serves node0 first despite its load — the plain baseline.
  EXPECT_EQ(runtime.resolve(name).ior().host, "node0");
}

TEST_F(RuntimeTest, FactoriesAreBoundPerHost) {
  SimRuntime runtime(cluster_);
  runtime.registry()->register_type(
      "Echo", [] { return std::make_shared<EchoServant>(); });
  for (const std::string& host : runtime.worker_hosts()) {
    ft::ServiceFactoryStub factory = runtime.factory_on(host);
    EXPECT_EQ(factory.host(), host);
    const corba::ObjectRef fresh = factory.create("Echo");
    EXPECT_EQ(fresh.ior().host, host);
  }
}

TEST_F(RuntimeTest, BestFactoryFollowsLoad) {
  RuntimeOptions options;
  SimRuntime runtime(cluster_, options);
  runtime.events().run_until(0.5);
  // Load everything except node3.
  for (const std::string host : {"node0", "node1", "node2"})
    cluster_.set_background_load(host, 2);
  runtime.events().run_until(1.5);
  EXPECT_EQ(runtime.best_factory().host(), "node3");
}

TEST_F(RuntimeTest, CheckpointStoreIsSharedInfrastructure) {
  SimRuntime runtime(cluster_);
  auto store = runtime.checkpoint_store();
  corba::Blob blob{std::byte{1}};
  store->store("svc", 1, blob);
  EXPECT_EQ(runtime.checkpoint_backend()->stores(), 1u);
  const auto loaded = store->load("svc");
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->state, blob);
}

TEST_F(RuntimeTest, EmptyClusterRejected) {
  sim::Cluster empty;
  EXPECT_THROW(SimRuntime runtime(empty), corba::BAD_PARAM);
}

TEST_F(RuntimeTest, StalenessDetectsDeadHosts) {
  RuntimeOptions options;
  options.winner_stale_after = 2.5;
  SimRuntime runtime(cluster_, options);
  runtime.events().run_until(0.5);
  cluster_.crash_host("node1");
  runtime.events().run_until(5.0);  // node1 misses reports
  const std::string best = runtime.winner_impl()->best_host(
      std::vector<std::string>{"node1", "node2"});
  EXPECT_EQ(best, "node2");
}

}  // namespace
}  // namespace rt
