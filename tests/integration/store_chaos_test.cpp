// Sharded-checkpoint-store chaos: a primary shard servant's host crashes
// mid-run and the contract under test is the store's half of the paper's
// fault-tolerance claim — every *acknowledged* checkpoint survives the
// crash, clients fail over to the freshest follower without help, and the
// whole ordeal is deterministic (same schedule, byte-identical flight
// recorder dump).
//
// Two layers are exercised: the raw store client (precise acked-version
// bookkeeping, zero-loss assertion per key) and the full decomposed solver
// (worker checkpoints ride the sharded store transparently through
// make_proxy_config, and the run still converges to the failure-free
// minimizer bit-for-bit).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/sim_runtime.hpp"
#include "ft/sharded_store.hpp"
#include "obs/flight_recorder.hpp"
#include "opt/manager.hpp"

namespace rt {
namespace {

constexpr double kHostSpeed = 1e5;

/// Deterministic 1 KiB state for (seed, key-index, version): an xorshift
/// stream, so two same-seed runs write byte-identical checkpoints.
corba::Blob state_for(std::uint64_t seed, std::uint64_t index,
                      std::uint64_t version) {
  corba::Blob blob(1024);
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + index * 0xbf58476d1ce4e5b9ull +
                    version + 1;
  for (std::byte& b : blob) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    b = static_cast<std::byte>((x * 0x2545f4914f6cdd1dull) >> 56);
  }
  return blob;
}

class StoreChaosTest : public ::testing::Test {
 protected:
  SimRuntime& make_runtime(std::size_t shards, std::size_t replicas) {
    cluster_ = std::make_unique<sim::Cluster>();
    for (int i = 0; i < 6; ++i)
      cluster_->add_host("node" + std::to_string(i), kHostSpeed);
    RuntimeOptions options;
    options.winner_stale_after = 2.5;
    options.checkpoint_shards = shards;
    options.checkpoint_replicas = replicas;
    runtime_ = std::make_unique<SimRuntime>(*cluster_, options);
    runtime_->events().run_until(0.01);
    return *runtime_;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<SimRuntime> runtime_;
};

struct ChaosOutcome {
  std::string crashed_host;
  std::uint64_t failovers = 0;
  /// key -> version served by load() after the crash.
  std::map<std::string, std::uint64_t> survivors;
  std::string flight;
};

constexpr std::uint64_t kPreCrashVersions = 5;
constexpr std::size_t kKeys = 8;

/// One full store-chaos run: 2 shards x 2 replicas, 8 keys written for 5
/// versions (replication drained between rounds), then the victim shard's
/// primary host crashes and the writers carry on.
ChaosOutcome run_store_chaos(StoreChaosTest& fixture, SimRuntime& runtime,
                             sim::Cluster& cluster, std::uint64_t seed) {
  auto client = runtime.checkpoint_store();
  auto sharded = std::dynamic_pointer_cast<ft::ShardedCheckpointStore>(client);
  EXPECT_NE(sharded, nullptr);

  std::vector<std::string> keys;
  for (std::size_t i = 0; i < kKeys; ++i)
    keys.push_back("svc-" + std::to_string(i));

  // Acked history: store() returning is the acknowledgement.  Replication
  // forwards are zero-delay deferred events, so running the queue between
  // rounds drains them — exactly the simulator's production behavior.
  for (std::uint64_t v = 1; v <= kPreCrashVersions; ++v) {
    for (std::size_t i = 0; i < keys.size(); ++i)
      client->store(keys[i], v, state_for(seed, i, v));
    runtime.events().run_until(runtime.events().now() + 0.05);
  }

  // Crash the primary host of the first key's shard at a fixed virtual
  // time: every subsequent touch of that shard must fail over.
  ChaosOutcome outcome;
  const std::size_t victim_shard = runtime.shard_for_key(keys.front());
  outcome.crashed_host = runtime.shard_hosts()[victim_shard][0];
  cluster.crash_host_at(runtime.events().now() + 0.5, outcome.crashed_host);
  runtime.events().run_until(runtime.events().now() + 1.0);

  // The writers carry on: one more acknowledged round, now partly through
  // promoted followers.
  for (std::size_t i = 0; i < keys.size(); ++i)
    client->store(keys[i], kPreCrashVersions + 1,
                  state_for(seed, i, kPreCrashVersions + 1));
  runtime.events().run_until(runtime.events().now() + 0.5);

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto loaded = client->load(keys[i]);
    if (!loaded) continue;  // recorded as missing: survivors stays empty
    EXPECT_EQ(loaded->state,
              state_for(seed, i, loaded->version));  // bytes, not just version
    outcome.survivors[keys[i]] = loaded->version;
  }
  outcome.failovers = sharded->failovers();
  outcome.flight = obs::FlightRecorder::global().to_text();
  (void)fixture;
  return outcome;
}

TEST_F(StoreChaosTest, PrimaryCrashLosesNoAcknowledgedCheckpoint) {
  SimRuntime& runtime = make_runtime(/*shards=*/2, /*replicas=*/2);
  const ChaosOutcome outcome =
      run_store_chaos(*this, runtime, *cluster_, /*seed=*/11);

  // The client failed over (at least the victim shard's writers did), and
  // the failover left a flight-recorder trail.
  EXPECT_GE(outcome.failovers, 1u);
  EXPECT_NE(outcome.flight.find("shard_failover"), std::string::npos);

  // Zero acknowledged loss: every key serves exactly its last acknowledged
  // version — including keys on the crashed shard, now from a follower.
  ASSERT_EQ(outcome.survivors.size(), kKeys);
  for (const auto& [key, version] : outcome.survivors)
    EXPECT_EQ(version, kPreCrashVersions + 1) << key;
}

TEST_F(StoreChaosTest, SameSeedCrashRunsAreByteIdentical) {
  SimRuntime& first_runtime = make_runtime(2, 2);
  const ChaosOutcome first =
      run_store_chaos(*this, first_runtime, *cluster_, 11);
  SimRuntime& second_runtime = make_runtime(2, 2);
  const ChaosOutcome second =
      run_store_chaos(*this, second_runtime, *cluster_, 11);

  ASSERT_FALSE(first.flight.empty());
  EXPECT_EQ(first.crashed_host, second.crashed_host);
  EXPECT_EQ(first.failovers, second.failovers);
  EXPECT_EQ(first.survivors, second.survivors);
  // The strongest form: the full event trail, byte for byte.
  EXPECT_EQ(first.flight, second.flight);
}

// --- end to end: the solver's checkpoints ride the sharded store -------------

opt::SolverConfig solver_config() {
  opt::SolverConfig config;
  config.dimension = 12;
  config.workers = 3;
  config.worker_iterations = 200;
  config.manager_iterations = 8;
  config.manager_work_per_round = 100.0;
  config.use_ft = true;
  config.ft_policy.checkpoint_mode = ft::CheckpointMode::delta_async;
  config.ft_policy.max_attempts = 6;
  config.ft_policy.backoff_initial_s = 0.02;
  config.ft_policy.mode = ft::RecoveryMode::factory;
  config.ft_policy.rebind_new_offer = false;
  config.manager_host = "node5";
  return config;
}

TEST_F(StoreChaosTest, SolverSurvivesShardPrimaryCrashAndConverges) {
  // Failure-free baseline on the same sharded layout.
  SimRuntime& undisturbed_runtime = make_runtime(2, 2);
  opt::DecomposedSolver undisturbed(undisturbed_runtime, solver_config());
  undisturbed.deploy();
  const opt::SolverResult baseline = undisturbed.run();

  // Sharding off must not change the answer either (the Table 1 guard).
  SimRuntime& plain_runtime = make_runtime(0, 1);
  opt::DecomposedSolver plain(plain_runtime, solver_config());
  plain.deploy();
  const opt::SolverResult unsharded = plain.run();
  EXPECT_EQ(unsharded.best_value, baseline.best_value);
  EXPECT_EQ(unsharded.best_coupling, baseline.best_coupling);

  // Now crash a shard-primary host mid-run.  node5 carries the manager, so
  // pick a shard whose primary lives elsewhere (placement spreads shards
  // over the ranked worker hosts, so one always exists).
  SimRuntime& chaos_runtime = make_runtime(2, 2);
  opt::DecomposedSolver solver(chaos_runtime, solver_config());
  solver.deploy();
  // The victim must be the primary of a shard that actually holds a
  // worker's checkpoint key (the solver's keys are "worker<j>"), so the
  // crash provably forces a store failover — and it must not be node5,
  // which carries the manager.
  std::string victim;
  for (int j = 0; j < solver_config().workers && victim.empty(); ++j) {
    const std::size_t shard =
        chaos_runtime.shard_for_key("worker" + std::to_string(j));
    if (chaos_runtime.shard_hosts()[shard][0] != "node5")
      victim = chaos_runtime.shard_hosts()[shard][0];
  }
  ASSERT_FALSE(victim.empty());
  const double crash_at = chaos_runtime.events().now() + 1.0;
  ASSERT_GT(baseline.virtual_seconds, 1.5)  // the crash must land mid-run
      << "solver finishes before the crash fires; grow the workload";
  cluster_->crash_host_at(crash_at, victim);
  const opt::SolverResult result = solver.run();

  // The run survived and converged to the failure-free minimizer exactly:
  // checkpoints written before the crash were served by the promoted
  // followers during recovery.
  EXPECT_EQ(result.best_value, baseline.best_value);
  EXPECT_EQ(result.best_coupling, baseline.best_coupling);
  EXPECT_GT(result.virtual_seconds, 1.0);
}

}  // namespace
}  // namespace rt
