// Integration tests of the hierarchical (two-site) SimRuntime: per-site
// system managers, WAN-aware placement through the naming service, and
// WAN-priced invocations.
#include <gtest/gtest.h>

#include "core/sim_runtime.hpp"

namespace rt {
namespace {

class EchoServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "echo") {
      check_arity(op, args, 1);
      return args[0];
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

class WanRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      cluster_.add_host("h" + std::to_string(i), 100.0);
      cluster_.add_host("r" + std::to_string(i), 100.0);
      domains_["h" + std::to_string(i)] = "home";
      domains_["r" + std::to_string(i)] = "far";
    }
    cluster_.network().latency_s = 0.001;
    cluster_.network().wan_latency_s = 0.25;
    cluster_.network().bandwidth_bytes_per_s = 1e18;
    cluster_.network().wan_bandwidth_bytes_per_s = 1e18;
  }

  SimRuntime& make_runtime(double penalty) {
    RuntimeOptions options;
    options.host_domains = domains_;
    options.home_domain = "home";
    options.wan_remote_penalty = penalty;
    runtime_ = std::make_unique<SimRuntime>(cluster_, options);
    runtime_->registry()->register_type(
        "Echo", [] { return std::make_shared<EchoServant>(); });
    runtime_->deploy_everywhere(naming::Name::parse("Echo"), "Echo");
    runtime_->events().run_until(runtime_->events().now() + 1.1);
    return *runtime_;
  }

  sim::Cluster cluster_;
  std::map<std::string, std::string> domains_;
  std::unique_ptr<SimRuntime> runtime_;
};

TEST_F(WanRuntimeTest, RequiresHomeDomain) {
  RuntimeOptions options;
  options.host_domains = domains_;
  EXPECT_THROW(SimRuntime(cluster_, options), corba::BAD_PARAM);
}

TEST_F(WanRuntimeTest, SiteManagersSeeOnlyTheirHosts) {
  SimRuntime& runtime = make_runtime(1.0);
  EXPECT_EQ(runtime.winner_impl(), nullptr);
  EXPECT_EQ(runtime.site_manager("home")->known_hosts(),
            (std::vector<std::string>{"h0", "h1"}));
  EXPECT_EQ(runtime.site_manager("far")->known_hosts(),
            (std::vector<std::string>{"r0", "r1"}));
  EXPECT_THROW(runtime.site_manager("nope"), corba::BAD_PARAM);
  EXPECT_EQ(runtime.load_info()->known_hosts().size(), 4u);
}

TEST_F(WanRuntimeTest, PlacementPrefersHomeUntilLoaded) {
  SimRuntime& runtime = make_runtime(1.5);
  // Two placements: both home machines (the WAN penalty shields them).
  EXPECT_EQ(runtime.resolve(naming::Name::parse("Echo")).ior().host[0], 'h');
  EXPECT_EQ(runtime.resolve(naming::Name::parse("Echo")).ior().host[0], 'h');
  // Heavy load at home: the next resolve spills to the remote site.
  cluster_.set_background_load("h0", 3);
  cluster_.set_background_load("h1", 3);
  runtime.events().run_until(runtime.events().now() + 2.0);
  EXPECT_EQ(runtime.resolve(naming::Name::parse("Echo")).ior().host[0], 'r');
}

TEST_F(WanRuntimeTest, CrossSiteCallsPayWanLatency) {
  SimRuntime& runtime = make_runtime(1.0);
  const corba::ObjectRef local = runtime.naming().list_offers(
      naming::Name::parse("Echo"))[0].ref;  // h0
  const corba::ObjectRef remote = runtime.naming().list_offers(
      naming::Name::parse("Echo"))[2].ref;  // r0
  // Client lives on the infra host (home domain).
  const corba::ObjectRef local_ref = runtime.client_orb()->make_ref(local.ior());
  const corba::ObjectRef remote_ref =
      runtime.client_orb()->make_ref(remote.ior());

  double t0 = runtime.events().now();
  local_ref.invoke("echo", {corba::Value(std::int64_t{1})});
  const double local_cost = runtime.events().now() - t0;

  t0 = runtime.events().now();
  remote_ref.invoke("echo", {corba::Value(std::int64_t{1})});
  const double remote_cost = runtime.events().now() - t0;

  EXPECT_NEAR(local_cost, 0.002, 1e-6);
  EXPECT_NEAR(remote_cost, 0.5, 1e-6);
}

TEST_F(WanRuntimeTest, NodeManagersReportToTheirOwnSite) {
  SimRuntime& runtime = make_runtime(1.0);
  cluster_.set_background_load("r1", 2);
  runtime.events().run_until(runtime.events().now() + 2.0);
  EXPECT_DOUBLE_EQ(runtime.site_manager("far")->host_index("r1"), 2.0 / 100.0);
  EXPECT_THROW(runtime.site_manager("home")->host_index("r1"),
               corba::BAD_PARAM);
}

}  // namespace
}  // namespace rt
