// End-to-end fault injection: the full optimization with workstation
// crashes mid-run.  Validates the paper's motivation — "prevent the whole
// computation from failing due to a single error on the server side" —
// including that the FT run returns exactly the same optimization result as
// a failure-free run.
#include <gtest/gtest.h>

#include "opt/manager.hpp"

namespace opt {
namespace {

constexpr double kHostSpeed = 1e5;

SolverConfig test_config(bool use_ft) {
  SolverConfig config;
  config.dimension = 30;
  config.workers = 3;
  config.worker_iterations = 400;
  config.manager_iterations = 12;
  config.manager_work_per_round = 100.0;
  config.use_ft = use_ft;
  config.ft_policy.max_attempts = 5;
  // Pin the manager process to its own workstation: the experiments crash
  // *worker* hosts; manager-process death is outside the paper's FT scope.
  config.manager_host = "node5";
  return config;
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  rt::SimRuntime& make_runtime(int hosts) {
    cluster_ = std::make_unique<sim::Cluster>();
    for (int i = 0; i < hosts; ++i)
      cluster_->add_host("node" + std::to_string(i), kHostSpeed);
    rt::RuntimeOptions options;
    options.winner_stale_after = 2.5;
    runtime_ = std::make_unique<rt::SimRuntime>(*cluster_, options);
    runtime_->events().run_until(0.01);
    return *runtime_;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

TEST_F(FaultRecoveryTest, PlainRunAbortsOnCrash) {
  rt::SimRuntime& runtime = make_runtime(6);
  DecomposedSolver solver(runtime, test_config(/*use_ft=*/false));
  solver.deploy();
  // Kill one of the placed workers' hosts mid-run.
  cluster_->crash_host_at(1.0, solver.placements().front());
  EXPECT_THROW(solver.run(), corba::COMM_FAILURE);
}

TEST_F(FaultRecoveryTest, FtRunSurvivesASingleCrash) {
  rt::SimRuntime& runtime = make_runtime(6);
  DecomposedSolver solver(runtime, test_config(/*use_ft=*/true));
  solver.deploy();
  cluster_->crash_host_at(1.0, solver.placements().front());
  const SolverResult result = solver.run();
  EXPECT_GE(result.recoveries, 1u);
  EXPECT_GT(result.rounds, 0);
}

TEST_F(FaultRecoveryTest, FtResultMatchesFailureFreeRun) {
  // Determinism end to end: a run with a crash + recovery must converge to
  // the same optimum as the undisturbed run — checkpoint/restore preserves
  // exactly the state the algorithm needs.
  SolverResult undisturbed;
  {
    rt::SimRuntime& runtime = make_runtime(6);
    DecomposedSolver solver(runtime, test_config(/*use_ft=*/true));
    solver.deploy();
    undisturbed = solver.run();
  }
  rt::SimRuntime& runtime = make_runtime(6);
  DecomposedSolver solver(runtime, test_config(/*use_ft=*/true));
  solver.deploy();
  cluster_->crash_host_at(2.0, solver.placements().back());
  const SolverResult with_crash = solver.run();

  EXPECT_GE(with_crash.recoveries, 1u);
  EXPECT_EQ(with_crash.best_value, undisturbed.best_value);
  EXPECT_EQ(with_crash.worker_calls, undisturbed.worker_calls);
  // The crashed run pays for recovery and re-execution.
  EXPECT_GT(with_crash.virtual_seconds, undisturbed.virtual_seconds);
}

TEST_F(FaultRecoveryTest, SurvivesMultipleSequentialCrashes) {
  rt::SimRuntime& runtime = make_runtime(8);
  DecomposedSolver solver(runtime, test_config(/*use_ft=*/true));
  solver.deploy();
  // Crash three different workstations at spaced times, all comfortably
  // inside the run's ~14 virtual-second window.
  cluster_->crash_host_at(1.0, solver.placements()[0]);
  cluster_->crash_host_at(5.0, solver.placements()[1]);
  cluster_->crash_host_at(9.0, solver.placements()[2]);
  const SolverResult result = solver.run();
  EXPECT_GE(result.recoveries, 3u);
}

}  // namespace
}  // namespace opt
