// End-to-end tests of the decomposed Rosenbrock solver on the simulated
// NOW — the full paper workload: parallel DII rounds, Winner placement,
// and the load-distribution effect of Fig. 3 in miniature.
#include "opt/manager.hpp"

#include <gtest/gtest.h>

namespace opt {
namespace {

constexpr double kHostSpeed = 1e5;  // work units per virtual second

SolverConfig small_config() {
  SolverConfig config;
  config.dimension = 30;
  config.workers = 3;
  config.worker_iterations = 300;
  config.manager_iterations = 10;
  config.manager_work_per_round = 100.0;
  return config;
}

class SolverTest : public ::testing::Test {
 protected:
  rt::SimRuntime& make_runtime(
      int hosts,
      naming::ResolveStrategy strategy = naming::ResolveStrategy::winner) {
    cluster_ = std::make_unique<sim::Cluster>();
    for (int i = 0; i < hosts; ++i)
      cluster_->add_host("node" + std::to_string(i), kHostSpeed);
    rt::RuntimeOptions options;
    options.naming_strategy = strategy;
    runtime_ = std::make_unique<rt::SimRuntime>(*cluster_, options);
    runtime_->events().run_until(0.01);  // initial load reports
    return *runtime_;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

TEST_F(SolverTest, SolvesTheDecomposed30DProblem) {
  rt::SimRuntime& runtime = make_runtime(6);
  DecomposedSolver solver(runtime, small_config());
  solver.deploy();
  const SolverResult result = solver.run();

  EXPECT_GT(result.rounds, 0);
  EXPECT_EQ(result.worker_calls, static_cast<std::int64_t>(result.rounds) * 3);
  EXPECT_GT(result.virtual_seconds, 0.0);
  // The bilevel optimization makes real progress: far below a random
  // 30-d Rosenbrock value (which is O(10^4..10^5) in [-5,5]).
  EXPECT_LT(result.best_value, 500.0);
  EXPECT_EQ(result.best_coupling.size(), 2u);
  EXPECT_EQ(result.recoveries, 0u);
}

TEST_F(SolverTest, WinnerPlacementUsesDistinctHosts) {
  rt::SimRuntime& runtime = make_runtime(6);
  DecomposedSolver solver(runtime, small_config());
  solver.deploy();
  const std::set<std::string> hosts(solver.placements().begin(),
                                    solver.placements().end());
  EXPECT_EQ(hosts.size(), 3u);
}

TEST_F(SolverTest, DeterministicAcrossRuns) {
  SolverResult first;
  {
    rt::SimRuntime& runtime = make_runtime(6);
    DecomposedSolver solver(runtime, small_config());
    solver.deploy();
    first = solver.run();
  }
  rt::SimRuntime& runtime = make_runtime(6);
  DecomposedSolver solver(runtime, small_config());
  solver.deploy();
  const SolverResult second = solver.run();
  EXPECT_EQ(first.best_value, second.best_value);
  // Virtual runtimes agree to rounding: object keys embed a process-global
  // adapter counter, so message sizes (and hence transfer times) can differ
  // by a digit between runs within one process.
  EXPECT_NEAR(first.virtual_seconds, second.virtual_seconds,
              1e-6 * first.virtual_seconds);
  EXPECT_EQ(first.worker_calls, second.worker_calls);
}

TEST_F(SolverTest, BackgroundLoadSlowsThePlainNamingServiceMore) {
  // Miniature Fig. 3: 2 of 6 hosts carry background load.  The Winner
  // naming service avoids them; round robin blindly places workers there.
  const auto measure = [&](naming::ResolveStrategy strategy) {
    rt::SimRuntime& runtime = make_runtime(6, strategy);
    cluster_->set_background_load("node0", 1);
    cluster_->set_background_load("node1", 1);
    runtime.events().run_until(2.0);  // reports reflect the load
    DecomposedSolver solver(runtime, small_config());
    solver.deploy();
    return solver.run().virtual_seconds;
  };
  const double winner_runtime = measure(naming::ResolveStrategy::winner);
  const double plain_runtime = measure(naming::ResolveStrategy::round_robin);
  // Round robin puts workers on node0/node1 (halved rate); Winner picks
  // three free machines: roughly a 2x runtime gap.
  EXPECT_LT(winner_runtime * 1.5, plain_runtime);
}

TEST_F(SolverTest, WithoutLoadBothStrategiesPerformAlike) {
  const auto measure = [&](naming::ResolveStrategy strategy) {
    rt::SimRuntime& runtime = make_runtime(6, strategy);
    DecomposedSolver solver(runtime, small_config());
    solver.deploy();
    return solver.run().virtual_seconds;
  };
  const double winner_runtime = measure(naming::ResolveStrategy::winner);
  const double plain_runtime = measure(naming::ResolveStrategy::round_robin);
  EXPECT_NEAR(winner_runtime, plain_runtime, 0.05 * plain_runtime);
}

TEST_F(SolverTest, FtProxiesProduceCheckpointsAndOverhead) {
  rt::SimRuntime& plain_runtime = make_runtime(6);
  DecomposedSolver plain(plain_runtime, small_config());
  plain.deploy();
  const SolverResult base = plain.run();

  SolverConfig ft_config = small_config();
  ft_config.use_ft = true;
  ft_config.work_per_state_byte = 5.0;
  rt::SimRuntime& ft_runtime = make_runtime(6);
  ft_runtime.options();
  DecomposedSolver with_ft(ft_runtime, ft_config);
  with_ft.deploy();
  const SolverResult ft_result = with_ft.run();

  // Same optimization result (checkpointing must not change semantics)...
  EXPECT_EQ(ft_result.best_value, base.best_value);
  EXPECT_EQ(ft_result.worker_calls, base.worker_calls);
  // ...at a measurable runtime cost (Table 1's subject).
  EXPECT_EQ(ft_result.checkpoints,
            static_cast<std::uint64_t>(ft_result.worker_calls));
  EXPECT_GT(ft_result.virtual_seconds, base.virtual_seconds);
}

TEST_F(SolverTest, HundredDimensionalSevenWorkerScenario) {
  SolverConfig config;
  config.dimension = 100;
  config.workers = 7;
  config.worker_iterations = 150;
  config.manager_iterations = 5;
  rt::SimRuntime& runtime = make_runtime(10);
  DecomposedSolver solver(runtime, config);
  solver.deploy();
  const SolverResult result = solver.run();
  EXPECT_EQ(result.best_coupling.size(), 6u);
  EXPECT_EQ(result.worker_calls, static_cast<std::int64_t>(result.rounds) * 7);
  const std::set<std::string> hosts(solver.placements().begin(),
                                    solver.placements().end());
  EXPECT_EQ(hosts.size(), 7u);
}

TEST_F(SolverTest, RunBeforeDeployRejected) {
  rt::SimRuntime& runtime = make_runtime(6);
  DecomposedSolver solver(runtime, small_config());
  EXPECT_THROW(solver.run(), corba::BAD_INV_ORDER);
}

TEST_F(SolverTest, NeedsAtLeastTwoWorkers) {
  rt::SimRuntime& runtime = make_runtime(6);
  SolverConfig config = small_config();
  config.workers = 1;
  EXPECT_THROW(DecomposedSolver(runtime, config), corba::BAD_PARAM);
}

}  // namespace
}  // namespace opt
