// Tests of request timeouts: virtual-time deadlines in the simulator,
// wall-clock deadlines on the TCP transport, and the fault-tolerance
// proxies recovering from *hung* (overloaded, not crashed) servers.
#include <gtest/gtest.h>

#include <thread>

#include "core/sim_runtime.hpp"
#include "ft/checkpoint.hpp"
#include "ft/proxy.hpp"
#include "orb/cdr.hpp"
#include "orb/tcp_transport.hpp"
#include "sim/work_meter.hpp"

namespace {

/// A service whose call cost is set per instance — "hung" instances charge
/// absurd work, modeling an overloaded or wedged server.
class SlowServant final : public corba::Servant,
                          public ft::CheckpointableServant {
 public:
  explicit SlowServant(double work) : work_(work) {}
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Slow:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    if (op == "add") {
      check_arity(op, args, 1);
      sim::WorkMeter::charge(work_);
      total_ += args[0].as_i64();
      return corba::Value(total_);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  corba::Blob get_state() override {
    corba::CdrOutputStream out;
    out.write_i64(total_);
    return out.take_buffer();
  }
  void set_state(const corba::Blob& state) override {
    corba::CdrInputStream in(state);
    total_ = in.read_i64();
  }

 private:
  double work_;
  std::int64_t total_ = 0;
};

class TimeoutTest : public ::testing::Test {
 protected:
  rt::SimRuntime& make_runtime(double timeout) {
    cluster_ = std::make_unique<sim::Cluster>();
    for (int i = 0; i < 3; ++i)
      cluster_->add_host("node" + std::to_string(i), 100.0);
    rt::RuntimeOptions options;
    options.request_timeout = timeout;
    options.winner_stale_after = 2.5;
    runtime_ = std::make_unique<rt::SimRuntime>(*cluster_, options);
    runtime_->events().run_until(0.01);
    return *runtime_;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

TEST_F(TimeoutTest, SimCallTimesOutAtTheVirtualDeadline) {
  rt::SimRuntime& runtime = make_runtime(5.0);
  // 10,000 work units at speed 100 => the call would take 100 s.
  const corba::ObjectRef slow = runtime.deploy(
      "node0", std::make_shared<SlowServant>(1e4), naming::Name::parse("Slow"));
  const double t0 = runtime.events().now();
  try {
    slow.invoke("add", {corba::Value(std::int64_t{1})});
    FAIL() << "expected TIMEOUT";
  } catch (const corba::TIMEOUT& e) {
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
  }
  EXPECT_NEAR(runtime.events().now() - t0, 5.0, 1e-9);
}

TEST_F(TimeoutTest, FastCallsAreUnaffectedByTheDeadline) {
  rt::SimRuntime& runtime = make_runtime(5.0);
  const corba::ObjectRef fast = runtime.deploy(
      "node0", std::make_shared<SlowServant>(10.0),
      naming::Name::parse("Fast"));
  EXPECT_EQ(fast.invoke("add", {corba::Value(std::int64_t{2})}).as_i64(), 2);
}

TEST_F(TimeoutTest, ZeroTimeoutMeansUnbounded) {
  rt::SimRuntime& runtime = make_runtime(0.0);
  const corba::ObjectRef slow = runtime.deploy(
      "node0", std::make_shared<SlowServant>(1e4), naming::Name::parse("Slow"));
  // Takes 100 virtual seconds but completes.
  EXPECT_EQ(slow.invoke("add", {corba::Value(std::int64_t{3})}).as_i64(), 3);
}

TEST_F(TimeoutTest, ProxyRecoversFromAHungServer) {
  // One wedged instance among healthy ones: the proxy times out, recovers
  // to a healthy instance (restoring state), and the call succeeds — the
  // failure mode that pure COMM_FAILURE detection can never handle.
  rt::SimRuntime& runtime = make_runtime(5.0);
  const naming::Name name = naming::Name::parse("Svc");
  runtime.registry()->register_type(
      "Svc", [] { return std::make_shared<SlowServant>(10.0); });
  runtime.deploy("node0", std::make_shared<SlowServant>(1e6), name);  // hung
  runtime.deploy("node1", std::make_shared<SlowServant>(10.0), name);
  runtime.deploy("node2", std::make_shared<SlowServant>(10.0), name);

  ft::RecoveryPolicy policy;
  policy.max_attempts = 4;
  policy.resolve_strategy = naming::ResolveStrategy::round_robin;
  ft::ProxyConfig config = runtime.make_proxy_config(
      name, "Svc", "svc-1", policy,
      runtime.naming().list_offers(name)[0].ref);  // start on the hung one
  ft::ProxyEngine engine(std::move(config));

  EXPECT_EQ(engine.call("add", {corba::Value(std::int64_t{7})}).as_i64(), 7);
  EXPECT_GE(engine.recoveries(), 1u);
  EXPECT_NE(engine.current().ior().host, "node0");
}

TEST(TcpTimeoutTest, HungTcpServerRaisesTimeout) {
  // A servant that sleeps (wall clock) longer than the client's deadline.
  class Sleeper final : public corba::Servant {
   public:
    std::string_view repo_id() const noexcept override {
      return "IDL:corbaft/tests/Sleeper:1.0";
    }
    corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
      if (op == "nap") {
        std::this_thread::sleep_for(std::chrono::milliseconds(600));
        return {};
      }
      throw corba::BAD_OPERATION(std::string(op));
    }
  };

  auto server = corba::ORB::init({.endpoint_name = "s", .enable_tcp = true});
  const corba::ObjectRef ref = server->activate(std::make_shared<Sleeper>());

  corba::TcpClientTransport transport(/*request_timeout_s=*/0.15);
  corba::RequestMessage request;
  request.request_id = 1;
  request.object_key = ref.ior().key;
  request.operation = "nap";
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(transport.invoke(ref.ior(), request), corba::TIMEOUT);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 0.5);  // did not wait for the full 600 ms nap
}

}  // namespace
