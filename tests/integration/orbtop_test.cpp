// orbtop against live clusters: the collector walks a real naming tree and
// polls every `_obs/<host>` telemetry servant, and the `--json` rendering is
// well-formed JSON — proved with a strict little validator, against both the
// simulated NOW deployment and a real TCP cluster.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <string>
#include <thread>

#include "core/sim_runtime.hpp"
#include "obs/event_channel.hpp"
#include "obs/metrics.hpp"
#include "obs/orbtop.hpp"
#include "obs/telemetry.hpp"
#include "orb/orb.hpp"

namespace rt {
namespace {

// --- minimal JSON well-formedness checker ----------------------------------
// Recursive descent over the whole grammar; returns true iff the entire
// input is exactly one valid JSON value.  No DOM, no allocation.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker checker(text);
    checker.skip_ws();
    if (!checker.value()) return false;
    checker.skip_ws();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return false;
            else
              ++pos_;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        ++pos_;
        skip_ws();
        if (eat('}')) return true;
        do {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (!eat(':')) return false;
          if (!value()) return false;
          skip_ws();
        } while (eat(','));
        return eat('}');
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (eat(']')) return true;
        do {
          if (!value()) return false;
          skip_ws();
        } while (eat(','));
        return eat(']');
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerSelfTest, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(JsonChecker::valid("{\"a\": [1, 2.5e-3, \"x\\n\", true, null]}"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\": }"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\": 1} trailing"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\": 1,}"));
  EXPECT_FALSE(JsonChecker::valid("\"unterminated"));
  EXPECT_FALSE(JsonChecker::valid("[1 2]"));
}

class EchoServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "echo") {
      check_arity(op, args, 1);
      return args[0];
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

TEST(OrbtopSimClusterTest, CollectsEveryNodeAndEmitsWellFormedJson) {
  sim::Cluster cluster;
  for (int i = 0; i < 3; ++i)
    cluster.add_host("node" + std::to_string(i), 100.0);
  SimRuntime runtime(cluster);
  runtime.events().run_until(2.5);  // load reports flow

  runtime.registry()->register_type(
      "Echo", [] { return std::make_shared<EchoServant>(); });
  const naming::Name name = naming::Name::parse("Echo");
  runtime.deploy_everywhere(name, "Echo");
  for (int i = 0; i < 5; ++i)
    runtime.resolve(name).invoke("echo", {corba::Value(std::int64_t{i})});

  naming::NamingContextStub root = runtime.naming();
  const obs::ClusterSnapshot snapshot = obs::collect_cluster(root);

  // Every worker host registered a telemetry servant; the infra host did not.
  ASSERT_EQ(snapshot.nodes.size(), 3u);
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const obs::NodeStatus& node = snapshot.nodes[i];
    EXPECT_EQ(node.name, "node" + std::to_string(i));
    ASSERT_TRUE(node.reachable) << node.error;
    EXPECT_EQ(node.health.host, node.name);
    // Load reports arrived, so age and index are known (>= 0), and the
    // process-wide RPC counter has seen the echo traffic.
    EXPECT_GE(node.health.report_age, 0.0);
    EXPECT_GE(node.health.load_index, 0.0);
    EXPECT_GT(node.health.rpcs, 0u);
  }
  // The offer table lists the application pool but never the reserved tree.
  ASSERT_EQ(snapshot.offers.size(), 1u);
  EXPECT_EQ(snapshot.offers[0].name, "Echo");
  EXPECT_EQ(snapshot.offers[0].offers, 3u);

  const std::string json = obs::render_json(snapshot);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"name\": \"node1\""), std::string::npos);
  EXPECT_FALSE(obs::render_table(snapshot).empty());
}

TEST(OrbtopTcpClusterTest, PollsTelemetryOverRealSocketsAndEmitsJson) {
  // Two server processes (ORBs with TCP endpoints) sharing one naming root,
  // and a pure-TCP client bootstrapped from the stringified IOR — exactly
  // what the orbtop CLI does.
  auto alpha = corba::ORB::init({.endpoint_name = "alpha", .enable_tcp = true});
  auto beta = corba::ORB::init({.endpoint_name = "beta", .enable_tcp = true});
  auto [root_servant, root_ref] =
      naming::NamingContextServant::create_root(alpha);
  obs::install_telemetry(alpha, *root_servant, {.host = "alpha"});
  obs::install_telemetry(beta, *root_servant, {.host = "beta"});
  root_servant->bind_offer(naming::Name::parse("Echo"),
                           alpha->activate(std::make_shared<EchoServant>()),
                           "alpha");

  auto watcher =
      corba::ORB::init({.endpoint_name = "watcher", .enable_tcp = true});
  naming::NamingContextStub root(
      watcher->string_to_object(alpha->object_to_string(root_ref)));

  const obs::ClusterSnapshot snapshot = obs::collect_cluster(root);
  ASSERT_EQ(snapshot.nodes.size(), 2u);
  EXPECT_EQ(snapshot.nodes[0].name, "alpha");
  EXPECT_EQ(snapshot.nodes[1].name, "beta");
  for (const obs::NodeStatus& node : snapshot.nodes) {
    ASSERT_TRUE(node.reachable) << node.name << ": " << node.error;
    EXPECT_EQ(node.health.host, node.name);
  }
  ASSERT_EQ(snapshot.offers.size(), 1u);
  EXPECT_EQ(snapshot.offers[0].name, "Echo");

  const std::string json = obs::render_json(snapshot);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"name\": \"beta\", \"reachable\": true"),
            std::string::npos);
}

TEST(OrbtopSimClusterTest, PushCollectorStreamsWithZeroPollingRpcs) {
  sim::Cluster cluster;
  for (int i = 0; i < 2; ++i)
    cluster.add_host("node" + std::to_string(i), 100.0);
  RuntimeOptions options;
  options.metrics_epoch = 0.5;  // runtime-level metrics.delta producer
  SimRuntime runtime(cluster, options);
  runtime.events().run_until(2.5);

  runtime.registry()->register_type(
      "Echo", [] { return std::make_shared<EchoServant>(); });
  const naming::Name name = naming::Name::parse("Echo");
  runtime.deploy_everywhere(name, "Echo");

  naming::NamingContextStub root = runtime.naming();
  obs::PushCollector collector(runtime.client_orb(), root);
  // The consumer's IOR is the dedupe identity: subscribing through both
  // nodes' servants of this shared-process cluster lands one subscription.
  EXPECT_EQ(collector.subscriptions(), 2u);
  EXPECT_EQ(obs::EventChannel::global().subscriber_count(), 1u);

  // Traffic + epochs + load reports flow; deliveries ride the virtual clock.
  for (int i = 0; i < 5; ++i)
    runtime.resolve(name).invoke("echo", {corba::Value(std::int64_t{i})});
  runtime.events().run_until(6.0);
  EXPECT_GT(collector.events_received(), 0u);

  const obs::ClusterSnapshot snapshot = collector.snapshot();
  EXPECT_EQ(snapshot.transport, "push");
  ASSERT_EQ(snapshot.nodes.size(), 2u);
  for (const obs::NodeStatus& node : snapshot.nodes) {
    EXPECT_TRUE(node.reachable) << node.error;
    // load.report events refreshed the Winner columns ...
    EXPECT_GE(node.health.load_index, 0.0);
    EXPECT_GE(node.health.report_age, 0.0);
    // ... and metrics.delta events the RPC columns.
    EXPECT_GT(node.health.rpcs, 0u);
  }
  EXPECT_NE(obs::render_json(snapshot).find("\"transport\": \"push\""),
            std::string::npos);
  EXPECT_NE(obs::render_json(obs::collect_cluster(root))
                .find("\"transport\": \"poll\""),
            std::string::npos);

  // The zero-polling contract: snapshot() is assembled locally.  Under the
  // simulator any RPC must run the (currently idle) event queue, and the
  // process-wide request counter must not move.
  const obs::Counter& requests =
      obs::MetricsRegistry::global().counter("orb.requests_total");
  const std::uint64_t before = requests.value();
  (void)collector.snapshot();
  (void)collector.snapshot();
  EXPECT_EQ(requests.value(), before);
}

TEST(OrbtopSimClusterTest, PushCollectorStreamsShardStoreColumns) {
  sim::Cluster cluster;
  for (int i = 0; i < 4; ++i)
    cluster.add_host("node" + std::to_string(i), 100.0);
  RuntimeOptions options;
  options.checkpoint_shards = 2;
  options.checkpoint_replicas = 2;
  SimRuntime runtime(cluster, options);
  runtime.events().run_until(0.5);

  // Subscribe first: the shard primaries publish shard.state only while
  // somebody is listening.
  naming::NamingContextStub root = runtime.naming();
  obs::PushCollector collector(runtime.client_orb(), root);

  auto store = runtime.checkpoint_store();
  const corba::Blob state(256, std::byte{7});
  for (std::uint64_t v = 1; v <= 3; ++v) {
    for (int i = 0; i < 8; ++i)
      store->store("svc-" + std::to_string(i), v, state);
    runtime.events().run_until(runtime.events().now() + 0.1);
  }

  const obs::ClusterSnapshot snapshot = collector.snapshot();
  ASSERT_EQ(snapshot.shards.size(), 2u);  // one line per shard primary
  for (const obs::ShardLine& line : snapshot.shards) {
    EXPECT_EQ(line.role, "primary");
    EXPECT_FALSE(line.host.empty());
    EXPECT_GT(line.version, 0u);   // writes hit both shards
    EXPECT_EQ(line.followers, 1u);
    EXPECT_EQ(line.lag, 0u);  // forwards drained on the virtual clock
  }
  const std::string json = obs::render_json(snapshot);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(obs::render_table(snapshot).find("shards:"), std::string::npos);
}

TEST(OrbtopTcpClusterTest, PushCollectorStreamsOverRealSockets) {
  obs::EventChannel::global().reset();
  auto alpha = corba::ORB::init({.endpoint_name = "alpha2", .enable_tcp = true});
  auto [root_servant, root_ref] =
      naming::NamingContextServant::create_root(alpha);
  // install_telemetry binds the global channel in worker mode for a TCP
  // deployment; the push carrier is the normal GIOP-lite wire.
  obs::install_telemetry(alpha, *root_servant, {.host = "alpha2"});

  auto watcher =
      corba::ORB::init({.endpoint_name = "watcher3", .enable_tcp = true});
  naming::NamingContextStub root(
      watcher->string_to_object(alpha->object_to_string(root_ref)));
  {
    obs::PushCollector collector(watcher, root);
    EXPECT_EQ(collector.subscriptions(), 1u);
    EXPECT_EQ(collector.snapshot().transport, "push");

    obs::publish_event(obs::Topic::load_report, "alpha2", "alpha2",
                       {obs::num_field("index", 2.5),
                        obs::num_field("load_avg", 1.0),
                        obs::num_field("timestamp", 0.0)});
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (collector.events_received() == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "no push event arrived over TCP";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const obs::ClusterSnapshot snapshot = collector.snapshot();
    ASSERT_EQ(snapshot.nodes.size(), 1u);
    EXPECT_DOUBLE_EQ(snapshot.nodes[0].health.load_index, 2.5);
  }
  obs::EventChannel::global().reset();
  watcher->shutdown();
  alpha->shutdown();
}

}  // namespace
}  // namespace rt
