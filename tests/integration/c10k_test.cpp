// C10K test: the reactor serves thousands of concurrent connections on a
// fixed two-thread receive budget.  Opens ~2k idle+active connections against
// one endpoint, checks the process thread count stays flat while they
// accumulate (the legacy path would add one thread per connection), drives
// calls over a sample of them plus a sessions-enabled client, and verifies
// every reply lands exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/message.hpp"
#include "orb/orb.hpp"
#include "orb/server_conn.hpp"
#include "orb/tcp_transport.hpp"

namespace rt {
namespace {

using namespace corba;

/// Current thread count of this process (test + server + clients share it).
int process_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0)
      return std::stoi(line.substr(sizeof("Threads:") - 1));
  }
  return -1;
}

class CounterServant : public Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:rt/C10k:1.0";
  }
  Value dispatch(std::string_view op, const ValueSeq& args) override {
    if (op == "add")
      return Value(args.at(0).as_i32() + args.at(1).as_i32());
    throw BAD_OPERATION(std::string(op));
  }
};

std::vector<std::byte> encode_add(const IOR& target, std::uint64_t id,
                                  std::int32_t a, std::int32_t b) {
  RequestMessage req;
  req.request_id = id;
  req.object_key = target.key;
  req.operation = "add";
  req.arguments = {Value(a), Value(b)};
  CdrOutputStream body;
  req.encode_body(body);
  return encode_frame(MessageType::request, body);
}

std::int32_t recv_add_reply(Socket& socket, std::uint64_t expect_id) {
  MessageHeader header;
  std::vector<std::byte> body;
  if (!socket.recv_frame(header, body, nullptr, 30.0))
    throw COMM_FAILURE("server closed a live c10k connection");
  CdrInputStream in(body, header.byte_order);
  const ReplyMessage reply = ReplyMessage::decode_body(in);
  EXPECT_EQ(reply.request_id, expect_id);
  return reply.result_or_throw().as_i32();
}

TEST(C10kTest, ThousandsOfConnectionsOnATwoThreadBudget) {
  // Each connection costs two fds in this single process (client + accepted
  // side); make sure the soft limit accommodates them before starting.
  const std::size_t limit = raise_nofile_soft_limit(3 * 2048 + 256);
  const std::size_t conns =
      limit >= 3 * 2048 + 256 ? 2048 : std::max<std::size_t>(
                                           (limit - 256) / 3, 512);
  ASSERT_GE(conns, 512u) << "RLIMIT_NOFILE too low to exercise C10K at all";

  auto server = ORB::init({.endpoint_name = "c10k",
                           .enable_tcp = true,
                           .dispatch_threads = 2,
                           .io_threads = 2});
  const ObjectRef target = server->activate(std::make_shared<CounterServant>());
  const IOR ior = target.ior();

  // Sessions-enabled client up front so its own threads are part of the
  // baseline, not noise in the flat-thread-count assertion.
  TcpClientTransport session_client(TcpClientOptions{.enable_sessions = true});
  const ReplyMessage warm = session_client.invoke(ior, [&] {
    RequestMessage req;
    req.request_id = 1;
    req.object_key = ior.key;
    req.operation = "add";
    req.arguments = {Value(1), Value(1)};
    return req;
  }());
  ASSERT_EQ(warm.result_or_throw().as_i32(), 2);

  const int threads_before = process_threads();
  ASSERT_GT(threads_before, 0);

  std::vector<Socket> sockets;
  sockets.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i)
    sockets.push_back(Socket::connect("127.0.0.1", server->tcp_port()));

  // Every 64th connection makes a call so the set is idle+active, and so a
  // round-robin sample across both event loops proves each one is serving.
  std::uint64_t issued = 0;
  for (std::size_t i = 0; i < sockets.size(); i += 64) {
    const std::uint64_t id = 100 + i;
    sockets[i].send_bytes(
        encode_add(ior, id, static_cast<std::int32_t>(i), 1));
    ++issued;
  }
  for (std::size_t i = 0; i < sockets.size(); i += 64)
    EXPECT_EQ(recv_add_reply(sockets[i], 100 + i),
              static_cast<std::int32_t>(i) + 1);

  // Session traffic keeps flowing while thousands of connections sit
  // registered; seq/ack bookkeeping must deliver each reply exactly once.
  for (std::uint64_t id = 2; id <= 65; ++id) {
    RequestMessage req;
    req.request_id = id;
    req.object_key = ior.key;
    req.operation = "add";
    req.arguments = {Value(static_cast<std::int32_t>(id)), Value(1)};
    EXPECT_EQ(session_client.invoke(ior, std::move(req))
                  .result_or_throw()
                  .as_i32(),
              static_cast<std::int32_t>(id) + 1);
  }

  const int threads_after = process_threads();
  // The receive budget is fixed: accepting `conns` connections must not have
  // spawned receive threads.  A slack of 2 absorbs incidental client-side
  // threads (e.g. a lazily-started mux receive loop).
  EXPECT_LE(threads_after, threads_before + 2)
      << conns << " connections grew the process from " << threads_before
      << " to " << threads_after << " threads";

  const double registered =
      obs::MetricsRegistry::global().gauge("transport.tcp.epoll_registered")
          .value();
  EXPECT_GE(registered, static_cast<double>(conns));
}

}  // namespace
}  // namespace rt
