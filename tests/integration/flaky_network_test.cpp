// Chaos scenario "flaky network, healthy hosts": every host stays up for the
// whole run, but the network keeps resetting connections in seeded bursts.
// With resumable sessions enabled the transport absorbs every reset by
// reconnect-with-replay — the run converges to the failure-free minimizer
// with *zero* FT-proxy recoveries (the expensive re-resolve/restore machinery
// never wakes up), while the session counters show the resumes that actually
// happened.  Same fault seed, same event trace, same result — the resume path
// obeys the repo-wide reproducibility contract.  With sessions disabled the
// very same plan falls back to the batched-failure path and the proxies must
// recover the old way, which still converges but is no longer recovery-free.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "opt/manager.hpp"
#include "sim/fault_injector.hpp"

namespace opt {
namespace {

constexpr double kHostSpeed = 1e5;

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

class FlakyNetworkTest : public ::testing::Test {
 protected:
  rt::SimRuntime& make_runtime(bool enable_sessions) {
    cluster_ = std::make_unique<sim::Cluster>();
    for (int i = 0; i < 6; ++i)
      cluster_->add_host("node" + std::to_string(i), kHostSpeed);
    rt::RuntimeOptions options;
    options.winner_stale_after = 2.5;
    options.enable_sessions = enable_sessions;
    runtime_ = std::make_unique<rt::SimRuntime>(*cluster_, options);
    runtime_->events().run_until(0.01);
    return *runtime_;
  }

  static SolverConfig flaky_config(bool use_ft = true) {
    SolverConfig config;
    config.dimension = 30;
    config.workers = 3;
    config.worker_iterations = 400;
    config.manager_iterations = 12;
    config.manager_work_per_round = 100.0;
    config.use_ft = use_ft;
    config.ft_policy.max_attempts = 6;
    config.ft_policy.backoff_initial_s = 0.02;
    config.ft_policy.mode = ft::RecoveryMode::factory;
    config.ft_policy.rebind_new_offer = false;
    config.manager_host = "node5";
    return config;
  }

  /// Connection resets only: no drops, no partitions, no crashes — the hosts
  /// are perfectly healthy, the *links* are flaky.
  static sim::FaultPlan flaky_plan(std::uint64_t seed) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.reset_probability = 0.05;
    return plan;
  }

  std::shared_ptr<sim::FaultInjector> arm(sim::FaultPlan plan) {
    auto injector = std::make_shared<sim::FaultInjector>(std::move(plan));
    injector->set_origin(runtime_->events().now());
    cluster_->set_fault_injector(injector);
    return injector;
  }

  SolverResult undisturbed_result() {
    rt::SimRuntime& runtime = make_runtime(/*enable_sessions=*/true);
    DecomposedSolver solver(runtime, flaky_config());
    solver.deploy();
    return solver.run();
  }

  struct FlakyOutcome {
    SolverResult result;
    std::vector<std::string> trace;
    std::uint64_t resumes = 0;       // delta over this run
    std::uint64_t reset_count = 0;   // resets the injector actually dealt
  };

  FlakyOutcome flaky_run(std::uint64_t seed, bool enable_sessions) {
    const std::uint64_t resumes_before =
        counter_value("transport.session.resumes_total");
    rt::SimRuntime& runtime = make_runtime(enable_sessions);
    DecomposedSolver solver(runtime, flaky_config());
    solver.deploy();
    const auto injector = arm(flaky_plan(seed));
    FlakyOutcome outcome;
    outcome.result = solver.run();
    outcome.trace = injector->trace();
    outcome.reset_count = injector->connection_resets();
    outcome.resumes =
        counter_value("transport.session.resumes_total") - resumes_before;
    return outcome;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

TEST_F(FlakyNetworkTest, SessionsAbsorbResetsWithZeroRecoveries) {
  const SolverResult undisturbed = undisturbed_result();
  for (const std::uint64_t seed : {7u, 19u, 31u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const FlakyOutcome outcome = flaky_run(seed, /*enable_sessions=*/true);
    // The plan actually bit: resets were dealt and resumed in-band.
    EXPECT_GT(outcome.reset_count, 0u);
    EXPECT_GT(outcome.resumes, 0u);
    // ...yet the FT layer never noticed: exactly-once without one recovery.
    EXPECT_EQ(outcome.result.recoveries, 0u);
    EXPECT_EQ(outcome.result.best_value, undisturbed.best_value);
    EXPECT_EQ(outcome.result.best_coupling, undisturbed.best_coupling);
  }
}

TEST_F(FlakyNetworkTest, SameSeedReproducesTraceAndResult) {
  const FlakyOutcome first = flaky_run(7, /*enable_sessions=*/true);
  const FlakyOutcome second = flaky_run(7, /*enable_sessions=*/true);
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.reset_count, second.reset_count);
  EXPECT_EQ(first.resumes, second.resumes);
  EXPECT_EQ(first.result.best_value, second.result.best_value);
  EXPECT_EQ(first.result.virtual_seconds, second.result.virtual_seconds);
  EXPECT_EQ(first.result.recoveries, second.result.recoveries);
  EXPECT_EQ(first.result.worker_calls, second.result.worker_calls);
}

TEST_F(FlakyNetworkTest, WithoutSessionsResetsWakeTheRecoveryPath) {
  // The control arm: same flaky links, sessions off.  Every reset is a
  // batched COMM_FAILURE, so the proxies must run the full recovery
  // machinery — it still converges (that path is well tested), but the
  // recovery count shows the cost the session layer removes.
  const SolverResult undisturbed = undisturbed_result();
  const FlakyOutcome outcome = flaky_run(7, /*enable_sessions=*/false);
  EXPECT_GT(outcome.reset_count, 0u);
  EXPECT_EQ(outcome.resumes, 0u);
  EXPECT_GE(outcome.result.recoveries, 1u);
  EXPECT_EQ(outcome.result.best_value, undisturbed.best_value);
  EXPECT_EQ(outcome.result.best_coupling, undisturbed.best_coupling);
}

}  // namespace
}  // namespace opt
