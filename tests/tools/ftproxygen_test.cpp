// End-to-end test of ftproxygen-generated bindings: the Calculator
// interface (tests/tools/calculator.idl) compiled from generated code and
// driven through stub, skeleton, user exceptions, checkpointing and the
// generated fault-tolerance proxy with real recovery.
#include <gtest/gtest.h>

#include "calculator_gen.hpp"
#include "core/sim_runtime.hpp"
#include "orb/cdr.hpp"

namespace {

using corbaft_gen::Calculator_DivByZero;
using corbaft_gen::CalculatorProxy;
using corbaft_gen::CalculatorSkeleton;
using corbaft_gen::CalculatorStub;

class CalculatorServant final : public CalculatorSkeleton {
 public:
  double divide(double a, double b) override {
    if (b == 0.0) throw Calculator_DivByZero("division by zero");
    return a / b;
  }
  std::int64_t accumulate(std::int64_t n) override { return total_ += n; }
  void reset() override { total_ = 0; }
  std::string describe(const std::string& prefix) override {
    return prefix + std::to_string(total_);
  }
  bool is_positive(std::int32_t value) override { return value > 0; }
  std::vector<double> scale(const std::vector<double>& values,
                            double factor) override {
    std::vector<double> out;
    for (double v : values) out.push_back(v * factor);
    return out;
  }
  std::uint64_t version() override { return 7; }
  corba::Value echo(const corba::Value& value) override { return value; }
  corba::Blob digest(const corba::Blob& data) override {
    corba::Blob out;
    std::uint8_t x = 0;
    for (std::byte b : data) x ^= static_cast<std::uint8_t>(b);
    out.push_back(static_cast<std::byte>(x));
    return out;
  }

  corba::Blob get_state() override {
    corba::CdrOutputStream out;
    out.write_i64(total_);
    return out.take_buffer();
  }
  void set_state(const corba::Blob& state) override {
    corba::CdrInputStream in(state);
    total_ = in.read_i64();
  }

 private:
  std::int64_t total_ = 0;
};

class FtProxygenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i)
      cluster_.add_host("node" + std::to_string(i), 100.0);
    rt::RuntimeOptions options;
    options.winner_stale_after = 2.5;
    runtime_ = std::make_unique<rt::SimRuntime>(cluster_, options);
    runtime_->registry()->register_type(
        "Calculator", [] { return std::make_shared<CalculatorServant>(); });
    runtime_->deploy_everywhere(naming::Name::parse("Calculator"),
                                "Calculator");
    runtime_->events().run_until(0.01);
  }

  sim::Cluster cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

TEST_F(FtProxygenTest, GeneratedStubCoversAllTypes) {
  CalculatorStub calc(runtime_->resolve(naming::Name::parse("Calculator")));
  EXPECT_DOUBLE_EQ(calc.divide(10.0, 4.0), 2.5);
  EXPECT_EQ(calc.accumulate(40), 40);
  EXPECT_EQ(calc.accumulate(2), 42);
  EXPECT_EQ(calc.describe("total="), "total=42");
  EXPECT_TRUE(calc.is_positive(3));
  EXPECT_FALSE(calc.is_positive(-3));
  EXPECT_EQ(calc.scale({1.0, 2.0}, 3.0), (std::vector<double>{3.0, 6.0}));
  EXPECT_EQ(calc.version(), 7u);
  EXPECT_EQ(calc.echo(corba::Value("anything")).as_string(), "anything");
  corba::Blob data{std::byte{0x0f}, std::byte{0xf0}};
  EXPECT_EQ(calc.digest(data), corba::Blob{std::byte{0xff}});
  calc.reset();
  EXPECT_EQ(calc.describe(""), "0");
}

TEST_F(FtProxygenTest, GeneratedUserExceptionCrossesTheWire) {
  CalculatorStub calc(runtime_->resolve(naming::Name::parse("Calculator")));
  try {
    calc.divide(1.0, 0.0);
    FAIL() << "expected Calculator_DivByZero";
  } catch (const Calculator_DivByZero& e) {
    EXPECT_EQ(e.detail(), "division by zero");
  }
}

TEST_F(FtProxygenTest, GeneratedSkeletonValidatesArity) {
  const corba::ObjectRef ref =
      runtime_->resolve(naming::Name::parse("Calculator"));
  EXPECT_THROW(ref.invoke("divide", {corba::Value(1.0)}), corba::BAD_PARAM);
  EXPECT_THROW(ref.invoke("unknown_op", {}), corba::BAD_OPERATION);
}

TEST_F(FtProxygenTest, GeneratedProxyRecoversWithState) {
  CalculatorProxy calc(runtime_->make_proxy_config(
      naming::Name::parse("Calculator"), "Calculator", "calc-1"));
  EXPECT_EQ(calc.accumulate(40), 40);
  EXPECT_EQ(calc.accumulate(2), 42);

  const std::string victim = calc.engine().current().ior().host;
  cluster_.crash_host(victim);

  // The generated proxy recovers transparently; the checkpointed total
  // survives onto the replacement instance.
  EXPECT_EQ(calc.describe("total="), "total=42");
  EXPECT_EQ(calc.engine().recoveries(), 1u);
  EXPECT_NE(calc.engine().current().ior().host, victim);

  // And the generated proxy is substitutable for the stub (§3's point of
  // deriving proxies from stubs).
  CalculatorStub& as_stub = calc;
  EXPECT_EQ(as_stub.version(), 7u);
}

TEST_F(FtProxygenTest, GeneratedProxyStillRaisesUserExceptions) {
  CalculatorProxy calc(runtime_->make_proxy_config(
      naming::Name::parse("Calculator"), "Calculator", "calc-2"));
  EXPECT_THROW(calc.divide(1.0, 0.0), Calculator_DivByZero);
}

}  // namespace
