// Unit tests for object keys and IORs: stringification, parsing and
// malformed-input handling.
#include "orb/ior.hpp"

#include <gtest/gtest.h>

#include "orb/exceptions.hpp"

namespace corba {
namespace {

IOR sample_ior() {
  IOR ior;
  ior.type_id = "IDL:corbaft/OptWorker:1.0";
  ior.protocol = std::string(protocol::tcp);
  ior.host = "192.168.1.17";
  ior.port = 2809;
  ior.key = ObjectKey::from_string("worker#a1.42");
  return ior;
}

TEST(ObjectKey, RoundTripsThroughString) {
  const ObjectKey key = ObjectKey::from_string("svc#a3.7");
  EXPECT_EQ(key.to_string(), "svc#a3.7");
  EXPECT_EQ(ObjectKey::from_string(key.to_string()), key);
}

TEST(ObjectKey, EscapesNonPrintableBytes) {
  ObjectKey key;
  key.bytes = {std::byte{0x01}, std::byte{'a'}, std::byte{0xff}};
  EXPECT_EQ(key.to_string(), "\\01a\\ff");
}

TEST(ObjectKey, HashDistinguishesKeys) {
  ObjectKeyHash hash;
  EXPECT_NE(hash(ObjectKey::from_string("a")), hash(ObjectKey::from_string("b")));
  EXPECT_EQ(hash(ObjectKey::from_string("a")), hash(ObjectKey::from_string("a")));
}

TEST(Ior, DefaultIsNil) {
  IOR ior;
  EXPECT_TRUE(ior.is_nil());
  EXPECT_EQ(ior.to_display_string(), "<nil>");
}

TEST(Ior, StringRoundTrip) {
  const IOR ior = sample_ior();
  const std::string s = ior.to_string();
  EXPECT_EQ(s.substr(0, 4), "IOR:");
  EXPECT_EQ(IOR::from_string(s), ior);
}

TEST(Ior, InprocProfileRoundTrip) {
  IOR ior;
  ior.type_id = "IDL:corbaft/NamingContext:1.0";
  ior.protocol = std::string(protocol::inproc);
  ior.host = "node03";
  ior.key = ObjectKey::from_string("naming#a1.1");
  EXPECT_EQ(IOR::from_string(ior.to_string()), ior);
}

TEST(Ior, CdrRoundTripBothOrders) {
  for (ByteOrder order : {ByteOrder::big_endian, ByteOrder::little_endian}) {
    CdrOutputStream out(order);
    sample_ior().encode(out);
    CdrInputStream in(out.buffer(), order);
    EXPECT_EQ(IOR::decode(in), sample_ior());
  }
}

TEST(Ior, MalformedStringsRejected) {
  EXPECT_THROW(IOR::from_string(""), INV_OBJREF);
  EXPECT_THROW(IOR::from_string("ior:00"), INV_OBJREF);
  EXPECT_THROW(IOR::from_string("IOR:0"), INV_OBJREF);     // odd hex length
  EXPECT_THROW(IOR::from_string("IOR:zz"), INV_OBJREF);    // bad hex digit
  EXPECT_THROW(IOR::from_string("IOR:00"), INV_OBJREF);    // truncated body
}

TEST(Ior, TrailingBytesRejected) {
  std::string s = sample_ior().to_string();
  s += "00";
  EXPECT_THROW(IOR::from_string(s), INV_OBJREF);
}

TEST(Ior, DisplayStringContainsAddress) {
  const std::string display = sample_ior().to_display_string();
  EXPECT_NE(display.find("tcp://192.168.1.17:2809"), std::string::npos);
  EXPECT_NE(display.find("worker#a1.42"), std::string::npos);
}

}  // namespace
}  // namespace corba
