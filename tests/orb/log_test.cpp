// Unit tests for the logging facade and the fault-tolerance layer's events.
#include "orb/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corba {
namespace {

struct Event {
  log::Level level;
  std::string component;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { log::clear_sink(); }

  std::vector<Event> install_collector() {
    events_.clear();
    log::set_sink([this](log::Level level, std::string_view component,
                         std::string_view message) {
      events_.push_back(Event{level, std::string(component),
                              std::string(message)});
    });
    return {};
  }

  std::vector<Event> events_;
};

TEST_F(LogTest, DisabledByDefault) {
  EXPECT_FALSE(log::enabled());
  log::emit(log::Level::error, "x", "dropped");  // no sink, no crash
}

TEST_F(LogTest, SinkReceivesEvents) {
  install_collector();
  EXPECT_TRUE(log::enabled());
  log::emit(log::Level::warning, "ft.proxy", "something happened");
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].level, log::Level::warning);
  EXPECT_EQ(events_[0].component, "ft.proxy");
  EXPECT_EQ(events_[0].message, "something happened");
}

TEST_F(LogTest, ClearSinkStopsDelivery) {
  install_collector();
  log::clear_sink();
  EXPECT_FALSE(log::enabled());
  log::emit(log::Level::info, "x", "dropped");
  EXPECT_TRUE(events_.empty());
}

// Regression: emit() used to hold the sink mutex across the user callback,
// so a sink that logged again (tracing allocator, ORB call inside a logging
// backend) self-deadlocked.  The sink must be invoked with no lock held.
TEST_F(LogTest, ReentrantSinkDoesNotDeadlock) {
  install_collector();
  log::set_sink([this](log::Level level, std::string_view component,
                       std::string_view message) {
    events_.push_back(
        Event{level, std::string(component), std::string(message)});
    if (component != "inner")
      log::emit(log::Level::debug, "inner", "emitted from within the sink");
  });
  log::emit(log::Level::info, "outer", "first");
  ASSERT_EQ(events_.size(), 2u);
  EXPECT_EQ(events_[0].component, "outer");
  EXPECT_EQ(events_[1].component, "inner");
  EXPECT_EQ(events_[1].message, "emitted from within the sink");
}

// A sink may even replace itself while running; the in-flight invocation
// completes on the old sink (documented in log.hpp).
TEST_F(LogTest, SinkMayReplaceItselfWhileRunning) {
  int old_calls = 0;
  log::set_sink([&](log::Level, std::string_view, std::string_view) {
    ++old_calls;
    log::clear_sink();
  });
  log::emit(log::Level::info, "x", "only delivery");
  EXPECT_EQ(old_calls, 1);
  EXPECT_FALSE(log::enabled());
  log::emit(log::Level::info, "x", "dropped");
  EXPECT_EQ(old_calls, 1);
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(log::to_string(log::Level::debug), "debug");
  EXPECT_EQ(log::to_string(log::Level::info), "info");
  EXPECT_EQ(log::to_string(log::Level::warning), "warning");
  EXPECT_EQ(log::to_string(log::Level::error), "error");
}

}  // namespace
}  // namespace corba
