// Unit tests for the logging facade and the fault-tolerance layer's events.
#include "orb/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corba {
namespace {

struct Event {
  log::Level level;
  std::string component;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { log::clear_sink(); }

  std::vector<Event> install_collector() {
    events_.clear();
    log::set_sink([this](log::Level level, std::string_view component,
                         std::string_view message) {
      events_.push_back(Event{level, std::string(component),
                              std::string(message)});
    });
    return {};
  }

  std::vector<Event> events_;
};

TEST_F(LogTest, DisabledByDefault) {
  EXPECT_FALSE(log::enabled());
  log::emit(log::Level::error, "x", "dropped");  // no sink, no crash
}

TEST_F(LogTest, SinkReceivesEvents) {
  install_collector();
  EXPECT_TRUE(log::enabled());
  log::emit(log::Level::warning, "ft.proxy", "something happened");
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].level, log::Level::warning);
  EXPECT_EQ(events_[0].component, "ft.proxy");
  EXPECT_EQ(events_[0].message, "something happened");
}

TEST_F(LogTest, ClearSinkStopsDelivery) {
  install_collector();
  log::clear_sink();
  EXPECT_FALSE(log::enabled());
  log::emit(log::Level::info, "x", "dropped");
  EXPECT_TRUE(events_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(log::to_string(log::Level::debug), "debug");
  EXPECT_EQ(log::to_string(log::Level::info), "info");
  EXPECT_EQ(log::to_string(log::Level::warning), "warning");
  EXPECT_EQ(log::to_string(log::Level::error), "error");
}

}  // namespace
}  // namespace corba
