// Reactor receive-path tests: incremental frame assembly (byte-dribbled and
// interleaved partial frames), loss of a frame mid-assembly, partial reply
// writes drained on EPOLLOUT against a slow reader, dispatch-queue
// back-pressure (stalled connections resume instead of dropping requests),
// idle-connection harvesting, and the legacy thread-per-connection mode kept
// behind OrbConfig::reactor = false.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/message.hpp"
#include "orb/orb.hpp"
#include "orb/tcp_transport.hpp"
#include "test_interfaces.hpp"

namespace corba {
namespace {

using namespace std::chrono_literals;
using corbaft_test::CalcServant;
using corbaft_test::CalcStub;

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

RequestMessage make_add_request(const IOR& target, std::uint64_t id,
                                std::int32_t a, std::int32_t b) {
  RequestMessage req;
  req.request_id = id;
  req.object_key = target.key;
  req.operation = "add";
  req.arguments = {Value(a), Value(b)};
  return req;
}

std::vector<std::byte> encode_request(const RequestMessage& req) {
  CdrOutputStream body;
  req.encode_body(body);
  return encode_frame(MessageType::request, body);
}

ReplyMessage recv_reply(Socket& socket, double timeout_s = 10.0) {
  MessageHeader header;
  std::vector<std::byte> body;
  if (!socket.recv_frame(header, body, nullptr, timeout_s))
    throw COMM_FAILURE("peer closed while a reply was expected");
  CdrInputStream in(body, header.byte_order);
  return ReplyMessage::decode_body(in);
}

/// Servant that holds every call for a fixed delay (back-pressure tests).
class SlowServant : public corbaft_test::CalcSkeleton {
 public:
  explicit SlowServant(std::chrono::milliseconds delay) : delay_(delay) {}
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    std::this_thread::sleep_for(delay_);
    ++calls_;
    return a + b;
  }
  std::string echo(const std::string& s) override {
    ++calls_;
    return s;
  }
  void fail() override {}
  std::int64_t calls() const override { return calls_.load(); }

 private:
  std::chrono::milliseconds delay_;
  std::atomic<std::int64_t> calls_{0};
};

class ReactorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = ORB::init({.endpoint_name = "reactor-server",
                         .enable_tcp = true,
                         .io_threads = 2});
    target_ = server_->activate(std::make_shared<CalcServant>());
  }

  std::shared_ptr<ORB> server_;
  ObjectRef target_;
};

TEST_F(ReactorTest, PartialFrameAssembledAcrossManyReads) {
  // Dribble one request frame a few bytes at a time: the reactor must
  // assemble it incrementally (header first, then body) and reply once the
  // last byte lands.
  const std::vector<std::byte> frame =
      encode_request(make_add_request(target_.ior(), 7, 40, 2));
  Socket socket = Socket::connect("127.0.0.1", server_->tcp_port());
  for (std::size_t off = 0; off < frame.size(); off += 3) {
    const std::size_t n = std::min<std::size_t>(3, frame.size() - off);
    socket.send_bytes(std::span(frame).subspan(off, n));
    std::this_thread::sleep_for(1ms);
  }
  const ReplyMessage reply = recv_reply(socket);
  EXPECT_EQ(reply.request_id, 7u);
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
}

TEST_F(ReactorTest, InterleavedPartialFramesKeepConnectionsIsolated) {
  // Two connections alternate partial writes: per-connection read buffers
  // must never mix the streams.
  const std::vector<std::byte> frame_a =
      encode_request(make_add_request(target_.ior(), 1, 10, 1));
  const std::vector<std::byte> frame_b =
      encode_request(make_add_request(target_.ior(), 2, 20, 2));
  Socket sock_a = Socket::connect("127.0.0.1", server_->tcp_port());
  Socket sock_b = Socket::connect("127.0.0.1", server_->tcp_port());
  const std::size_t len = std::max(frame_a.size(), frame_b.size());
  for (std::size_t off = 0; off < len; off += 5) {
    if (off < frame_a.size())
      sock_a.send_bytes(std::span(frame_a).subspan(
          off, std::min<std::size_t>(5, frame_a.size() - off)));
    if (off < frame_b.size())
      sock_b.send_bytes(std::span(frame_b).subspan(
          off, std::min<std::size_t>(5, frame_b.size() - off)));
  }
  EXPECT_EQ(recv_reply(sock_a).result_or_throw().as_i32(), 11);
  EXPECT_EQ(recv_reply(sock_b).result_or_throw().as_i32(), 22);
}

TEST_F(ReactorTest, FrameLostMidAssemblyDoesNotWedgeTheServer) {
  // A client that dies halfway through a frame must only cost its own
  // connection: the half-assembled buffer is discarded on EOF and the
  // endpoint keeps serving.
  {
    const std::vector<std::byte> frame =
        encode_request(make_add_request(target_.ior(), 3, 1, 2));
    Socket socket = Socket::connect("127.0.0.1", server_->tcp_port());
    socket.send_bytes(std::span(frame).first(frame.size() / 2));
    std::this_thread::sleep_for(20ms);  // let the reactor ingest the half
  }                                     // close with the frame incomplete
  Socket socket = Socket::connect("127.0.0.1", server_->tcp_port());
  socket.send_bytes(encode_request(make_add_request(target_.ior(), 4, 2, 3)));
  EXPECT_EQ(recv_reply(socket).result_or_throw().as_i32(), 5);
}

TEST_F(ReactorTest, PipelinedBurstRepliesInOrder) {
  // Many requests in one write: the reactor parses every complete frame in
  // the buffer and the dispatch pool's per-key FIFO keeps replies ordered.
  constexpr int kCalls = 64;
  std::vector<std::byte> burst;
  for (int i = 0; i < kCalls; ++i) {
    const std::vector<std::byte> frame = encode_request(
        make_add_request(target_.ior(), static_cast<std::uint64_t>(i), i, 1));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  Socket socket = Socket::connect("127.0.0.1", server_->tcp_port());
  socket.send_bytes(burst);
  for (int i = 0; i < kCalls; ++i) {
    const ReplyMessage reply = recv_reply(socket);
    EXPECT_EQ(reply.request_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(reply.result_or_throw().as_i32(), i + 1);
  }
}

TEST_F(ReactorTest, SlowReaderDrainsDeferredWritesInOrder) {
  // A client that pipelines far more reply volume than the kernel's socket
  // buffers hold, without reading: reply writes hit EAGAIN, the tails park
  // in the connection's pending-write queue and drain on EPOLLOUT once the
  // client starts reading, preserving order.
  constexpr int kCalls = 64;
  const std::string payload(256 * 1024, 'x');

  Socket socket = Socket::connect("127.0.0.1", server_->tcp_port());
  const std::uint64_t deferred_before =
      counter_value("transport.tcp.reactor.deferred_writes_total");
  for (int i = 0; i < kCalls; ++i) {
    RequestMessage req;
    req.request_id = static_cast<std::uint64_t>(i);
    req.object_key = target_.ior().key;
    req.operation = "echo";
    req.arguments = {Value(payload)};
    socket.send_bytes(encode_request(req));
  }
  // Do not read yet: give the server time to fill the socket buffers so the
  // reply stream actually backs up (~16MiB of replies vs ~hundreds of KiB of
  // kernel buffering).
  std::this_thread::sleep_for(200ms);
  for (int i = 0; i < kCalls; ++i) {
    const ReplyMessage reply = recv_reply(socket, 30.0);
    EXPECT_EQ(reply.request_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(reply.result_or_throw().as_string(), payload);
  }
  EXPECT_GT(counter_value("transport.tcp.reactor.deferred_writes_total"),
            deferred_before)
      << "16MiB of pipelined replies never hit EAGAIN";
}

TEST(ReactorBackPressureTest, FullDispatchQueueStallsConnectionsWithoutLoss) {
  // A tiny dispatch queue against a slow servant: connections stall (EPOLLIN
  // disarmed) while the pool is full and resume via the space callback.
  // Every request must still complete exactly once.
  auto server = ORB::init({.endpoint_name = "reactor-bp",
                           .enable_tcp = true,
                           .dispatch_threads = 1,
                           .dispatch_queue_limit = 2,
                           .io_threads = 2});
  auto slow = std::make_shared<SlowServant>(2ms);
  const ObjectRef target = server->activate(slow);

  constexpr int kConns = 4;
  constexpr int kCallsPerConn = 16;
  std::vector<Socket> sockets;
  for (int c = 0; c < kConns; ++c) {
    sockets.push_back(Socket::connect("127.0.0.1", server->tcp_port()));
    std::vector<std::byte> burst;
    for (int i = 0; i < kCallsPerConn; ++i) {
      const std::vector<std::byte> frame = encode_request(make_add_request(
          target.ior(), static_cast<std::uint64_t>(c * 100 + i), i, c));
      burst.insert(burst.end(), frame.begin(), frame.end());
    }
    sockets.back().send_bytes(burst);
  }
  for (int c = 0; c < kConns; ++c) {
    for (int i = 0; i < kCallsPerConn; ++i) {
      const ReplyMessage reply = recv_reply(sockets[c], 30.0);
      EXPECT_EQ(reply.request_id, static_cast<std::uint64_t>(c * 100 + i));
      EXPECT_EQ(reply.result_or_throw().as_i32(), i + c);
    }
  }
  EXPECT_EQ(slow->calls(), kConns * kCallsPerConn);
}

TEST(ReactorBackPressureTest, StalledRequestSurvivesDisconnectViaSessionReplay) {
  // Regression: a request parked by back-pressure has already had its seq
  // noted by the session, so the client's post-resume retransmit of that seq
  // is suppressed as a duplicate.  If the connection dies while the request
  // is parked (here: an RST against a stalled connection), the reactor must
  // still execute it — the reply lands in the session replay buffer —
  // instead of dropping it, which would lose the call with no retry.
  auto server = ORB::init({.endpoint_name = "reactor-salvage",
                           .enable_tcp = true,
                           .dispatch_threads = 1,
                           .dispatch_queue_limit = 1,
                           .io_threads = 1});
  auto slow = std::make_shared<SlowServant>(400ms);
  const ObjectRef target = server->activate(slow);

  std::uint64_t session_id = 0;
  {
    Socket socket = Socket::connect("127.0.0.1", server->tcp_port());
    CdrOutputStream hello_body;
    SessionHello{.session_id = 0, .highest_reply_seq = 0}.encode_body(
        hello_body);
    socket.send_bytes(encode_frame(MessageType::session_hello, hello_body));
    MessageHeader header;
    std::vector<std::byte> body;
    ASSERT_TRUE(socket.recv_frame(header, body, nullptr, 5.0));
    ASSERT_EQ(header.type, MessageType::session_accept);
    CdrInputStream in(body, header.byte_order);
    const SessionAccept accept = SessionAccept::decode_body(in);
    ASSERT_TRUE(accept.ok);
    session_id = accept.session_id;

    // seq 1 occupies the whole pool (limit 1, servant sleeping); seq 2 is
    // parked on the connection with EPOLLIN disarmed.
    RequestMessage first = make_add_request(target.ior(), 1, 10, 1);
    attach_session_context(first, {.seq = 1, .ack = 0});
    RequestMessage second = make_add_request(target.ior(), 2, 20, 2);
    attach_session_context(second, {.seq = 2, .ack = 0});
    std::vector<std::byte> burst = encode_request(first);
    const std::vector<std::byte> f2 = encode_request(second);
    burst.insert(burst.end(), f2.begin(), f2.end());
    socket.send_bytes(burst);
    std::this_thread::sleep_for(100ms);  // let the reactor ingest and stall
    const linger lg{.l_onoff = 1, .l_linger = 0};
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }  // RST: EPOLLERR/EPOLLHUP hits the stalled connection

  // Resume: the server must report both seqs received (so the client will
  // not retransmit either) and deliver both replies — seq 1 completed
  // against the dead carrier, seq 2 was salvaged from the reaped connection.
  Socket socket = Socket::connect("127.0.0.1", server->tcp_port());
  CdrOutputStream hello_body;
  SessionHello{.session_id = session_id, .highest_reply_seq = 0}.encode_body(
      hello_body);
  socket.send_bytes(encode_frame(MessageType::session_hello, hello_body));
  MessageHeader header;
  std::vector<std::byte> body;
  ASSERT_TRUE(socket.recv_frame(header, body, nullptr, 5.0));
  ASSERT_EQ(header.type, MessageType::session_accept);
  CdrInputStream in(body, header.byte_order);
  const SessionAccept accept = SessionAccept::decode_body(in);
  ASSERT_TRUE(accept.ok);
  EXPECT_EQ(accept.highest_request_seq, 2u);

  const ReplyMessage r1 = recv_reply(socket);
  EXPECT_EQ(r1.request_id, 1u);
  EXPECT_EQ(r1.result_or_throw().as_i32(), 11);
  const ReplyMessage r2 = recv_reply(socket);
  EXPECT_EQ(r2.request_id, 2u);
  EXPECT_EQ(r2.result_or_throw().as_i32(), 22);
  EXPECT_EQ(slow->calls(), 2);
}

TEST(ReactorProtocolTest, UnknownMessageTypeStopsProcessingBufferedFrames) {
  // Regression: when the message_error answer to an unexpected frame type
  // had to be queued behind deferred reply writes, the reactor kept parsing
  // and dispatched valid requests buffered after the bad frame.  The legacy
  // loop stops processing input after a bad frame; the reactor must match.
  auto server = ORB::init(
      {.endpoint_name = "reactor-badframe", .enable_tcp = true, .io_threads = 1});
  auto servant = std::make_shared<CalcServant>();
  const ObjectRef target = server->activate(servant);

  constexpr int kEchoes = 64;
  const std::string payload(256 * 1024, 'x');
  Socket socket = Socket::connect("127.0.0.1", server->tcp_port());
  for (int i = 0; i < kEchoes; ++i) {
    RequestMessage req;
    req.request_id = static_cast<std::uint64_t>(i);
    req.object_key = target.ior().key;
    req.operation = "echo";
    req.arguments = {Value(payload)};
    socket.send_bytes(encode_request(req));
  }
  // Give the replies time to back up into the pending-write queue (~16MiB
  // vs ~hundreds of KiB of kernel buffering) so the error frame below is
  // queued, not flushed inline.
  std::this_thread::sleep_for(200ms);

  // A reply frame is valid wire but meaningless to a server; the request
  // buffered after it must never execute.
  CdrOutputStream empty;
  std::vector<std::byte> tail = encode_frame(MessageType::reply, empty);
  const std::vector<std::byte> after =
      encode_request(make_add_request(target.ior(), 999, 1, 2));
  tail.insert(tail.end(), after.begin(), after.end());
  socket.send_bytes(tail);

  for (int i = 0; i < kEchoes; ++i) {
    const ReplyMessage reply = recv_reply(socket, 30.0);
    EXPECT_EQ(reply.request_id, static_cast<std::uint64_t>(i));
  }
  MessageHeader header;
  std::vector<std::byte> body;
  ASSERT_TRUE(socket.recv_frame(header, body, nullptr, 10.0));
  EXPECT_EQ(header.type, MessageType::message_error);
  EXPECT_FALSE(socket.recv_frame(header, body, nullptr, 10.0))
      << "connection must close after message_error";
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(servant->calls(), kEchoes)
      << "request buffered after the bad frame was dispatched";
}

TEST(ReactorIdleHarvestTest, IdleConnectionsAreClosedAfterTheTimeout) {
  auto server = ORB::init({.endpoint_name = "reactor-idle",
                           .enable_tcp = true,
                           .io_threads = 1,
                           .server_idle_timeout_s = 0.1});
  const ObjectRef target = server->activate(std::make_shared<CalcServant>());

  const std::uint64_t harvested_before =
      counter_value("transport.tcp.reactor.idle_harvested_total");
  Socket socket = Socket::connect("127.0.0.1", server->tcp_port());
  socket.send_bytes(encode_request(make_add_request(target.ior(), 1, 2, 2)));
  EXPECT_EQ(recv_reply(socket).result_or_throw().as_i32(), 4);

  // Now go quiet: the deadline wheel must close the connection from the
  // server side (recv sees EOF, not a timeout).
  MessageHeader header;
  std::vector<std::byte> body;
  EXPECT_FALSE(socket.recv_frame(header, body, nullptr, 5.0));
  EXPECT_GT(counter_value("transport.tcp.reactor.idle_harvested_total"),
            harvested_before);
}

TEST(ReactorSessionTest, SessionsResumeOntoReactorCarrier) {
  // Sessions over the reactor: handshake, per-request seq/ack and a reply
  // delivered after the carrier switches (the session's weak carrier must
  // route completions to the live ReactorConn).
  auto server = ORB::init({.endpoint_name = "reactor-sess",
                           .enable_tcp = true,
                           .io_threads = 2});
  const ObjectRef target = server->activate(std::make_shared<CalcServant>());

  TcpClientTransport transport(TcpClientOptions{.enable_sessions = true,
                                                .resume_attempts = 3,
                                                .resume_backoff_s = 0.02});
  const IOR ior = target.ior();
  for (std::uint64_t i = 1; i <= 32; ++i) {
    const ReplyMessage reply =
        transport.invoke(ior, make_add_request(ior, i, static_cast<int>(i), 1));
    EXPECT_EQ(reply.result_or_throw().as_i32(), static_cast<int>(i) + 1);
  }
}

TEST(ReactorLegacyModeTest, ThreadPerConnectionPathStillServes) {
  // OrbConfig::reactor = false keeps the blocking receive loops as the bench
  // baseline; typed calls and sessions behave identically.
  auto server = ORB::init(
      {.endpoint_name = "legacy-server", .enable_tcp = true, .reactor = false});
  auto client = ORB::init({.endpoint_name = "legacy-client",
                           .enable_tcp = true,
                           .reactor = false});
  const ObjectRef target = server->activate(std::make_shared<CalcServant>());
  CalcStub calc(client->make_ref(target.ior()));
  EXPECT_EQ(calc.add(40, 2), 42);
  EXPECT_EQ(calc.echo("legacy"), "legacy");

  TcpClientTransport transport(TcpClientOptions{.enable_sessions = true});
  const IOR ior = target.ior();
  const ReplyMessage reply = transport.invoke(ior, make_add_request(ior, 1, 2, 3));
  EXPECT_EQ(reply.result_or_throw().as_i32(), 5);
}

TEST(ReactorLifecycleTest, PortReleasedAndRestartableInReactorMode) {
  std::uint16_t port = 0;
  {
    auto orb = ORB::init({.endpoint_name = "r1", .enable_tcp = true});
    port = orb->tcp_port();
    // Leave a live connection with a half-written frame behind at shutdown:
    // stop() must still drain cleanly.
    Socket socket = Socket::connect("127.0.0.1", port);
    const std::vector<std::byte> half = {std::byte{0x47}, std::byte{0x4f}};
    socket.send_bytes(half);
    std::this_thread::sleep_for(10ms);
    orb->shutdown();
  }
  auto orb2 = ORB::init(
      {.endpoint_name = "r2", .enable_tcp = true, .tcp_port = port});
  EXPECT_EQ(orb2->tcp_port(), port);
  const ObjectRef target = orb2->activate(std::make_shared<CalcServant>());
  Socket socket = Socket::connect("127.0.0.1", port);
  socket.send_bytes(encode_request(make_add_request(target.ior(), 1, 3, 4)));
  EXPECT_EQ(recv_reply(socket).result_or_throw().as_i32(), 7);
}

}  // namespace
}  // namespace corba
