// Unit tests for the tagged Value type: accessors, conversions, equality,
// CDR round trips and hostile-input defenses.
#include "orb/value.hpp"

#include <gtest/gtest.h>

namespace corba {
namespace {

Value roundtrip(const Value& v, ByteOrder order = native_byte_order()) {
  CdrOutputStream out(order);
  v.encode(out);
  CdrInputStream in(out.buffer(), order);
  Value decoded = Value::decode(in);
  EXPECT_TRUE(in.at_end());
  return decoded;
}

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_EQ(v.kind(), Value::Kind::nil);
}

TEST(Value, KindsMatchConstructors) {
  EXPECT_EQ(Value(true).kind(), Value::Kind::boolean);
  EXPECT_EQ(Value(std::int64_t{1}).kind(), Value::Kind::int64);
  EXPECT_EQ(Value(std::uint64_t{1}).kind(), Value::Kind::uint64);
  EXPECT_EQ(Value(1.0).kind(), Value::Kind::float64);
  EXPECT_EQ(Value("s").kind(), Value::Kind::string);
  EXPECT_EQ(Value(Blob{}).kind(), Value::Kind::blob);
  EXPECT_EQ(Value(std::vector<double>{1.0}).kind(), Value::Kind::f64_seq);
  EXPECT_EQ(Value(ValueSeq{}).kind(), Value::Kind::sequence);
}

TEST(Value, SignedUnsignedConversionWhenRepresentable) {
  EXPECT_EQ(Value(std::int64_t{42}).as_u64(), 42u);
  EXPECT_EQ(Value(std::uint64_t{42}).as_i64(), 42);
  EXPECT_THROW(Value(std::int64_t{-1}).as_u64(), BAD_PARAM);
  EXPECT_THROW(Value(std::uint64_t{1} << 63).as_i64(), BAD_PARAM);
}

TEST(Value, NarrowingTo32BitChecksRange) {
  EXPECT_EQ(Value(std::int64_t{-5}).as_i32(), -5);
  EXPECT_THROW(Value(std::int64_t{1} << 40).as_i32(), BAD_PARAM);
  EXPECT_EQ(Value(std::uint64_t{7}).as_u32(), 7u);
  EXPECT_THROW(Value(std::uint64_t{1} << 40).as_u32(), BAD_PARAM);
}

TEST(Value, IntegersWidenToDouble) {
  EXPECT_EQ(Value(std::int64_t{3}).as_f64(), 3.0);
  EXPECT_EQ(Value(std::uint64_t{4}).as_f64(), 4.0);
}

TEST(Value, KindMismatchThrowsBadParam) {
  EXPECT_THROW(Value("x").as_bool(), BAD_PARAM);
  EXPECT_THROW(Value(1.5).as_string(), BAD_PARAM);
  EXPECT_THROW(Value(true).as_blob(), BAD_PARAM);
  EXPECT_THROW(Value().as_sequence(), BAD_PARAM);
  EXPECT_THROW(Value("x").as_f64_seq(), BAD_PARAM);
}

TEST(Value, DeepEquality) {
  ValueSeq seq;
  seq.emplace_back(std::int64_t{1});
  seq.emplace_back("two");
  seq.emplace_back(ValueSeq{Value(3.0)});
  Value a{seq};
  Value b{seq};
  EXPECT_EQ(a, b);
  seq[1] = Value("three");
  EXPECT_FALSE(a == Value{seq});
}

class ValueRoundTripTest : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(ValueRoundTripTest, AllKinds) {
  const std::vector<Value> cases = {
      Value(),
      Value(true),
      Value(false),
      Value(std::int64_t{-7}),
      Value(std::uint64_t{1} << 63),
      Value(3.14159),
      Value(""),
      Value("hello world"),
      Value(Blob{std::byte{1}, std::byte{2}, std::byte{3}}),
      Value(std::vector<double>{1.0, -2.5, 1e300}),
      Value(ValueSeq{Value(std::int64_t{1}), Value("nested"),
                     Value(ValueSeq{Value(2.0), Value()})}),
  };
  for (const Value& v : cases) {
    EXPECT_EQ(roundtrip(v, GetParam()), v) << v.to_debug_string();
  }
}

INSTANTIATE_TEST_SUITE_P(BothOrders, ValueRoundTripTest,
                         ::testing::Values(ByteOrder::big_endian,
                                           ByteOrder::little_endian),
                         [](const auto& info) {
                           return info.param == ByteOrder::big_endian ? "big"
                                                                      : "little";
                         });

TEST(ValueDecode, UnknownTagThrowsMarshal) {
  CdrOutputStream out;
  out.write_octet(99);
  CdrInputStream in(out.buffer());
  EXPECT_THROW(Value::decode(in), MARSHAL);
}

TEST(ValueDecode, HostileSequenceCountRejected) {
  CdrOutputStream out;
  out.write_octet(static_cast<std::uint8_t>(Value::Kind::sequence));
  out.write_u32(0xffffffff);  // absurd element count
  CdrInputStream in(out.buffer());
  EXPECT_THROW(Value::decode(in), MARSHAL);
}

TEST(ValueDecode, DeeplyNestedSequenceRejected) {
  // 100 nested sequence headers (each claiming 1 element) exceeds the depth
  // limit and must be rejected rather than recursing unboundedly.
  CdrOutputStream out;
  for (int i = 0; i < 100; ++i) {
    out.write_octet(static_cast<std::uint8_t>(Value::Kind::sequence));
    out.write_u32(1);
  }
  out.write_octet(static_cast<std::uint8_t>(Value::Kind::nil));
  CdrInputStream in(out.buffer());
  EXPECT_THROW(Value::decode(in), MARSHAL);
}

TEST(Value, DebugStringIsInformative) {
  EXPECT_EQ(Value().to_debug_string(), "nil");
  EXPECT_EQ(Value(true).to_debug_string(), "true");
  EXPECT_EQ(Value("hi").to_debug_string(), "\"hi\"");
  EXPECT_EQ(Value(ValueSeq{Value(std::int64_t{1}), Value(std::int64_t{2})})
                .to_debug_string(),
            "(1, 2)");
}

TEST(Value, EncodedSizeEstimateTracksActualSize) {
  const std::vector<Value> cases = {
      Value(), Value(std::int64_t{1}), Value("hello"),
      Value(std::vector<double>(100, 1.0)),
      Value(ValueSeq{Value("a"), Value(2.0)})};
  for (const Value& v : cases) {
    CdrOutputStream out;
    v.encode(out);
    // The estimate ignores alignment padding; it must be within a small
    // constant of the actual encoding and never wildly off.
    EXPECT_GE(v.encoded_size_estimate() + 16, out.size());
    EXPECT_LE(v.encoded_size_estimate(), out.size() + 16);
  }
}

}  // namespace
}  // namespace corba
