// Shared hand-written test interface (stub + skeleton + servant), standing
// in for IDL-compiler output the way all interfaces in this project do.
//
//   interface Calc {
//     long add(in long a, in long b);
//     string echo(in string s);
//     void fail();                    // raises CalcError
//     long calls();                   // number of add/echo calls so far
//   };
#pragma once

#include <atomic>
#include <string>

#include "orb/exceptions.hpp"
#include "orb/object_adapter.hpp"
#include "orb/stub.hpp"

namespace corbaft_test {

inline constexpr std::string_view kCalcRepoId = "IDL:corbaft/tests/Calc:1.0";

struct CalcError : corba::UserException {
  explicit CalcError(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/tests/CalcError:1.0";
  }
};

inline corba::RegisterUserException<CalcError> register_calc_error;

/// Skeleton: decodes tagged arguments and dispatches to typed virtuals.
class CalcSkeleton : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override { return kCalcRepoId; }

  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "add") {
      check_arity(op, args, 2);
      return corba::Value(add(args[0].as_i32(), args[1].as_i32()));
    }
    if (op == "echo") {
      check_arity(op, args, 1);
      return corba::Value(echo(args[0].as_string()));
    }
    if (op == "fail") {
      check_arity(op, args, 0);
      fail();
      return corba::Value();
    }
    if (op == "calls") {
      check_arity(op, args, 0);
      return corba::Value(static_cast<std::int64_t>(calls()));
    }
    throw corba::BAD_OPERATION(std::string(op));
  }

  virtual std::int32_t add(std::int32_t a, std::int32_t b) = 0;
  virtual std::string echo(const std::string& s) = 0;
  virtual void fail() = 0;
  virtual std::int64_t calls() const = 0;
};

/// Default servant implementation.
class CalcServant : public CalcSkeleton {
 public:
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    ++calls_;
    return a + b;
  }
  std::string echo(const std::string& s) override {
    ++calls_;
    return s;
  }
  void fail() override { throw CalcError("requested failure"); }
  std::int64_t calls() const override { return calls_.load(); }

 private:
  std::atomic<std::int64_t> calls_{0};
};

/// Stub: typed client-side wrapper.
class CalcStub : public corba::StubBase {
 public:
  CalcStub() = default;
  explicit CalcStub(corba::ObjectRef ref) : StubBase(std::move(ref)) {}

  std::int32_t add(std::int32_t a, std::int32_t b) const {
    return call("add", {corba::Value(a), corba::Value(b)}).as_i32();
  }
  std::string echo(const std::string& s) const {
    return call("echo", {corba::Value(s)}).as_string();
  }
  void fail() const { call("fail", {}); }
  std::int64_t calls() const { return call("calls", {}).as_i64(); }
};

}  // namespace corbaft_test
