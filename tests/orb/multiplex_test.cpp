// Multiplexed-transport tests: one shared connection per target, pipelined
// concurrent calls demuxed by request id, batched failure of in-flight calls
// when a connection breaks, per-call timeouts that spare the connection, and
// the idle-TTL / socket-cap bounding of the connection table.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/orb.hpp"
#include "orb/tcp_transport.hpp"
#include "test_interfaces.hpp"

namespace corba {
namespace {

using namespace std::chrono_literals;
using corbaft_test::CalcServant;
using corbaft_test::CalcStub;

/// Servant whose add() blocks for `delay`, and which tracks how many add()
/// calls overlap (to prove — or disprove — concurrent execution).
class SlowServant : public corbaft_test::CalcSkeleton {
 public:
  explicit SlowServant(std::chrono::milliseconds delay) : delay_(delay) {}

  std::int32_t add(std::int32_t a, std::int32_t b) override {
    const int now = concurrent_.fetch_add(1) + 1;
    int expected = max_concurrent_.load();
    while (now > expected &&
           !max_concurrent_.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(delay_);
    concurrent_.fetch_sub(1);
    ++calls_;
    return a + b;
  }
  std::string echo(const std::string& s) override { return s; }
  void fail() override {}
  std::int64_t calls() const override { return calls_.load(); }
  int max_concurrent() const { return max_concurrent_.load(); }

 private:
  std::chrono::milliseconds delay_;
  std::atomic<int> concurrent_{0};
  std::atomic<int> max_concurrent_{0};
  std::atomic<std::int64_t> calls_{0};
};

RequestMessage make_request(const IOR& target, std::uint64_t id,
                            std::int32_t a, std::int32_t b) {
  RequestMessage req;
  req.request_id = id;
  req.object_key = target.key;
  req.operation = "add";
  req.arguments = {Value(a), Value(b)};
  return req;
}

class MultiplexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = ORB::init({.endpoint_name = "mux-server", .enable_tcp = true});
    target_ = server_->activate(std::make_shared<CalcServant>());
  }

  std::shared_ptr<ORB> server_;
  ObjectRef target_;
};

TEST_F(MultiplexTest, ConcurrentCallsShareOneConnection) {
  TcpClientTransport transport;
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> next_id{1};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const std::uint64_t id = next_id.fetch_add(1);
        const ReplyMessage reply = transport.invoke(
            target_.ior(), make_request(target_.ior(), id, int(id), 1));
        if (reply.request_id != id ||
            reply.result_or_throw().as_i32() != int(id) + 1)
          failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(transport.connection_count(), 1u);
}

TEST_F(MultiplexTest, FastCallOvertakesSlowCallOnSameConnection) {
  // A slow method on one object must not block a fast call to another
  // pipelined behind it on the same connection (no head-of-line blocking).
  auto slow = std::make_shared<SlowServant>(400ms);
  const ObjectRef slow_ref = server_->activate(slow);
  TcpClientTransport transport;

  auto pending =
      transport.send(slow_ref.ior(), make_request(slow_ref.ior(), 1, 1, 2));
  const auto start = std::chrono::steady_clock::now();
  const ReplyMessage fast = transport.invoke(
      target_.ior(), make_request(target_.ior(), 2, 20, 22));
  const auto fast_elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(fast.result_or_throw().as_i32(), 42);
  EXPECT_LT(fast_elapsed, 300ms) << "fast call waited behind the slow one";
  EXPECT_EQ(transport.connection_count(), 1u);
  EXPECT_EQ(pending->get().result_or_throw().as_i32(), 3);
}

TEST_F(MultiplexTest, SameObjectExecutesSerially) {
  // FIFO-per-key on the server: pipelined calls to ONE object never overlap.
  auto slow = std::make_shared<SlowServant>(5ms);
  const ObjectRef ref = server_->activate(slow);
  TcpClientTransport transport;
  std::vector<std::unique_ptr<PendingReply>> pending;
  for (std::uint64_t i = 0; i < 16; ++i)
    pending.push_back(transport.send(ref.ior(), make_request(ref.ior(), i + 1,
                                                             int(i), 0)));
  for (auto& p : pending) (void)p->get();
  EXPECT_EQ(slow->calls(), 16);
  EXPECT_EQ(slow->max_concurrent(), 1);
}

TEST_F(MultiplexTest, DeferredRepliesDemuxedByRequestId) {
  TcpClientTransport transport;
  constexpr std::uint64_t kCalls = 32;
  std::vector<std::unique_ptr<PendingReply>> pending;
  for (std::uint64_t i = 0; i < kCalls; ++i)
    pending.push_back(transport.send(
        target_.ior(), make_request(target_.ior(), 1000 + i, int(i), 7)));
  // Complete in reverse order: each waiter must still get ITS reply.
  for (std::uint64_t i = kCalls; i-- > 0;) {
    const ReplyMessage reply = pending[i]->get();
    EXPECT_EQ(reply.request_id, 1000 + i);
    EXPECT_EQ(reply.result_or_throw().as_i32(), int(i) + 7);
  }
  EXPECT_EQ(transport.connection_count(), 1u);
}

TEST_F(MultiplexTest, TimeoutAbandonsOneCallButSparesConnection) {
  auto slow = std::make_shared<SlowServant>(600ms);
  const ObjectRef slow_ref = server_->activate(slow);
  TcpClientTransport transport(TcpClientOptions{.request_timeout_s = 0.15});

  auto pending =
      transport.send(slow_ref.ior(), make_request(slow_ref.ior(), 1, 1, 1));
  EXPECT_THROW(pending->get(), TIMEOUT);
  // The connection survives the abandoned call: the next request reuses it
  // and its (late) sibling reply is discarded, not mispaired.
  const ReplyMessage reply = transport.invoke(
      target_.ior(), make_request(target_.ior(), 2, 2, 2));
  EXPECT_EQ(reply.request_id, 2u);
  EXPECT_EQ(reply.result_or_throw().as_i32(), 4);
  EXPECT_EQ(transport.connection_count(), 1u);
  std::this_thread::sleep_for(700ms);  // let the late reply drain
  const ReplyMessage after = transport.invoke(
      target_.ior(), make_request(target_.ior(), 3, 3, 3));
  EXPECT_EQ(after.result_or_throw().as_i32(), 6);
}

TEST_F(MultiplexTest, AbruptCloseFailsAllInFlightCalls) {
  // A bare-bones server that accepts one connection, reads forever and then
  // slams the door: every pipelined in-flight call must fail as a batch.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::atomic<bool> slam{false};
  std::thread fake_server([&] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    while (!slam.load()) std::this_thread::sleep_for(1ms);
    if (fd >= 0) ::close(fd);
  });

  IOR bogus = target_.ior();
  bogus.port = port;
  TcpClientTransport transport;
  std::vector<std::unique_ptr<PendingReply>> pending;
  for (std::uint64_t i = 0; i < 4; ++i)
    pending.push_back(transport.send(bogus, make_request(bogus, i + 1, 1, 1)));
  slam.store(true);
  int comm_failures = 0;
  for (auto& p : pending) {
    try {
      (void)p->get();
    } catch (const COMM_FAILURE& e) {
      EXPECT_EQ(e.completed(), CompletionStatus::completed_maybe);
      ++comm_failures;
    }
  }
  EXPECT_EQ(comm_failures, 4);
  fake_server.join();
  ::close(listen_fd);

  // The broken connection is health-checked out of the table: the transport
  // keeps working against the real server.
  const ReplyMessage reply = transport.invoke(
      target_.ior(), make_request(target_.ior(), 99, 40, 2));
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
}

TEST_F(MultiplexTest, IdleConnectionsAreClosedAfterTtl) {
  obs::Counter& idle_closed = obs::MetricsRegistry::global().counter(
      "transport.tcp.idle_closed_total");
  const std::uint64_t before = idle_closed.value();
  TcpClientTransport transport(TcpClientOptions{.idle_ttl_s = 0.05});
  (void)transport.invoke(target_.ior(), make_request(target_.ior(), 1, 1, 1));
  EXPECT_EQ(transport.connection_count(), 1u);
  std::this_thread::sleep_for(120ms);
  // The sweep runs on the next send: the expired connection is replaced.
  (void)transport.invoke(target_.ior(), make_request(target_.ior(), 2, 1, 1));
  EXPECT_EQ(transport.connection_count(), 1u);
  EXPECT_EQ(idle_closed.value(), before + 1);
}

TEST_F(MultiplexTest, SocketCapEvictsIdleConnections) {
  auto server2 = ORB::init({.endpoint_name = "mux-s2", .enable_tcp = true});
  auto server3 = ORB::init({.endpoint_name = "mux-s3", .enable_tcp = true});
  const ObjectRef t2 = server2->activate(std::make_shared<CalcServant>());
  const ObjectRef t3 = server3->activate(std::make_shared<CalcServant>());

  TcpClientTransport transport(TcpClientOptions{.max_connections = 2});
  (void)transport.invoke(target_.ior(), make_request(target_.ior(), 1, 1, 1));
  (void)transport.invoke(t2.ior(), make_request(t2.ior(), 2, 2, 2));
  EXPECT_EQ(transport.connection_count(), 2u);
  (void)transport.invoke(t3.ior(), make_request(t3.ior(), 3, 3, 3));
  EXPECT_LE(transport.connection_count(), 2u);
  // The evicted target is still reachable — a new connection replaces it.
  const ReplyMessage reply = transport.invoke(
      target_.ior(), make_request(target_.ior(), 4, 20, 22));
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
}

TEST_F(MultiplexTest, SerializedModeStillWorks) {
  TcpClientTransport transport(TcpClientOptions{.multiplex = false});
  const ReplyMessage reply = transport.invoke(
      target_.ior(), make_request(target_.ior(), 1, 40, 2));
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
  auto pending =
      transport.send(target_.ior(), make_request(target_.ior(), 2, 1, 2));
  EXPECT_EQ(pending->get().result_or_throw().as_i32(), 3);
  EXPECT_EQ(transport.connection_count(), 0u);  // mux table unused
}

TEST_F(MultiplexTest, OrbStackPipelinesThroughSharedConnection) {
  // End-to-end through the ORB/DII stack: many client threads, one target
  // ORB — the process still holds a single multiplexed connection.
  auto client = ORB::init({.endpoint_name = "mux-client", .enable_tcp = true});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CalcStub calc(client->make_ref(target_.ior()));
      for (int i = 0; i < 25; ++i)
        if (calc.add(t, i) != t + i) failures.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace corba
