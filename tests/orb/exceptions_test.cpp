// Unit tests for the exception hierarchy: message formatting, completion
// statuses, the system-exception rethrow table, and hierarchy relations
// the fault-tolerance layer relies on.
#include "orb/exceptions.hpp"

#include <gtest/gtest.h>

namespace corba {
namespace {

TEST(Exceptions, CompletionStatusSpellings) {
  EXPECT_EQ(to_string(CompletionStatus::completed_yes), "COMPLETED_YES");
  EXPECT_EQ(to_string(CompletionStatus::completed_no), "COMPLETED_NO");
  EXPECT_EQ(to_string(CompletionStatus::completed_maybe), "COMPLETED_MAYBE");
}

TEST(Exceptions, WhatMessageCarriesAllFields) {
  const COMM_FAILURE e("link down", minor_code::connection_lost,
                       CompletionStatus::completed_maybe);
  const std::string what = e.what();
  EXPECT_NE(what.find("COMM_FAILURE"), std::string::npos);
  EXPECT_NE(what.find("link down"), std::string::npos);
  EXPECT_NE(what.find("minor=2"), std::string::npos);
  EXPECT_NE(what.find("COMPLETED_MAYBE"), std::string::npos);
}

TEST(Exceptions, DefaultsAreMaybeCompleted) {
  const TRANSIENT e;
  EXPECT_EQ(e.minor(), minor_code::unspecified);
  EXPECT_EQ(e.completed(), CompletionStatus::completed_maybe);
  EXPECT_TRUE(e.detail().empty());
}

TEST(Exceptions, HierarchyRelations) {
  // The recovery code catches SystemException subtypes; user exceptions
  // must never be caught by those handlers.
  EXPECT_TRUE((std::is_base_of_v<SystemException, COMM_FAILURE>));
  EXPECT_TRUE((std::is_base_of_v<SystemException, TIMEOUT>));
  EXPECT_TRUE((std::is_base_of_v<Exception, SystemException>));
  EXPECT_TRUE((std::is_base_of_v<Exception, UserException>));
  EXPECT_FALSE((std::is_base_of_v<SystemException, UserException>));
}

TEST(Exceptions, RaiseTableCoversEveryDefinedException) {
  const std::vector<std::string> ids = {
      std::string(COMM_FAILURE::static_repo_id()),
      std::string(TRANSIENT::static_repo_id()),
      std::string(TIMEOUT::static_repo_id()),
      std::string(OBJECT_NOT_EXIST::static_repo_id()),
      std::string(BAD_PARAM::static_repo_id()),
      std::string(BAD_OPERATION::static_repo_id()),
      std::string(NO_IMPLEMENT::static_repo_id()),
      std::string(MARSHAL::static_repo_id()),
      std::string(INV_OBJREF::static_repo_id()),
      std::string(BAD_INV_ORDER::static_repo_id()),
  };
  for (const std::string& id : ids) {
    try {
      raise_system_exception(id, "detail", 7, CompletionStatus::completed_no);
      FAIL() << id;
    } catch (const SystemException& e) {
      EXPECT_EQ(e.repo_id(), id);
      EXPECT_EQ(e.minor(), 7u);
      EXPECT_EQ(e.completed(), CompletionStatus::completed_no);
    }
  }
}

TEST(Exceptions, UnknownSystemExceptionIdFallsBackToInternal) {
  EXPECT_THROW(raise_system_exception("IDL:omg.org/CORBA/MYSTERY:1.0", "x", 0,
                                      CompletionStatus::completed_no),
               INTERNAL);
}

TEST(Exceptions, RethrownTypeIsConcrete) {
  try {
    raise_system_exception(std::string(TIMEOUT::static_repo_id()), "late", 0,
                           CompletionStatus::completed_maybe);
    FAIL();
  } catch (const TIMEOUT&) {
    // concrete type preserved across the wire
  } catch (const SystemException&) {
    FAIL() << "TIMEOUT decayed to a generic SystemException";
  }
}

}  // namespace
}  // namespace corba
