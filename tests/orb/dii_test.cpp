// Unit tests for the Dynamic Invocation Interface: synchronous and
// deferred-synchronous request objects, call-order enforcement, and the
// reset/retarget hooks used by fault-tolerant request proxies.
#include "orb/dii.hpp"

#include <gtest/gtest.h>

#include "orb/exceptions.hpp"
#include "test_interfaces.hpp"

namespace corba {
namespace {

using corbaft_test::CalcServant;

class DiiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<InProcessNetwork>();
    server_ = ORB::init({.endpoint_name = "server", .network = network_});
    client_ = ORB::init({.endpoint_name = "client", .network = network_});
    target_ = client_->make_ref(
        server_->activate(std::make_shared<CalcServant>()).ior());
  }

  std::shared_ptr<InProcessNetwork> network_;
  std::shared_ptr<ORB> server_;
  std::shared_ptr<ORB> client_;
  ObjectRef target_;
};

TEST_F(DiiTest, SynchronousInvoke) {
  Request req(target_, "add");
  req.add_argument(Value(19)).add_argument(Value(23));
  req.invoke();
  EXPECT_TRUE(req.completed());
  EXPECT_EQ(req.return_value().as_i32(), 42);
}

TEST_F(DiiTest, DeferredSendThenGetResponse) {
  Request req(target_, "echo");
  req.add_argument(Value("deferred"));
  req.send_deferred();
  EXPECT_TRUE(req.poll_response());  // in-process replies complete eagerly
  req.get_response();
  EXPECT_EQ(req.return_value().as_string(), "deferred");
}

TEST_F(DiiTest, GetResponseIsIdempotentAfterCompletion) {
  Request req(target_, "add");
  req.add_argument(Value(1)).add_argument(Value(2));
  req.invoke();
  req.get_response();
  EXPECT_EQ(req.return_value().as_i32(), 3);
}

TEST_F(DiiTest, CallOrderIsEnforced) {
  Request req(target_, "add");
  EXPECT_THROW(req.get_response(), BAD_INV_ORDER);
  EXPECT_THROW(req.poll_response(), BAD_INV_ORDER);
  EXPECT_THROW(req.return_value(), BAD_INV_ORDER);
  req.add_argument(Value(1)).add_argument(Value(2));
  req.send_deferred();
  EXPECT_THROW(req.send_deferred(), BAD_INV_ORDER);
  EXPECT_THROW(req.add_argument(Value(3)), BAD_INV_ORDER);
  EXPECT_THROW(req.set_target(target_), BAD_INV_ORDER);
  req.get_response();
  EXPECT_EQ(req.return_value().as_i32(), 3);
}

TEST_F(DiiTest, ServerExceptionSurfacesInGetResponse) {
  Request req(target_, "fail");
  req.send_deferred();
  EXPECT_THROW(req.get_response(), corbaft_test::CalcError);
  EXPECT_FALSE(req.completed());
}

TEST_F(DiiTest, TransportFailureSurfacesInGetResponse) {
  Request req(target_, "add");
  req.add_argument(Value(1)).add_argument(Value(2));
  server_->shutdown();
  req.send_deferred();
  EXPECT_THROW(req.get_response(), COMM_FAILURE);
}

TEST_F(DiiTest, ResetAllowsReissueAfterFailure) {
  // This is the exact sequence a fault-tolerant request proxy performs:
  // send fails, the request is reset, retargeted at a recovered service and
  // re-sent with the same arguments.
  Request req(target_, "add");
  req.add_argument(Value(20)).add_argument(Value(22));
  server_->shutdown();
  req.send_deferred();
  EXPECT_THROW(req.get_response(), COMM_FAILURE);

  auto replacement = ORB::init({.endpoint_name = "server2", .network = network_});
  const ObjectRef new_target = client_->make_ref(
      replacement->activate(std::make_shared<CalcServant>()).ior());
  req.reset();
  req.set_target(new_target);
  req.send_deferred();
  req.get_response();
  EXPECT_EQ(req.return_value().as_i32(), 42);
}

TEST_F(DiiTest, ParallelDeferredRequests) {
  // Fan out several deferred requests before collecting any response —
  // the manager/worker pattern from the paper.
  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) {
    requests.emplace_back(target_, "add");
    requests.back().add_argument(Value(i)).add_argument(Value(100));
    requests.back().send_deferred();
  }
  for (int i = 0; i < 8; ++i) {
    requests[static_cast<std::size_t>(i)].get_response();
    EXPECT_EQ(requests[static_cast<std::size_t>(i)].return_value().as_i32(),
              100 + i);
  }
}

}  // namespace
}  // namespace corba
