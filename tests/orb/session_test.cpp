// Resumable-session tests: wire format round trips (and bytes-identical
// encoding with sessions off), RetransmitBuffer semantics (cumulative ack,
// replay ordering, overflow eviction), and the end-to-end resume protocol
// driven through a byte-level TCP relay that can sever, withhold and
// re-target traffic — reconnect-with-replay completes in-flight calls
// exactly-once, a stale session id falls back to the batched failure path,
// and retransmit-buffer overflow fails the oldest call.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/message.hpp"
#include "orb/orb.hpp"
#include "orb/session.hpp"
#include "orb/tcp_transport.hpp"
#include "test_interfaces.hpp"

namespace corba {
namespace {

using namespace std::chrono_literals;
using corbaft_test::CalcServant;

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

// --- wire format -----------------------------------------------------------

TEST(SessionWireTest, HelloRoundTrip) {
  SessionHello hello{.session_id = 42, .highest_reply_seq = 17};
  CdrOutputStream out;
  hello.encode_body(out);
  CdrInputStream in(out.buffer());
  const SessionHello decoded = SessionHello::decode_body(in);
  EXPECT_EQ(decoded.session_id, 42u);
  EXPECT_EQ(decoded.highest_reply_seq, 17u);
}

TEST(SessionWireTest, AcceptRoundTrip) {
  SessionAccept accept{.ok = true, .session_id = 7, .highest_request_seq = 9};
  CdrOutputStream out;
  accept.encode_body(out);
  CdrInputStream in(out.buffer());
  const SessionAccept decoded = SessionAccept::decode_body(in);
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.session_id, 7u);
  EXPECT_EQ(decoded.highest_request_seq, 9u);

  SessionAccept reject{.ok = false};
  CdrOutputStream out2;
  reject.encode_body(out2);
  CdrInputStream in2(out2.buffer());
  EXPECT_FALSE(SessionAccept::decode_body(in2).ok);
}

TEST(SessionWireTest, RequestSessionContextRoundTrip) {
  RequestMessage req;
  req.request_id = 5;
  req.object_key = ObjectKey::from_string("key");
  req.operation = "add";
  req.arguments = {Value(std::int32_t(1)), Value(std::int32_t(2))};
  attach_session_context(req, SessionContext{.seq = 11, .ack = 4});

  CdrOutputStream out;
  req.encode_body(out);
  CdrInputStream in(out.buffer());
  const RequestMessage decoded = RequestMessage::decode_body(in);
  const auto context = extract_session_context(decoded);
  ASSERT_TRUE(context.has_value());
  EXPECT_EQ(context->seq, 11u);
  EXPECT_EQ(context->ack, 4u);

  // Re-attaching replaces the slot instead of accumulating contexts.
  RequestMessage again = decoded;
  attach_session_context(again, SessionContext{.seq = 12, .ack = 11});
  EXPECT_EQ(again.service_contexts.size(), decoded.service_contexts.size());
  EXPECT_EQ(extract_session_context(again)->seq, 12u);
}

TEST(SessionWireTest, RequestWithoutSessionHasNoContext) {
  RequestMessage req;
  req.request_id = 1;
  req.object_key = ObjectKey::from_string("key");
  req.operation = "add";
  CdrOutputStream out;
  req.encode_body(out);
  CdrInputStream in(out.buffer());
  EXPECT_FALSE(extract_session_context(RequestMessage::decode_body(in))
                   .has_value());
}

TEST(SessionWireTest, ReplyTailFieldsRoundTripAndStayOffTheWireWhenUnused) {
  ReplyMessage plain = ReplyMessage::make_result(3, Value(std::int32_t(9)));
  CdrOutputStream plain_out;
  plain.encode_body(plain_out);

  ReplyMessage stamped = ReplyMessage::make_result(3, Value(std::int32_t(9)));
  stamped.has_session = true;
  stamped.session_seq = 21;
  stamped.session_ack = 20;
  CdrOutputStream stamped_out;
  stamped.encode_body(stamped_out);

  // Sessions off: byte-identical to the historical encoding (the tail is
  // simply absent, not zero-filled).
  EXPECT_LT(plain_out.buffer().size(), stamped_out.buffer().size());
  CdrInputStream plain_in(plain_out.buffer());
  const ReplyMessage plain_decoded = ReplyMessage::decode_body(plain_in);
  EXPECT_FALSE(plain_decoded.has_session);

  CdrInputStream stamped_in(stamped_out.buffer());
  const ReplyMessage decoded = ReplyMessage::decode_body(stamped_in);
  ASSERT_TRUE(decoded.has_session);
  EXPECT_EQ(decoded.session_seq, 21u);
  EXPECT_EQ(decoded.session_ack, 20u);
  EXPECT_EQ(decoded.result_or_throw().as_i32(), 9);
}

// --- retransmit buffer -----------------------------------------------------

std::vector<std::byte> frame_bytes(std::size_t n, std::byte fill) {
  return std::vector<std::byte>(n, fill);
}

TEST(RetransmitBufferTest, CumulativeAckEvictsPrefix) {
  RetransmitBuffer buffer(8);
  for (std::uint64_t seq = 1; seq <= 5; ++seq)
    buffer.append(seq, 100 + seq, frame_bytes(10, std::byte{0x42}));
  EXPECT_EQ(buffer.size(), 5u);
  EXPECT_EQ(buffer.bytes(), 50u);
  EXPECT_EQ(buffer.ack(3), 3u);
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.bytes(), 20u);
  EXPECT_EQ(buffer.ack(3), 0u);  // acks are idempotent
  EXPECT_EQ(buffer.ack(100), 2u);
  EXPECT_TRUE(buffer.empty());
}

TEST(RetransmitBufferTest, AfterReturnsOrderedUnackedTail) {
  RetransmitBuffer buffer(8);
  for (std::uint64_t seq = 1; seq <= 6; ++seq)
    buffer.append(seq, seq, frame_bytes(4, std::byte(seq)));
  const auto tail = buffer.after(2);
  ASSERT_EQ(tail.size(), 4u);
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_EQ(tail[i]->seq, 3 + i);
  EXPECT_TRUE(buffer.after(6).empty());
}

TEST(RetransmitBufferTest, OverflowEvictsOldest) {
  RetransmitBuffer buffer(2);
  buffer.append(1, 11, frame_bytes(4, std::byte{1}));
  buffer.append(2, 22, frame_bytes(4, std::byte{2}));
  EXPECT_TRUE(buffer.full());
  const auto victim = buffer.evict_oldest();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->seq, 1u);
  EXPECT_EQ(victim->request_id, 11u);
  EXPECT_FALSE(buffer.full());
}

TEST(RetransmitBufferTest, ReplayOrderingProperty) {
  // Property: against a reference model under random appends and cumulative
  // acks, after(k) always returns exactly the unacked frames with seq > k,
  // oldest first.
  std::mt19937_64 rng(1234);
  for (int round = 0; round < 50; ++round) {
    RetransmitBuffer buffer(256);
    std::deque<std::uint64_t> model;
    std::uint64_t next_seq = 1;
    std::uint64_t acked = 0;
    for (int step = 0; step < 100; ++step) {
      if (model.empty() || rng() % 2 == 0) {
        buffer.append(next_seq, next_seq, frame_bytes(1 + rng() % 8,
                                                      std::byte{0x5a}));
        model.push_back(next_seq);
        ++next_seq;
      } else {
        acked = model[rng() % model.size()];
        buffer.ack(acked);
        while (!model.empty() && model.front() <= acked) model.pop_front();
      }
      const std::uint64_t peer =
          acked + (rng() % 3 == 0 ? 0 : rng() % (next_seq - acked));
      const auto tail = buffer.after(peer);
      std::vector<std::uint64_t> expected;
      for (std::uint64_t seq : model)
        if (seq > peer) expected.push_back(seq);
      ASSERT_EQ(tail.size(), expected.size());
      for (std::size_t i = 0; i < tail.size(); ++i)
        ASSERT_EQ(tail[i]->seq, expected[i]);
    }
  }
}

TEST(SessionTableTest, CreateFindAndStaleRejection) {
  SessionTable table(/*reply_limit=*/4, /*max_sessions=*/2);
  auto a = table.create();
  auto b = table.create();
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(table.find(a->id), a);
  EXPECT_EQ(table.find(a->id + b->id + 100), nullptr);  // unknown id
  // Cap eviction drops the oldest session.
  auto c = table.create();
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(a->id), nullptr);
  EXPECT_EQ(table.find(c->id), c);
}

// --- end-to-end over a byte-level relay -------------------------------------

int must_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  return fd;
}

/// TCP relay between the client transport and a real server endpoint.  The
/// tests drive three controls: sever() (close the current connection pair —
/// a connection reset that kills no host), hold() (silently discard
/// client→server bytes, so a sent frame is "lost" and must be replayed) and
/// set_target() (re-point at a different server — the stale-session case).
class Relay {
 public:
  explicit Relay(std::uint16_t target_port) : target_port_(target_port) {
    listen_fd_ = must_socket();
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)), 0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len), 0);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~Relay() { stop(); }

  std::uint16_t port() const noexcept { return port_; }
  void set_target(std::uint16_t port) noexcept { target_port_.store(port); }
  void hold(bool on) noexcept { hold_.store(on); }

  /// Severs every live connection pair (both directions).
  void sever() {
    std::lock_guard lock(mu_);
    for (const auto& [client_fd, server_fd] : pairs_) {
      ::shutdown(client_fd, SHUT_RDWR);
      ::shutdown(server_fd, SHUT_RDWR);
    }
  }

  void stop() {
    if (stopping_.exchange(true)) return;
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (acceptor_.joinable()) acceptor_.join();
    sever();
    std::vector<std::thread> pumps;
    {
      std::lock_guard lock(mu_);
      pumps.swap(pumps_);
    }
    for (std::thread& pump : pumps) pump.join();
    std::lock_guard lock(mu_);
    for (const auto& [client_fd, server_fd] : pairs_) {
      ::close(client_fd);
      ::close(server_fd);
    }
    pairs_.clear();
  }

 private:
  void accept_loop() {
    for (;;) {
      const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
      if (client_fd < 0) {
        if (stopping_.load()) return;
        continue;
      }
      const int server_fd = must_socket();
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(target_port_.load());
      if (::connect(server_fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::close(server_fd);
        ::close(client_fd);
        continue;
      }
      std::lock_guard lock(mu_);
      if (stopping_.load()) {
        ::close(server_fd);
        ::close(client_fd);
        return;
      }
      pairs_.push_back({client_fd, server_fd});
      pumps_.emplace_back([this, client_fd, server_fd] {
        pump(client_fd, server_fd, /*client_to_server=*/true);
      });
      pumps_.emplace_back([this, client_fd, server_fd] {
        pump(server_fd, client_fd, /*client_to_server=*/false);
      });
    }
  }

  void pump(int from, int to, bool client_to_server) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(from, buf, sizeof(buf), 0);
      if (n <= 0) break;
      if (client_to_server && hold_.load()) continue;  // black-hole the bytes
      ssize_t sent = 0;
      bool failed = false;
      while (sent < n) {
        const ssize_t w = ::send(to, buf + sent, n - sent, MSG_NOSIGNAL);
        if (w <= 0) {
          failed = true;
          break;
        }
        sent += w;
      }
      if (failed) break;
    }
    ::shutdown(from, SHUT_RDWR);
    ::shutdown(to, SHUT_RDWR);
  }

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<std::uint16_t> target_port_;
  std::atomic<bool> hold_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<std::pair<int, int>> pairs_;
  std::vector<std::thread> pumps_;
};

RequestMessage make_request(const IOR& target, std::uint64_t id, std::int32_t a,
                            std::int32_t b) {
  RequestMessage req;
  req.request_id = id;
  req.object_key = target.key;
  req.operation = "add";
  req.arguments = {Value(a), Value(b)};
  return req;
}

/// add() blocks for `delay` (counts calls — the exactly-once witness).
class SlowServant : public corbaft_test::CalcSkeleton {
 public:
  explicit SlowServant(std::chrono::milliseconds delay) : delay_(delay) {}
  std::int32_t add(std::int32_t a, std::int32_t b) override {
    std::this_thread::sleep_for(delay_);
    ++calls_;
    return a + b;
  }
  std::string echo(const std::string& s) override { return s; }
  void fail() override {}
  std::int64_t calls() const override { return calls_.load(); }

 private:
  std::chrono::milliseconds delay_;
  std::atomic<std::int64_t> calls_{0};
};

class SessionResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = ORB::init({.endpoint_name = "sess-server", .enable_tcp = true});
    target_ = server_->activate(std::make_shared<CalcServant>());
    relay_ = std::make_unique<Relay>(target_.ior().port);
  }

  IOR relay_ior(const ObjectRef& ref) const {
    IOR ior = ref.ior();
    ior.port = relay_->port();
    return ior;
  }

  static TcpClientOptions session_options() {
    return TcpClientOptions{.enable_sessions = true,
                            .resume_attempts = 5,
                            .resume_backoff_s = 0.02,
                            .connect_timeout_s = 5.0};
  }

  std::shared_ptr<ORB> server_;
  ObjectRef target_;
  std::unique_ptr<Relay> relay_;
};

TEST_F(SessionResumeTest, HandshakeEstablishesSession) {
  TcpClientTransport transport(session_options());
  const IOR ior = relay_ior(target_);
  const ReplyMessage reply = transport.invoke(ior, make_request(ior, 1, 20, 22));
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
}

TEST_F(SessionResumeTest, LostRequestFrameIsReplayedExactlyOnce) {
  auto slow = std::make_shared<SlowServant>(10ms);
  const ObjectRef slow_ref = server_->activate(slow);
  const IOR ior = relay_ior(slow_ref);

  TcpClientTransport transport(session_options());
  // Warm the connection (session handshake happens here, while the relay
  // still forwards everything).
  const IOR calc_ior = relay_ior(target_);
  (void)transport.invoke(calc_ior, make_request(calc_ior, 1, 1, 1));

  const std::uint64_t resumes_before =
      counter_value("transport.session.resumes_total");
  const std::uint64_t retransmits_before =
      counter_value("transport.session.retransmitted_frames_total");

  // Black-hole the request frame, then reset the connection: the only way
  // this call can complete is a session resume that retransmits the frame.
  relay_->hold(true);
  auto pending = transport.send(ior, make_request(ior, 2, 40, 2));
  std::this_thread::sleep_for(50ms);  // frame swallowed by the relay
  relay_->sever();
  relay_->hold(false);

  const ReplyMessage reply = pending->get();
  EXPECT_EQ(reply.request_id, 2u);
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
  EXPECT_EQ(slow->calls(), 1) << "replay must execute the call exactly once";
  EXPECT_GE(counter_value("transport.session.resumes_total"),
            resumes_before + 1);
  EXPECT_GE(counter_value("transport.session.retransmitted_frames_total"),
            retransmits_before + 1);
}

TEST_F(SessionResumeTest, MidCallResetResumesWithoutFailingTheCall) {
  auto slow = std::make_shared<SlowServant>(400ms);
  const ObjectRef slow_ref = server_->activate(slow);
  const IOR ior = relay_ior(slow_ref);

  TcpClientTransport transport(session_options());
  const std::uint64_t resumes_before =
      counter_value("transport.session.resumes_total");

  auto pending = transport.send(ior, make_request(ior, 1, 20, 22));
  std::this_thread::sleep_for(100ms);  // request delivered, servant running
  relay_->sever();

  // The reply direction now needs the resumed connection (routed to the new
  // carrier, or replayed from the server's reply buffer on hello).
  const ReplyMessage reply = pending->get();
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
  EXPECT_EQ(slow->calls(), 1);
  EXPECT_GE(counter_value("transport.session.resumes_total"),
            resumes_before + 1);
}

TEST_F(SessionResumeTest, PipelinedSiblingsSurviveTheReset) {
  auto slow = std::make_shared<SlowServant>(150ms);
  const ObjectRef slow_ref = server_->activate(slow);
  const IOR ior = relay_ior(slow_ref);

  TcpClientTransport transport(session_options());
  std::vector<std::unique_ptr<PendingReply>> pending;
  for (std::uint64_t id = 1; id <= 4; ++id)
    pending.push_back(transport.send(ior, make_request(ior, id, int(id), 1)));
  std::this_thread::sleep_for(100ms);
  relay_->sever();
  for (std::uint64_t id = 1; id <= 4; ++id) {
    const ReplyMessage reply = pending[id - 1]->get();
    EXPECT_EQ(reply.request_id, id);
    EXPECT_EQ(reply.result_or_throw().as_i32(), int(id) + 1);
  }
  EXPECT_EQ(slow->calls(), 4) << "every pipelined call exactly once";
}

TEST_F(SessionResumeTest, StaleSessionFallsBackToBatchedFailure) {
  auto other_server =
      ORB::init({.endpoint_name = "sess-other", .enable_tcp = true});
  const ObjectRef other = other_server->activate(std::make_shared<CalcServant>());

  TcpClientTransport transport(session_options());
  const IOR ior = relay_ior(target_);
  (void)transport.invoke(ior, make_request(ior, 1, 1, 1));

  const std::uint64_t failures_before =
      counter_value("transport.session.resume_failures_total");

  // Lose the next frame, then re-point the relay at a server that has never
  // seen this session: the resume handshake must be rejected and the call
  // fail through the batched COMM_FAILURE path.
  relay_->hold(true);
  auto pending = transport.send(ior, make_request(ior, 2, 2, 2));
  std::this_thread::sleep_for(50ms);
  relay_->set_target(other.ior().port);
  relay_->sever();
  relay_->hold(false);

  try {
    (void)pending->get();
    FAIL() << "stale session must not resume";
  } catch (const COMM_FAILURE& error) {
    EXPECT_EQ(error.minor(), minor_code::session_resume_failed);
    EXPECT_EQ(error.completed(), CompletionStatus::completed_maybe);
  }
  EXPECT_GE(counter_value("transport.session.resume_failures_total"),
            failures_before + 1);

  // The transport itself recovers: re-point the relay at the real server
  // and the next call opens a fresh session.
  relay_->set_target(target_.ior().port);
  const ReplyMessage reply = transport.invoke(ior, make_request(ior, 3, 3, 3));
  EXPECT_EQ(reply.result_or_throw().as_i32(), 6);
}

TEST_F(SessionResumeTest, RetransmitOverflowFailsOldestCall) {
  auto slow = std::make_shared<SlowServant>(300ms);
  const ObjectRef slow_ref = server_->activate(slow);
  const IOR ior = relay_ior(slow_ref);

  TcpClientOptions options = session_options();
  options.session_retransmit_limit = 2;
  TcpClientTransport transport(options);
  const std::uint64_t overflow_before =
      counter_value("transport.session.overflow_failures_total");

  std::vector<std::unique_ptr<PendingReply>> pending;
  for (std::uint64_t id = 1; id <= 3; ++id)
    pending.push_back(transport.send(ior, make_request(ior, id, int(id), 0)));

  // The third send exceeded the hard cap: the oldest buffered call fails.
  try {
    (void)pending[0]->get();
    FAIL() << "oldest call must fail on retransmit-buffer overflow";
  } catch (const COMM_FAILURE& error) {
    EXPECT_EQ(error.minor(), minor_code::session_overflow);
    EXPECT_EQ(error.completed(), CompletionStatus::completed_maybe);
  }
  EXPECT_EQ(pending[1]->get().result_or_throw().as_i32(), 2);
  EXPECT_EQ(pending[2]->get().result_or_throw().as_i32(), 3);
  EXPECT_EQ(counter_value("transport.session.overflow_failures_total"),
            overflow_before + 1);
}

// --- satellite fixes ---------------------------------------------------------

TEST(ConnectDeadlineTest, NonBlockingConnectHonorsTimeout) {
  // A listener that never accepts, with a minimal backlog: once the accept
  // queue is full the kernel silently drops further SYNs
  // (tcp_abort_on_overflow defaults to 0), so the connect hangs in SYN
  // retransmission — exactly the black-holed-SYN case the deadline exists
  // for.  Without the deadline this would block for the kernel's
  // minutes-long default.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // Linux admits backlog+1 handshakes before the queue jams, so a few
  // filler connects (kept open) are enough to reach the dropping state.
  std::vector<Socket> filler;
  bool timed_out = false;
  for (int i = 0; i < 16 && !timed_out; ++i) {
    const auto start = std::chrono::steady_clock::now();
    try {
      filler.push_back(Socket::connect("127.0.0.1", port, /*timeout_s=*/0.3));
    } catch (const COMM_FAILURE&) {
      const auto took = std::chrono::steady_clock::now() - start;
      EXPECT_GE(took, 250ms);  // actually waited for the deadline...
      EXPECT_LT(took, 5s);     // ...and no longer than that
      timed_out = true;
    }
  }
  EXPECT_TRUE(timed_out);
  ::close(listen_fd);
}

TEST(ConnectDeadlineTest, ConnectWithTimeoutStillConnects) {
  auto server = ORB::init({.endpoint_name = "sess-conn", .enable_tcp = true});
  const ObjectRef ref = server->activate(std::make_shared<CalcServant>());
  Socket socket =
      Socket::connect(ref.ior().host, ref.ior().port, /*timeout_s=*/2.0);
  EXPECT_TRUE(socket.valid());
}

TEST(DiscardReasonTest, LateReplySplitsFromDuplicate) {
  auto server = ORB::init({.endpoint_name = "sess-late", .enable_tcp = true});
  auto slow = std::make_shared<SlowServant>(300ms);
  const ObjectRef slow_ref = server->activate(slow);
  const ObjectRef fast_ref = server->activate(std::make_shared<CalcServant>());

  const std::uint64_t late_before =
      counter_value("transport.tcp.discarded_replies_late_total");
  const std::uint64_t discarded_before =
      counter_value("transport.tcp.discarded_replies_total");

  TcpClientTransport transport(TcpClientOptions{.request_timeout_s = 0.1});
  auto pending = transport.send(slow_ref.ior(),
                                make_request(slow_ref.ior(), 1, 1, 1));
  EXPECT_THROW((void)pending->get(), TIMEOUT);
  std::this_thread::sleep_for(400ms);  // the late reply is now buffered
  // The next call's leader drains the abandoned call's reply first and
  // attributes the discard to the `late` reason.
  const ReplyMessage reply = transport.invoke(
      fast_ref.ior(), make_request(fast_ref.ior(), 2, 20, 22));
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
  EXPECT_EQ(counter_value("transport.tcp.discarded_replies_late_total"),
            late_before + 1);
  EXPECT_EQ(counter_value("transport.tcp.discarded_replies_total"),
            discarded_before + 1);
}

}  // namespace
}  // namespace corba
