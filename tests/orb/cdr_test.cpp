// Unit tests for the CDR streams: primitive round trips in both byte
// orders, alignment rules, strings/blobs, and bounds checking on input.
#include "orb/cdr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <random>

namespace corba {
namespace {

class CdrByteOrderTest : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(CdrByteOrderTest, PrimitiveRoundTrip) {
  CdrOutputStream out(GetParam());
  out.write_octet(0xab);
  out.write_bool(true);
  out.write_bool(false);
  out.write_u16(0x1234);
  out.write_u32(0xdeadbeef);
  out.write_u64(0x0123456789abcdefull);
  out.write_i16(-2);
  out.write_i32(-123456789);
  out.write_i64(std::numeric_limits<std::int64_t>::min());
  out.write_f32(1.5f);
  out.write_f64(-2.718281828459045);

  CdrInputStream in(out.buffer(), GetParam());
  EXPECT_EQ(in.read_octet(), 0xab);
  EXPECT_TRUE(in.read_bool());
  EXPECT_FALSE(in.read_bool());
  EXPECT_EQ(in.read_u16(), 0x1234);
  EXPECT_EQ(in.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(in.read_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(in.read_i16(), -2);
  EXPECT_EQ(in.read_i32(), -123456789);
  EXPECT_EQ(in.read_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(in.read_f32(), 1.5f);
  EXPECT_EQ(in.read_f64(), -2.718281828459045);
  EXPECT_TRUE(in.at_end());
}

TEST_P(CdrByteOrderTest, StringRoundTrip) {
  CdrOutputStream out(GetParam());
  out.write_string("");
  out.write_string("hello");
  out.write_string(std::string(1000, 'x'));
  CdrInputStream in(out.buffer(), GetParam());
  EXPECT_EQ(in.read_string(), "");
  EXPECT_EQ(in.read_string(), "hello");
  EXPECT_EQ(in.read_string(), std::string(1000, 'x'));
  EXPECT_TRUE(in.at_end());
}

TEST_P(CdrByteOrderTest, BlobRoundTrip) {
  std::vector<std::byte> blob;
  for (int i = 0; i < 257; ++i) blob.push_back(static_cast<std::byte>(i));
  CdrOutputStream out(GetParam());
  out.write_blob(std::span<const std::byte>(blob));
  CdrInputStream in(out.buffer(), GetParam());
  EXPECT_EQ(in.read_blob(), blob);
}

TEST_P(CdrByteOrderTest, F64SeqRoundTrip) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-1e12, 1e12);
  std::vector<double> values(101);
  for (auto& v : values) v = dist(rng);
  CdrOutputStream out(GetParam());
  out.write_f64_seq(values);
  out.write_f64_seq({});
  CdrInputStream in(out.buffer(), GetParam());
  EXPECT_EQ(in.read_f64_seq(), values);
  EXPECT_TRUE(in.read_f64_seq().empty());
  EXPECT_TRUE(in.at_end());
}

TEST_P(CdrByteOrderTest, InterleavedMixedValues) {
  // Property: any interleaving of writes reads back identically; exercises
  // alignment after odd-size strings.
  CdrOutputStream out(GetParam());
  out.write_octet(1);
  out.write_string("abc");  // 4-byte length + 4 chars => odd tail
  out.write_u64(7);
  out.write_octet(2);
  out.write_f64(3.25);
  CdrInputStream in(out.buffer(), GetParam());
  EXPECT_EQ(in.read_octet(), 1);
  EXPECT_EQ(in.read_string(), "abc");
  EXPECT_EQ(in.read_u64(), 7u);
  EXPECT_EQ(in.read_octet(), 2);
  EXPECT_EQ(in.read_f64(), 3.25);
}

INSTANTIATE_TEST_SUITE_P(BothOrders, CdrByteOrderTest,
                         ::testing::Values(ByteOrder::big_endian,
                                           ByteOrder::little_endian),
                         [](const auto& info) {
                           return info.param == ByteOrder::big_endian ? "big"
                                                                      : "little";
                         });

TEST(CdrAlignment, ScalarsAreNaturallyAligned) {
  CdrOutputStream out;
  out.write_octet(0);          // offset 0
  out.write_u32(1);            // must pad to offset 4
  EXPECT_EQ(out.size(), 8u);
  out.write_octet(0);          // offset 8
  out.write_u64(2);            // must pad to offset 16
  EXPECT_EQ(out.size(), 24u);
  out.write_octet(0);
  out.write_u16(3);            // pad to 26
  EXPECT_EQ(out.size(), 28u);
}

TEST(CdrAlignment, InputSkipsSamePadding) {
  CdrOutputStream out;
  out.write_octet(9);
  out.write_u64(0x1122334455667788ull);
  CdrInputStream in(out.buffer());
  EXPECT_EQ(in.read_octet(), 9);
  EXPECT_EQ(in.read_u64(), 0x1122334455667788ull);
}

TEST(CdrBounds, TruncatedScalarThrowsMarshal) {
  CdrOutputStream out;
  out.write_u32(1);
  auto buffer = out.buffer();
  buffer.pop_back();
  CdrInputStream in(buffer);
  EXPECT_THROW(in.read_u32(), MARSHAL);
}

TEST(CdrBounds, TruncatedStringThrowsMarshal) {
  CdrOutputStream out;
  out.write_string("hello world");
  auto buffer = out.buffer();
  buffer.resize(buffer.size() - 4);
  CdrInputStream in(buffer);
  EXPECT_THROW(in.read_string(), MARSHAL);
}

TEST(CdrBounds, StringWithoutTerminatorThrowsMarshal) {
  CdrOutputStream out;
  out.write_u32(3);  // claims 3 bytes incl. NUL
  const char bad[] = {'a', 'b', 'c'};
  out.write_raw(std::as_bytes(std::span(bad)));
  CdrInputStream in(out.buffer());
  EXPECT_THROW(in.read_string(), MARSHAL);
}

TEST(CdrBounds, EmptyBufferReportsAtEnd) {
  CdrInputStream in({});
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(in.remaining(), 0u);
  EXPECT_THROW(in.read_octet(), MARSHAL);
}

TEST(CdrBounds, BlobLengthBeyondBufferThrows) {
  CdrOutputStream out;
  out.write_u32(1000);  // blob claims 1000 bytes, none follow
  CdrInputStream in(out.buffer());
  EXPECT_THROW(in.read_blob(), MARSHAL);
}

TEST(CdrFloat, SpecialValuesSurviveSwap) {
  for (ByteOrder order : {ByteOrder::big_endian, ByteOrder::little_endian}) {
    CdrOutputStream out(order);
    out.write_f64(std::numeric_limits<double>::infinity());
    out.write_f64(-0.0);
    out.write_f64(std::numeric_limits<double>::denorm_min());
    out.write_f64(std::numeric_limits<double>::quiet_NaN());
    CdrInputStream in(out.buffer(), order);
    EXPECT_TRUE(std::isinf(in.read_f64()));
    const double neg_zero = in.read_f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(in.read_f64(), std::numeric_limits<double>::denorm_min());
    EXPECT_TRUE(std::isnan(in.read_f64()));
  }
}

TEST(CdrRandomized, RandomSequenceRoundTrips) {
  // Property-style fuzz: random mixed write sequences round-trip in both
  // byte orders.
  std::mt19937_64 rng(20260704);
  for (int trial = 0; trial < 50; ++trial) {
    const ByteOrder order =
        (trial % 2 == 0) ? ByteOrder::big_endian : ByteOrder::little_endian;
    CdrOutputStream out(order);
    std::vector<int> script;
    std::vector<std::uint64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    const int ops = 1 + static_cast<int>(rng() % 40);
    for (int i = 0; i < ops; ++i) {
      const int op = static_cast<int>(rng() % 3);
      script.push_back(op);
      switch (op) {
        case 0: {
          ints.push_back(rng());
          out.write_u64(ints.back());
          break;
        }
        case 1: {
          doubles.push_back(static_cast<double>(rng()) / 3.0);
          out.write_f64(doubles.back());
          break;
        }
        case 2: {
          strings.push_back(std::string(rng() % 17, 'a' + (trial % 26)));
          out.write_string(strings.back());
          break;
        }
      }
    }
    CdrInputStream in(out.buffer(), order);
    std::size_t ii = 0, di = 0, si = 0;
    for (int op : script) {
      switch (op) {
        case 0:
          ASSERT_EQ(in.read_u64(), ints[ii++]);
          break;
        case 1:
          ASSERT_EQ(in.read_f64(), doubles[di++]);
          break;
        case 2:
          ASSERT_EQ(in.read_string(), strings[si++]);
          break;
      }
    }
    EXPECT_TRUE(in.at_end());
  }
}

TEST(CdrZeroCopy, RebaseAlignmentMakesBodySelfContained) {
  // Frame assembly: write a 12-byte header (not 8-aligned), rebase, then
  // encode a body.  The body bytes must be identical to encoding the body
  // into a fresh stream — i.e. alignment is relative to the rebase point.
  CdrOutputStream framed;
  const std::array<std::byte, 12> header{};
  framed.write_raw(header);
  framed.rebase_alignment();
  EXPECT_EQ(framed.size(), 0u);
  framed.write_u32(7);
  framed.write_f64(3.25);  // forces 8-alignment relative to the body start
  framed.write_string("x");

  CdrOutputStream plain;
  plain.write_u32(7);
  plain.write_f64(3.25);
  plain.write_string("x");

  ASSERT_EQ(framed.size(), plain.size());
  const auto& buffer = framed.buffer();
  const std::vector<std::byte> body(buffer.begin() + 12, buffer.end());
  EXPECT_EQ(body, plain.buffer());

  // The receiver decodes the body standalone.
  CdrInputStream in(body);
  EXPECT_EQ(in.read_u32(), 7u);
  EXPECT_EQ(in.read_f64(), 3.25);
  EXPECT_EQ(in.read_string(), "x");
}

TEST(CdrZeroCopy, RecycledBufferKeepsCapacityAndClearsContent) {
  CdrOutputStream first;
  first.write_string("payload that forces an allocation beyond SSO sizes");
  std::vector<std::byte> recycled = first.take_buffer();
  const std::size_t capacity = recycled.capacity();

  CdrOutputStream second(std::move(recycled));
  EXPECT_EQ(second.size(), 0u);
  second.write_u32(5);
  EXPECT_GE(second.buffer().capacity(), capacity);  // no fresh allocation
  CdrInputStream in(second.buffer());
  EXPECT_EQ(in.read_u32(), 5u);
}

TEST(CdrZeroCopy, ReserveSizesTheBuffer) {
  CdrOutputStream out;
  out.reserve(4096);
  EXPECT_GE(out.buffer().capacity(), 4096u);
  EXPECT_EQ(out.size(), 0u);
}

TEST(CdrZeroCopy, ReadBlobViewAliasesTheBuffer) {
  CdrOutputStream out;
  const std::vector<std::byte> payload(100, std::byte{0x7e});
  out.write_u32(1);
  out.write_blob(payload);
  CdrInputStream in(out.buffer());
  EXPECT_EQ(in.read_u32(), 1u);
  const std::span<const std::byte> view = in.read_blob_view();
  ASSERT_EQ(view.size(), payload.size());
  // Zero copy: the span points into the stream's underlying buffer.
  EXPECT_GE(view.data(), out.buffer().data());
  EXPECT_LT(view.data(), out.buffer().data() + out.buffer().size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), payload.begin()));
  EXPECT_TRUE(in.at_end());
}

TEST(CdrZeroCopy, ReadF64ViewNativeOrderAliasesWhenAligned) {
  const std::vector<double> values{1.0, -2.5, 3.25, 1e300};
  CdrOutputStream out;
  out.write_f64_seq(values);
  CdrInputStream in(out.buffer());
  std::vector<double> scratch;
  const std::span<const double> view = in.read_f64_view(scratch);
  ASSERT_EQ(view.size(), values.size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), values.begin()));
  EXPECT_TRUE(in.at_end());
}

TEST(CdrZeroCopy, ReadF64ViewSwappedOrderDecodesIntoScratch) {
  const ByteOrder foreign = native_byte_order() == ByteOrder::little_endian
                                ? ByteOrder::big_endian
                                : ByteOrder::little_endian;
  const std::vector<double> values{0.5, 42.0, -1e-9};
  CdrOutputStream out(foreign);
  out.write_f64_seq(values);
  CdrInputStream in(out.buffer(), foreign);
  std::vector<double> scratch;
  const std::span<const double> view = in.read_f64_view(scratch);
  ASSERT_EQ(view.size(), values.size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), values.begin()));
  // The swapped path materializes into the caller's scratch vector.
  EXPECT_EQ(view.data(), scratch.data());
}

TEST(CdrZeroCopy, ReadF64ViewEmptySequence) {
  CdrOutputStream out;
  out.write_f64_seq({});
  CdrInputStream in(out.buffer());
  std::vector<double> scratch;
  EXPECT_TRUE(in.read_f64_view(scratch).empty());
  EXPECT_TRUE(in.at_end());
}

}  // namespace
}  // namespace corba
