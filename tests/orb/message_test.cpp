// Unit tests for the GIOP-lite message layer: header framing, request and
// reply body round trips, exception carriage, and the user-exception
// registry.
#include "orb/message.hpp"

#include <gtest/gtest.h>

namespace corba {
namespace {

TEST(MessageHeader, EncodeDecodeRoundTrip) {
  MessageHeader h;
  h.type = MessageType::reply;
  h.byte_order = ByteOrder::big_endian;
  h.body_length = 0x01020304;
  const auto bytes = h.encode();
  const MessageHeader decoded = MessageHeader::decode(bytes);
  EXPECT_EQ(decoded.type, MessageType::reply);
  EXPECT_EQ(decoded.byte_order, ByteOrder::big_endian);
  EXPECT_EQ(decoded.body_length, 0x01020304u);
}

TEST(MessageHeader, RejectsBadMagicVersionTypeOrder) {
  MessageHeader h;
  auto good = h.encode();

  auto bad = good;
  bad[0] = std::byte{'X'};
  EXPECT_THROW(MessageHeader::decode(bad), MARSHAL);

  bad = good;
  bad[4] = std::byte{9};
  EXPECT_THROW(MessageHeader::decode(bad), MARSHAL);

  bad = good;
  bad[6] = std::byte{7};
  EXPECT_THROW(MessageHeader::decode(bad), MARSHAL);

  bad = good;
  bad[7] = std::byte{200};
  EXPECT_THROW(MessageHeader::decode(bad), MARSHAL);

  EXPECT_THROW(MessageHeader::decode(std::span(good).subspan(0, 5)), MARSHAL);
}

RequestMessage sample_request() {
  RequestMessage req;
  req.request_id = 77;
  req.object_key = ObjectKey::from_string("svc#a1.9");
  req.operation = "solve";
  req.arguments = {Value(std::int64_t{3}), Value("payload"),
                   Value(std::vector<double>{1.0, 2.0})};
  return req;
}

class MessageOrderTest : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(MessageOrderTest, RequestBodyRoundTrip) {
  CdrOutputStream out(GetParam());
  sample_request().encode_body(out);
  CdrInputStream in(out.buffer(), GetParam());
  const RequestMessage decoded = RequestMessage::decode_body(in);
  EXPECT_EQ(decoded.request_id, 77u);
  EXPECT_EQ(decoded.object_key, sample_request().object_key);
  EXPECT_EQ(decoded.operation, "solve");
  ASSERT_EQ(decoded.arguments.size(), 3u);
  EXPECT_EQ(decoded.arguments[1].as_string(), "payload");
  EXPECT_TRUE(decoded.response_expected);
}

TEST_P(MessageOrderTest, ResultReplyRoundTrip) {
  ReplyMessage rep = ReplyMessage::make_result(5, Value("ok"));
  CdrOutputStream out(GetParam());
  rep.encode_body(out);
  CdrInputStream in(out.buffer(), GetParam());
  const ReplyMessage decoded = ReplyMessage::decode_body(in);
  EXPECT_EQ(decoded.request_id, 5u);
  EXPECT_EQ(decoded.status, ReplyStatus::no_exception);
  EXPECT_EQ(decoded.result_or_throw().as_string(), "ok");
}

TEST_P(MessageOrderTest, SystemExceptionReplyRoundTrip) {
  const COMM_FAILURE error("link dropped", minor_code::connection_lost,
                           CompletionStatus::completed_maybe);
  ReplyMessage rep = ReplyMessage::make_system_exception(9, error);
  CdrOutputStream out(GetParam());
  rep.encode_body(out);
  CdrInputStream in(out.buffer(), GetParam());
  const ReplyMessage decoded = ReplyMessage::decode_body(in);
  EXPECT_EQ(decoded.status, ReplyStatus::system_exception);
  try {
    decoded.result_or_throw();
    FAIL() << "expected COMM_FAILURE";
  } catch (const COMM_FAILURE& e) {
    EXPECT_EQ(e.detail(), "link dropped");
    EXPECT_EQ(e.minor(), minor_code::connection_lost);
    EXPECT_EQ(e.completed(), CompletionStatus::completed_maybe);
  }
}

INSTANTIATE_TEST_SUITE_P(BothOrders, MessageOrderTest,
                         ::testing::Values(ByteOrder::big_endian,
                                           ByteOrder::little_endian),
                         [](const auto& info) {
                           return info.param == ByteOrder::big_endian ? "big"
                                                                      : "little";
                         });

struct TestError : UserException {
  explicit TestError(std::string detail)
      : UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/tests/TestError:1.0";
  }
};
RegisterUserException<TestError> register_test_error;

TEST(Reply, RegisteredUserExceptionRethrownConcretely) {
  ReplyMessage rep = ReplyMessage::make_user_exception(1, TestError("boom"));
  EXPECT_THROW(rep.result_or_throw(), TestError);
}

TEST(Reply, UnregisteredUserExceptionFallsBack) {
  ReplyMessage rep;
  rep.status = ReplyStatus::user_exception;
  rep.exception_id = "IDL:nobody/registered/This:1.0";
  rep.exception_detail = "detail";
  EXPECT_THROW(rep.result_or_throw(), UnknownUserException);
}

TEST(Reply, UnknownSystemExceptionIdBecomesInternal) {
  ReplyMessage rep;
  rep.status = ReplyStatus::system_exception;
  rep.exception_id = "IDL:omg.org/CORBA/WEIRD:1.0";
  EXPECT_THROW(rep.result_or_throw(), INTERNAL);
}

TEST(Frame, EncodeFrameMatchesHeaderPlusBody) {
  CdrOutputStream body;
  sample_request().encode_body(body);
  const auto frame = encode_frame(MessageType::request, body);
  ASSERT_GE(frame.size(), MessageHeader::kEncodedSize);
  const MessageHeader header = MessageHeader::decode(frame);
  EXPECT_EQ(header.type, MessageType::request);
  EXPECT_EQ(header.body_length, body.size());
  EXPECT_EQ(frame.size(), MessageHeader::kEncodedSize + body.size());
}

TEST(Request, SizeEstimateIsReasonable) {
  const RequestMessage req = sample_request();
  CdrOutputStream body;
  req.encode_body(body);
  const std::size_t actual = MessageHeader::kEncodedSize + body.size();
  EXPECT_GE(req.encoded_size_estimate() + 32, actual);
  EXPECT_LE(req.encoded_size_estimate(), actual + 32);
}

TEST(Frame, FrameBuilderMatchesEncodeFrameByteForByte) {
  const RequestMessage request = sample_request();
  CdrOutputStream body;
  request.encode_body(body);
  const auto copied = encode_frame(MessageType::request, body);

  FrameBuilder builder(MessageType::request);
  builder.body().reserve(request.encoded_size_estimate());
  request.encode_body(builder.body());
  const auto assembled = builder.finish();

  EXPECT_EQ(assembled, copied);
  // And the receiver-side decode sees the same request.
  const MessageHeader header = MessageHeader::decode(assembled);
  EXPECT_EQ(header.body_length, assembled.size() - MessageHeader::kEncodedSize);
  CdrInputStream in(std::span<const std::byte>(assembled)
                        .subspan(MessageHeader::kEncodedSize),
                    header.byte_order);
  const RequestMessage decoded = RequestMessage::decode_body(in);
  EXPECT_EQ(decoded.operation, request.operation);
  EXPECT_EQ(decoded.request_id, request.request_id);
}

TEST(Frame, FrameBuilderRecyclesBuffers) {
  FrameBuilder first(MessageType::reply);
  ReplyMessage::make_result(1, Value(std::int64_t{42}))
      .encode_body(first.body());
  std::vector<std::byte> recycled = first.finish();
  const std::size_t capacity = recycled.capacity();

  // A second frame assembled into the recycled buffer reuses its storage.
  FrameBuilder second(MessageType::reply, std::move(recycled));
  ReplyMessage::make_result(2, Value(std::int64_t{43}))
      .encode_body(second.body());
  const auto frame = second.finish();
  EXPECT_GE(frame.capacity(), capacity);
  const MessageHeader header = MessageHeader::decode(frame);
  EXPECT_EQ(header.type, MessageType::reply);
  CdrInputStream in(std::span<const std::byte>(frame).subspan(
                        MessageHeader::kEncodedSize),
                    header.byte_order);
  EXPECT_EQ(ReplyMessage::decode_body(in).request_id, 2u);
}

// --- service contexts / trace propagation ----------------------------------

TEST_P(MessageOrderTest, TraceContextWireRoundTrip) {
  RequestMessage req = sample_request();
  const obs::TraceContext context{0x1111222233334444ull, 0x5555666677778888ull,
                                  0x99aa99aa99aa99aaull};
  attach_trace_context(req, context);

  CdrOutputStream out(GetParam());
  req.encode_body(out);
  CdrInputStream in(out.buffer(), GetParam());
  const RequestMessage decoded = RequestMessage::decode_body(in);

  const auto extracted = extract_trace_context(decoded);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(*extracted, context);
  // The message payload itself is untouched.
  EXPECT_EQ(decoded.operation, "solve");
  ASSERT_EQ(decoded.arguments.size(), 3u);
}

TEST(ServiceContexts, EmptyListAddsNoWireBytes) {
  // Old-format compatibility both ways: a context-free request encodes to
  // exactly the pre-slot byte stream, and that byte stream decodes cleanly.
  const RequestMessage req = sample_request();
  CdrOutputStream with_field;
  req.encode_body(with_field);

  CdrOutputStream pre_slot;  // the historical encoding, written by hand
  pre_slot.write_u64(req.request_id);
  pre_slot.write_blob(std::span<const std::byte>(req.object_key.bytes));
  pre_slot.write_string(req.operation);
  pre_slot.write_bool(req.response_expected);
  pre_slot.write_u32(static_cast<std::uint32_t>(req.arguments.size()));
  for (const Value& v : req.arguments) v.encode(pre_slot);

  EXPECT_EQ(with_field.buffer(), pre_slot.buffer());
  CdrInputStream in(pre_slot.buffer());
  const RequestMessage decoded = RequestMessage::decode_body(in);
  EXPECT_TRUE(decoded.service_contexts.empty());
  EXPECT_FALSE(extract_trace_context(decoded).has_value());
}

TEST(ServiceContexts, UnknownSlotsAreCarriedAndSkipped) {
  RequestMessage req = sample_request();
  req.service_contexts.push_back(
      {.id = 4242, .data = {std::byte{0xde}, std::byte{0xad}}});
  attach_trace_context(req, obs::TraceContext{7, 8, 0});

  CdrOutputStream out;
  req.encode_body(out);
  CdrInputStream in(out.buffer());
  const RequestMessage decoded = RequestMessage::decode_body(in);

  // A receiver that doesn't understand slot 4242 still sees the trace slot
  // (forward compatibility), and the unknown payload survives verbatim.
  ASSERT_EQ(decoded.service_contexts.size(), 2u);
  const auto context = extract_trace_context(decoded);
  ASSERT_TRUE(context.has_value());
  EXPECT_EQ(context->trace_id, 7u);
  EXPECT_EQ(context->span_id, 8u);
  EXPECT_EQ(decoded.service_contexts[0].id, 4242u);
  EXPECT_EQ(decoded.service_contexts[0].data,
            (std::vector<std::byte>{std::byte{0xde}, std::byte{0xad}}));
}

TEST(ServiceContexts, AttachReplacesExistingTraceSlot) {
  RequestMessage req = sample_request();
  attach_trace_context(req, obs::TraceContext{1, 2, 3});
  attach_trace_context(req, obs::TraceContext{4, 5, 6});
  ASSERT_EQ(req.service_contexts.size(), 1u);
  const auto context = extract_trace_context(req);
  ASSERT_TRUE(context.has_value());
  EXPECT_EQ(*context, (obs::TraceContext{4, 5, 6}));
}

TEST(ServiceContexts, TruncatedTracePayloadIgnored) {
  RequestMessage req = sample_request();
  req.service_contexts.push_back(
      {.id = kTraceContextSlot, .data = {std::byte{1}, std::byte{2}}});
  EXPECT_FALSE(extract_trace_context(req).has_value());
}

TEST(ServiceContexts, HostileContextCountRejected) {
  const RequestMessage req = sample_request();
  CdrOutputStream out;
  req.encode_body(out);
  out.write_u32(0x7fffffff);  // claims ~2B service contexts
  CdrInputStream in(out.buffer());
  EXPECT_THROW(RequestMessage::decode_body(in), MARSHAL);
}

TEST(Request, HostileArgumentCountRejected) {
  CdrOutputStream out;
  out.write_u64(1);
  out.write_blob(std::span<const std::byte>{});
  out.write_string("op");
  out.write_bool(true);
  out.write_u32(0x7fffffff);  // claims ~2B arguments
  CdrInputStream in(out.buffer());
  EXPECT_THROW(RequestMessage::decode_body(in), MARSHAL);
}

}  // namespace
}  // namespace corba
