// Tests of the real-socket transport: typed calls over loopback TCP,
// concurrent clients, deferred requests, connection failure semantics and
// server restart behaviour.
#include "orb/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "orb/dii.hpp"
#include "orb/exceptions.hpp"
#include "orb/orb.hpp"
#include "test_interfaces.hpp"

namespace corba {
namespace {

using corbaft_test::CalcServant;
using corbaft_test::CalcStub;

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = ORB::init({.endpoint_name = "tcp-server", .enable_tcp = true});
    client_ = ORB::init({.endpoint_name = "tcp-client", .enable_tcp = true});
    target_ = server_->activate(std::make_shared<CalcServant>());
  }

  std::shared_ptr<ORB> server_;
  std::shared_ptr<ORB> client_;
  ObjectRef target_;
};

TEST_F(TcpTest, MintedIorsUseTcpProfile) {
  EXPECT_EQ(target_.ior().protocol, protocol::tcp);
  EXPECT_EQ(target_.ior().host, "127.0.0.1");
  EXPECT_NE(target_.ior().port, 0);
  EXPECT_EQ(target_.ior().port, server_->tcp_port());
}

TEST_F(TcpTest, TypedCallOverSockets) {
  CalcStub calc(client_->string_to_object(target_.ior().to_string()));
  EXPECT_EQ(calc.add(40, 2), 42);
  EXPECT_EQ(calc.echo("over tcp"), "over tcp");
}

TEST_F(TcpTest, UserExceptionOverSockets) {
  CalcStub calc(client_->make_ref(target_.ior()));
  EXPECT_THROW(calc.fail(), corbaft_test::CalcError);
}

TEST_F(TcpTest, ManySequentialCallsReuseConnections) {
  CalcStub calc(client_->make_ref(target_.ior()));
  for (int i = 0; i < 200; ++i) ASSERT_EQ(calc.add(i, 1), i + 1);
  EXPECT_EQ(calc.calls(), 200);
}

TEST_F(TcpTest, ConcurrentClientThreads) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        CalcStub calc(client_->make_ref(target_.ior()));
        for (int i = 0; i < kCallsPerThread; ++i) {
          if (calc.add(t, i) != t + i) failures.fetch_add(1);
        }
      } catch (const Exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  CalcStub calc(client_->make_ref(target_.ior()));
  EXPECT_EQ(calc.calls(), kThreads * kCallsPerThread);
}

TEST_F(TcpTest, DeferredRequestsRunInParallel) {
  std::vector<Request> requests;
  const ObjectRef ref = client_->make_ref(target_.ior());
  for (int i = 0; i < 16; ++i) {
    requests.emplace_back(ref, "add");
    requests.back().add_argument(Value(i)).add_argument(Value(1000));
    requests.back().send_deferred();
  }
  for (int i = 0; i < 16; ++i) {
    requests[static_cast<std::size_t>(i)].get_response();
    EXPECT_EQ(requests[static_cast<std::size_t>(i)].return_value().as_i32(),
              1000 + i);
  }
}

TEST_F(TcpTest, OnewayDeliversOverSockets) {
  CalcStub calc(client_->make_ref(target_.ior()));
  const corba::ObjectRef ref = client_->make_ref(target_.ior());
  ref.invoke_oneway("add", {corba::Value(1), corba::Value(2)});
  // Oneway has no reply; poll the (synchronous) counter until the server
  // has processed it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (calc.calls() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(calc.calls(), 1);
  // The connection stays usable for regular two-way calls afterwards.
  EXPECT_EQ(calc.add(20, 22), 42);
}

TEST_F(TcpTest, ConnectToClosedPortRaisesCommFailure) {
  IOR bogus = target_.ior();
  bogus.port = 1;  // nothing listens here
  try {
    client_->invoke(bogus, "add", {Value(1), Value(1)});
    FAIL() << "expected COMM_FAILURE";
  } catch (const COMM_FAILURE& e) {
    EXPECT_EQ(e.minor(), minor_code::connect_failed);
    EXPECT_EQ(e.completed(), CompletionStatus::completed_no);
  }
}

TEST_F(TcpTest, ServerShutdownBreaksSubsequentCalls) {
  CalcStub calc(client_->make_ref(target_.ior()));
  EXPECT_EQ(calc.add(1, 1), 2);
  server_->shutdown();
  EXPECT_THROW(calc.add(1, 1), COMM_FAILURE);
}

TEST_F(TcpTest, BigEndianRequestUnderstood) {
  // Hand-craft a big-endian request frame and check the reply decodes: the
  // server must honour the header's byte-order flag.
  RequestMessage req;
  req.request_id = 9;
  req.object_key = target_.ior().key;
  req.operation = "add";
  req.arguments = {Value(2), Value(3)};
  CdrOutputStream body(ByteOrder::big_endian);
  req.encode_body(body);

  Socket socket = Socket::connect("127.0.0.1", server_->tcp_port());
  socket.send_frame(MessageType::request, body);
  MessageHeader header;
  std::vector<std::byte> reply_bytes;
  ASSERT_TRUE(socket.recv_frame(header, reply_bytes));
  CdrInputStream in(reply_bytes, header.byte_order);
  const ReplyMessage reply = ReplyMessage::decode_body(in);
  EXPECT_EQ(reply.request_id, 9u);
  EXPECT_EQ(reply.result_or_throw().as_i32(), 5);
}

TEST_F(TcpTest, GarbageFrameDropsConnectionOnly) {
  // A malformed frame must not take the server down; later calls succeed.
  {
    Socket socket = Socket::connect("127.0.0.1", server_->tcp_port());
    const char garbage[] = "GARBAGEGARBAGEGARBAGE";
    CdrOutputStream body;
    body.write_raw(std::as_bytes(std::span(garbage)));
    // Write raw bytes as a bogus header + payload.
    MessageHeader header;
    std::vector<std::byte> unused;
    EXPECT_NO_THROW({
      try {
        socket.send_frame(MessageType::request, body);
      } catch (const COMM_FAILURE&) {
      }
    });
  }
  CalcStub calc(client_->make_ref(target_.ior()));
  EXPECT_EQ(calc.add(5, 5), 10);
}

TEST(TcpLifecycle, PortIsReleasedAfterShutdown) {
  std::uint16_t port = 0;
  {
    auto orb = ORB::init({.endpoint_name = "s", .enable_tcp = true});
    port = orb->tcp_port();
    orb->shutdown();
  }
  // Binding the same port again must succeed after clean shutdown.
  auto orb2 = ORB::init(
      {.endpoint_name = "s2", .enable_tcp = true, .tcp_port = port});
  EXPECT_EQ(orb2->tcp_port(), port);
}

TEST(TcpLifecycle, MixedInprocAndTcpOrb) {
  // An ORB attached to a virtual network *and* exposing TCP serves both.
  auto network = std::make_shared<InProcessNetwork>();
  auto server = ORB::init(
      {.endpoint_name = "dual", .network = network, .enable_tcp = true});
  auto inproc_client = ORB::init({.endpoint_name = "ic", .network = network});
  auto tcp_client = ORB::init({.endpoint_name = "tc", .enable_tcp = true});

  const ObjectRef ref = server->activate(std::make_shared<CalcServant>());
  // The minted IOR advertises TCP; an in-process IOR can be built manually.
  CalcStub via_tcp(tcp_client->make_ref(ref.ior()));
  EXPECT_EQ(via_tcp.add(1, 2), 3);

  IOR inproc_ior = ref.ior();
  inproc_ior.protocol = std::string(protocol::inproc);
  inproc_ior.host = "dual";
  inproc_ior.port = 0;
  CalcStub via_inproc(inproc_client->make_ref(inproc_ior));
  EXPECT_EQ(via_inproc.add(3, 4), 7);
}

}  // namespace
}  // namespace corba
