// Integration-style unit tests of the ORB core over the in-process
// transport: end-to-end typed calls through stubs, reference passing,
// stringification, initial references, and failure semantics when a peer
// ORB disappears.
#include "orb/orb.hpp"

#include <gtest/gtest.h>

#include "orb/exceptions.hpp"
#include "test_interfaces.hpp"

namespace corba {
namespace {

using corbaft_test::CalcServant;
using corbaft_test::CalcStub;

class OrbInprocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<InProcessNetwork>();
    server_ = ORB::init({.endpoint_name = "server", .network = network_});
    client_ = ORB::init({.endpoint_name = "client", .network = network_});
  }

  std::shared_ptr<InProcessNetwork> network_;
  std::shared_ptr<ORB> server_;
  std::shared_ptr<ORB> client_;
};

TEST_F(OrbInprocTest, TypedCallThroughStub) {
  const ObjectRef server_ref = server_->activate(std::make_shared<CalcServant>());
  // Hand the reference to the client ORB the way an application would:
  // through its stringified form.
  CalcStub calc(client_->string_to_object(server_ref.ior().to_string()));
  EXPECT_EQ(calc.add(20, 22), 42);
  EXPECT_EQ(calc.echo("hello"), "hello");
  EXPECT_EQ(calc.calls(), 2);
}

TEST_F(OrbInprocTest, UserExceptionCrossesTheWire) {
  CalcStub calc(server_->activate(std::make_shared<CalcServant>()));
  EXPECT_THROW(calc.fail(), corbaft_test::CalcError);
}

TEST_F(OrbInprocTest, IsAWorksRemotely) {
  const ObjectRef ref = server_->activate(std::make_shared<CalcServant>());
  CalcStub calc(client_->make_ref(ref.ior()));
  EXPECT_TRUE(calc.is_a(corbaft_test::kCalcRepoId));
  EXPECT_FALSE(calc.is_a("IDL:something/Else:1.0"));
}

TEST_F(OrbInprocTest, UnknownEndpointRaisesCommFailure) {
  IOR bogus;
  bogus.protocol = std::string(protocol::inproc);
  bogus.host = "no-such-endpoint";
  bogus.key = ObjectKey::from_string("k");
  const ObjectRef ref = client_->make_ref(bogus);
  try {
    ref.invoke("op", {});
    FAIL() << "expected COMM_FAILURE";
  } catch (const COMM_FAILURE& e) {
    EXPECT_EQ(e.minor(), minor_code::endpoint_unknown);
    EXPECT_EQ(e.completed(), CompletionStatus::completed_no);
  }
}

TEST_F(OrbInprocTest, ShutDownServerLooksLikeCrashedProcess) {
  const ObjectRef ref = server_->activate(std::make_shared<CalcServant>());
  CalcStub calc(client_->make_ref(ref.ior()));
  EXPECT_EQ(calc.add(1, 1), 2);
  server_->shutdown();
  EXPECT_THROW(calc.add(1, 1), COMM_FAILURE);
}

TEST_F(OrbInprocTest, PingReflectsLiveness) {
  const ObjectRef ref = server_->activate(std::make_shared<CalcServant>());
  const ObjectRef client_ref = client_->make_ref(ref.ior());
  EXPECT_TRUE(client_ref.ping());
  server_->shutdown();
  EXPECT_FALSE(client_ref.ping());
}

TEST_F(OrbInprocTest, NilReferenceRejectsInvocation) {
  ObjectRef nil;
  EXPECT_TRUE(nil.is_nil());
  EXPECT_THROW(nil.invoke("op", {}), BAD_INV_ORDER);
}

TEST_F(OrbInprocTest, ReferencePassingThroughValues) {
  const ObjectRef ref = server_->activate(std::make_shared<CalcServant>());
  const Value as_value = ref.to_value();
  const ObjectRef back = ObjectRef::from_value(client_, as_value);
  EXPECT_EQ(back.ior(), ref.ior());
  CalcStub calc(back);
  EXPECT_EQ(calc.add(3, 4), 7);

  EXPECT_TRUE(ObjectRef().to_value().is_nil());
  EXPECT_TRUE(ObjectRef::from_value(client_, Value()).is_nil());
}

TEST_F(OrbInprocTest, ObjectToStringRoundTrip) {
  const ObjectRef ref = server_->activate(std::make_shared<CalcServant>());
  const std::string s = client_->object_to_string(client_->make_ref(ref.ior()));
  EXPECT_EQ(client_->string_to_object(s).ior(), ref.ior());
  // Nil round trip.
  EXPECT_TRUE(client_->string_to_object(client_->object_to_string(ObjectRef()))
                  .is_nil());
}

TEST_F(OrbInprocTest, InitialReferences) {
  const ObjectRef ref = server_->activate(std::make_shared<CalcServant>());
  client_->register_initial_reference("CalcService",
                                      client_->make_ref(ref.ior()));
  const ObjectRef resolved = client_->resolve_initial_references("CalcService");
  EXPECT_EQ(resolved.ior(), ref.ior());
  EXPECT_THROW(client_->resolve_initial_references("Nothing"), INV_OBJREF);
  EXPECT_EQ(client_->list_initial_services(),
            std::vector<std::string>{"CalcService"});
}

TEST_F(OrbInprocTest, InvokeAfterShutdownRejected) {
  const ObjectRef ref = server_->activate(std::make_shared<CalcServant>());
  client_->shutdown();
  EXPECT_THROW(client_->invoke(ref.ior(), "add", {Value(1), Value(1)}),
               BAD_INV_ORDER);
}

TEST(OrbConfigValidation, RequiresEndpointNameAndNetwork) {
  EXPECT_THROW(ORB::init({}), BAD_PARAM);
  EXPECT_THROW(ORB::init({.endpoint_name = "x"}), BAD_PARAM);
}

TEST(OrbMultiNode, ThreeOrbsTalkOverOneNetwork) {
  auto network = std::make_shared<InProcessNetwork>();
  auto a = ORB::init({.endpoint_name = "a", .network = network});
  auto b = ORB::init({.endpoint_name = "b", .network = network});
  auto c = ORB::init({.endpoint_name = "c", .network = network});

  const ObjectRef on_b = b->activate(std::make_shared<CalcServant>());
  const ObjectRef on_c = c->activate(std::make_shared<CalcServant>());

  CalcStub from_a_to_b(a->make_ref(on_b.ior()));
  CalcStub from_a_to_c(a->make_ref(on_c.ior()));
  EXPECT_EQ(from_a_to_b.add(1, 2), 3);
  EXPECT_EQ(from_a_to_c.add(3, 4), 7);
  // Servant state is per-node.
  EXPECT_EQ(from_a_to_b.calls(), 1);
  EXPECT_EQ(from_a_to_c.calls(), 1);
}

TEST(OrbNetworkIsolation, SeparateNetworksDoNotSeeEachOther) {
  auto net1 = std::make_shared<InProcessNetwork>();
  auto net2 = std::make_shared<InProcessNetwork>();
  auto server = ORB::init({.endpoint_name = "server", .network = net1});
  auto client = ORB::init({.endpoint_name = "client", .network = net2});
  const ObjectRef ref = server->activate(std::make_shared<CalcServant>());
  CalcStub calc(client->make_ref(ref.ior()));
  EXPECT_THROW(calc.add(1, 1), COMM_FAILURE);
}

}  // namespace
}  // namespace corba
