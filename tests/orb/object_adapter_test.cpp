// Unit tests for the object adapter: activation, deactivation, key
// uniqueness, built-in operations, and the exception-to-reply mapping.
#include "orb/object_adapter.hpp"

#include <gtest/gtest.h>

#include "orb/exceptions.hpp"
#include "test_interfaces.hpp"

namespace corba {
namespace {

using corbaft_test::CalcServant;
using corbaft_test::kCalcRepoId;

EndpointProfile test_profile() {
  return EndpointProfile{std::string(protocol::inproc), "node-a", 0};
}

RequestMessage make_request(const IOR& target, std::string op,
                            ValueSeq args = {}) {
  RequestMessage req;
  req.request_id = 1;
  req.object_key = target.key;
  req.operation = std::move(op);
  req.arguments = std::move(args);
  return req;
}

TEST(ObjectAdapter, ActivateMintsIorWithProfileAndTypeId) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>(), "calc");
  EXPECT_EQ(ior.protocol, protocol::inproc);
  EXPECT_EQ(ior.host, "node-a");
  EXPECT_EQ(ior.type_id, kCalcRepoId);
  EXPECT_NE(ior.key.to_string().find("calc"), std::string::npos);
}

TEST(ObjectAdapter, GeneratedKeysAreUnique) {
  ObjectAdapter adapter(test_profile());
  std::set<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    const IOR ior = adapter.activate(std::make_shared<CalcServant>());
    keys.insert(ior.key.to_string());
  }
  EXPECT_EQ(keys.size(), 100u);
  EXPECT_EQ(adapter.active_count(), 100u);
}

TEST(ObjectAdapter, KeysAreUniqueAcrossAdapters) {
  // Two adapters (e.g. a restarted server) must not mint colliding keys.
  ObjectAdapter a(test_profile());
  ObjectAdapter b(test_profile());
  const IOR ia = a.activate(std::make_shared<CalcServant>(), "svc");
  const IOR ib = b.activate(std::make_shared<CalcServant>(), "svc");
  EXPECT_NE(ia.key, ib.key);
}

TEST(ObjectAdapter, DispatchInvokesServant) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>());
  const ReplyMessage reply =
      adapter.dispatch(make_request(ior, "add", {Value(2), Value(40)}));
  EXPECT_EQ(reply.status, ReplyStatus::no_exception);
  EXPECT_EQ(reply.result_or_throw().as_i32(), 42);
}

TEST(ObjectAdapter, UnknownKeyYieldsObjectNotExist) {
  ObjectAdapter adapter(test_profile());
  IOR bogus;
  bogus.key = ObjectKey::from_string("nothing-here");
  const ReplyMessage reply = adapter.dispatch(make_request(bogus, "add"));
  EXPECT_EQ(reply.status, ReplyStatus::system_exception);
  EXPECT_THROW(reply.result_or_throw(), OBJECT_NOT_EXIST);
}

TEST(ObjectAdapter, DeactivatedObjectDisappears) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>());
  adapter.deactivate(ior.key);
  EXPECT_EQ(adapter.active_count(), 0u);
  const ReplyMessage reply = adapter.dispatch(make_request(ior, "add"));
  EXPECT_THROW(reply.result_or_throw(), OBJECT_NOT_EXIST);
}

TEST(ObjectAdapter, ActivateWithExplicitKey) {
  ObjectAdapter adapter(test_profile());
  const ObjectKey key = ObjectKey::from_string("NameService");
  const IOR ior = adapter.activate_with_key(key, std::make_shared<CalcServant>());
  EXPECT_EQ(ior.key, key);
  EXPECT_THROW(
      adapter.activate_with_key(key, std::make_shared<CalcServant>()),
      BAD_PARAM);
}

TEST(ObjectAdapter, NullServantAndEmptyKeyRejected) {
  ObjectAdapter adapter(test_profile());
  EXPECT_THROW(adapter.activate(nullptr), BAD_PARAM);
  EXPECT_THROW(adapter.activate_with_key(ObjectKey{}, std::make_shared<CalcServant>()),
               BAD_PARAM);
}

TEST(ObjectAdapter, BuiltinIsA) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>());
  ReplyMessage reply = adapter.dispatch(
      make_request(ior, "_is_a", {Value(std::string(kCalcRepoId))}));
  EXPECT_TRUE(reply.result_or_throw().as_bool());
  reply = adapter.dispatch(
      make_request(ior, "_is_a", {Value("IDL:other/Thing:1.0")}));
  EXPECT_FALSE(reply.result_or_throw().as_bool());
}

TEST(ObjectAdapter, BuiltinInterfaceAndPing) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>());
  EXPECT_EQ(adapter.dispatch(make_request(ior, "_interface"))
                .result_or_throw()
                .as_string(),
            kCalcRepoId);
  EXPECT_TRUE(
      adapter.dispatch(make_request(ior, "_ping")).result_or_throw().is_nil());
}

TEST(ObjectAdapter, UserExceptionMappedToUserReply) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>());
  const ReplyMessage reply = adapter.dispatch(make_request(ior, "fail"));
  EXPECT_EQ(reply.status, ReplyStatus::user_exception);
  EXPECT_THROW(reply.result_or_throw(), corbaft_test::CalcError);
}

TEST(ObjectAdapter, UnknownOperationMappedToBadOperation) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>());
  const ReplyMessage reply = adapter.dispatch(make_request(ior, "frobnicate"));
  EXPECT_EQ(reply.status, ReplyStatus::system_exception);
  EXPECT_THROW(reply.result_or_throw(), BAD_OPERATION);
}

TEST(ObjectAdapter, WrongArityMappedToBadParam) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<CalcServant>());
  const ReplyMessage reply =
      adapter.dispatch(make_request(ior, "add", {Value(1)}));
  EXPECT_THROW(reply.result_or_throw(), BAD_PARAM);
}

class ThrowingServant : public corbaft_test::CalcSkeleton {
 public:
  std::int32_t add(std::int32_t, std::int32_t) override {
    throw std::runtime_error("plain std::exception");
  }
  std::string echo(const std::string&) override { return ""; }
  void fail() override {}
  std::int64_t calls() const override { return 0; }
};

TEST(ObjectAdapter, NonCorbaExceptionMappedToInternal) {
  ObjectAdapter adapter(test_profile());
  const IOR ior = adapter.activate(std::make_shared<ThrowingServant>());
  const ReplyMessage reply =
      adapter.dispatch(make_request(ior, "add", {Value(1), Value(2)}));
  EXPECT_EQ(reply.status, ReplyStatus::system_exception);
  EXPECT_THROW(reply.result_or_throw(), INTERNAL);
}

}  // namespace
}  // namespace corba
