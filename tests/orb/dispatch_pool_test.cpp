// DispatchPool unit tests: FIFO-per-key ordering, cross-key parallelism,
// bounded-queue backpressure and drain-on-stop semantics.
#include "orb/dispatch_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "orb/exceptions.hpp"

namespace corba {
namespace {

using namespace std::chrono_literals;

ObjectKey key_of(std::string_view name) {
  return ObjectKey::from_string(name);
}

RequestMessage request_for(std::string_view key, std::uint64_t id,
                           bool response_expected = true) {
  RequestMessage req;
  req.request_id = id;
  req.object_key = key_of(key);
  req.operation = "op";
  req.response_expected = response_expected;
  return req;
}

TEST(DispatchPoolTest, ExecutesAndCompletes) {
  DispatchPool pool({.threads = 2}, [](const RequestMessage& req) {
    return ReplyMessage::make_result(req.request_id, Value(std::int32_t(7)));
  });
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ReplyMessage got;
  pool.submit(request_for("a", 1), [&](ReplyMessage reply) {
    std::lock_guard lock(mu);
    got = std::move(reply);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return done; }));
  EXPECT_EQ(got.request_id, 1u);
  EXPECT_EQ(got.result_or_throw().as_i32(), 7);
  pool.stop();
  EXPECT_EQ(pool.dispatched(), 1u);
}

TEST(DispatchPoolTest, FifoPerObjectKey) {
  // Many workers, one key: execution must still be serial and in order.
  std::mutex mu;
  std::vector<std::uint64_t> order;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  DispatchPool pool({.threads = 8}, [&](const RequestMessage& req) {
    const int now = concurrent.fetch_add(1) + 1;
    int expected = max_concurrent.load();
    while (now > expected &&
           !max_concurrent.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(1ms);
    {
      std::lock_guard lock(mu);
      order.push_back(req.request_id);
    }
    concurrent.fetch_sub(1);
    return ReplyMessage::make_result(req.request_id, Value());
  });
  constexpr std::uint64_t kCalls = 64;
  for (std::uint64_t i = 0; i < kCalls; ++i)
    pool.submit(request_for("serial", i), {});
  pool.stop();  // drains before joining
  ASSERT_EQ(order.size(), kCalls);
  for (std::uint64_t i = 0; i < kCalls; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(max_concurrent.load(), 1);
}

TEST(DispatchPoolTest, DistinctKeysRunInParallel) {
  // Two keys, two workers: a request blocked on key A must not stop key B.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> b_done{false};
  DispatchPool pool({.threads = 2}, [&](const RequestMessage& req) {
    if (req.object_key == key_of("a")) {
      std::unique_lock lock(mu);
      cv.wait_for(lock, 5s, [&] { return release; });
    } else {
      b_done.store(true);
    }
    return ReplyMessage::make_result(req.request_id, Value());
  });
  pool.submit(request_for("a", 1), {});
  pool.submit(request_for("b", 2), {});
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!b_done.load() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(b_done.load()) << "key b was stuck behind key a";
  {
    std::lock_guard lock(mu);
    release = true;
    cv.notify_all();
  }
  pool.stop();
}

TEST(DispatchPoolTest, BoundedQueueBlocksSubmitter) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  DispatchPool pool({.threads = 1, .queue_limit = 2},
                    [&](const RequestMessage& req) {
                      std::unique_lock lock(mu);
                      cv.wait_for(lock, 5s, [&] { return release; });
                      return ReplyMessage::make_result(req.request_id, Value());
                    });
  pool.submit(request_for("k", 1), {});  // executing (blocked in dispatch)
  pool.submit(request_for("k", 2), {});  // queued; pool is now full
  std::atomic<bool> third_submitted{false};
  std::thread submitter([&] {
    pool.submit(request_for("k", 3), {});
    third_submitted.store(true);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(third_submitted.load()) << "submit did not block at the limit";
  EXPECT_EQ(pool.depth(), 2u);
  {
    std::lock_guard lock(mu);
    release = true;
    cv.notify_all();
  }
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  pool.stop();
  EXPECT_EQ(pool.dispatched(), 3u);
}

TEST(DispatchPoolTest, StopDrainsQueuedWork) {
  std::atomic<int> executed{0};
  DispatchPool pool({.threads = 1}, [&](const RequestMessage& req) {
    std::this_thread::sleep_for(1ms);
    executed.fetch_add(1);
    return ReplyMessage::make_result(req.request_id, Value());
  });
  for (std::uint64_t i = 0; i < 20; ++i) pool.submit(request_for("k", i), {});
  pool.stop();
  EXPECT_EQ(executed.load(), 20);
  EXPECT_EQ(pool.depth(), 0u);
}

TEST(DispatchPoolTest, SubmitAfterStopThrows) {
  DispatchPool pool({.threads = 1}, [](const RequestMessage& req) {
    return ReplyMessage::make_result(req.request_id, Value());
  });
  pool.stop();
  EXPECT_THROW(pool.submit(request_for("k", 1), {}), BAD_INV_ORDER);
}

TEST(DispatchPoolTest, CompletionExceptionIsSwallowed) {
  DispatchPool pool({.threads = 1}, [](const RequestMessage& req) {
    return ReplyMessage::make_result(req.request_id, Value());
  });
  pool.submit(request_for("k", 1),
              [](ReplyMessage) { throw std::runtime_error("dead connection"); });
  pool.stop();  // must not terminate / rethrow
  EXPECT_EQ(pool.dispatched(), 1u);
}

TEST(DispatchPoolTest, OnewayGetsNoCompletion) {
  std::atomic<bool> completed{false};
  DispatchPool pool({.threads = 1}, [](const RequestMessage& req) {
    return ReplyMessage::make_result(req.request_id, Value());
  });
  RequestMessage req = request_for("k", 1, /*response_expected=*/false);
  pool.submit(std::move(req), [&](ReplyMessage) { completed.store(true); });
  pool.stop();
  EXPECT_FALSE(completed.load());
  EXPECT_EQ(pool.dispatched(), 1u);
}

}  // namespace
}  // namespace corba
