// Tests of naming-service persistence: snapshot/restore of the full
// context tree (objects, offers, sub-contexts), the file-backed wrappers,
// and the checkpointable-object protocol — making the naming service
// restartable with the paper's own fault-tolerance machinery (§5 (a)).
#include <gtest/gtest.h>

#include <filesystem>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "orb/orb.hpp"

namespace naming {
namespace {

class NoopServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Noop:1.0";
  }
  corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
    throw corba::BAD_OPERATION(std::string(op));
  }
};

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    orb_ = corba::ORB::init({.endpoint_name = "names", .network = network_});
    auto [servant, ref] = NamingContextServant::create_root(orb_);
    root_ = servant;
    object_a_ = orb_->activate(std::make_shared<NoopServant>(), "a");
    object_b_ = orb_->activate(std::make_shared<NoopServant>(), "b");
    // A representative tree: plain object, offer set, nested contexts.
    root_->bind(Name::parse("service.kind"), object_a_);
    root_->bind_offer(Name::parse("pool"), object_a_, "host1");
    root_->bind_offer(Name::parse("pool"), object_b_, "host2");
    root_->bind_new_context(Name::parse("apps"));
    root_->bind_new_context(Name::parse("apps/opt"));
    root_->bind(Name::parse("apps/opt/worker"), object_b_);
  }

  void verify_tree(NamingContext& context) {
    EXPECT_EQ(context.resolve(Name::parse("service.kind")).ior(),
              object_a_.ior());
    const auto offers = context.list_offers(Name::parse("pool"));
    ASSERT_EQ(offers.size(), 2u);
    EXPECT_EQ(offers[0].host, "host1");
    EXPECT_EQ(offers[1].ref.ior(), object_b_.ior());
    EXPECT_EQ(context.resolve(Name::parse("apps/opt/worker")).ior(),
              object_b_.ior());
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> orb_;
  std::shared_ptr<NamingContextServant> root_;
  corba::ObjectRef object_a_, object_b_;
};

TEST_F(PersistenceTest, SnapshotRestoresIntoFreshRoot) {
  const corba::Blob snapshot = root_->get_state();
  auto [fresh, ref] = NamingContextServant::create_root(orb_);
  fresh->set_state(snapshot);
  verify_tree(*fresh);
}

TEST_F(PersistenceTest, RestoreReplacesExistingBindings) {
  auto [other, ref] = NamingContextServant::create_root(orb_);
  other->bind(Name::parse("stale"), object_a_);
  other->set_state(root_->get_state());
  EXPECT_THROW(other->resolve(Name::parse("stale")), NotFound);
  verify_tree(*other);
}

TEST_F(PersistenceTest, FileSnapshotsSurviveServiceRestart) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "naming.snapshot";
  std::filesystem::remove(path);
  root_->save_snapshot(path);

  // "Restart": a brand-new naming service process loads the snapshot.
  auto new_orb = corba::ORB::init({.endpoint_name = "names2",
                                   .network = network_});
  auto [restarted, ref] = NamingContextServant::create_root(new_orb);
  restarted->load_snapshot(path);
  verify_tree(*restarted);
  // The restored references still point at the live objects.
  EXPECT_TRUE(restarted->resolve(Name::parse("service.kind")).ping());
  std::filesystem::remove(path);
}

TEST_F(PersistenceTest, StateProtocolWorksOverTheWire) {
  // The naming service is itself a checkpointable object: a client (or an
  // ft::ProxyEngine) can checkpoint and restore it remotely.
  auto client = corba::ORB::init({.endpoint_name = "client",
                                  .network = network_});
  const corba::ObjectRef remote_root = client->make_ref(root_->self_ref().ior());
  const corba::Blob state = remote_root.invoke("_get_state", {}).as_blob();
  EXPECT_FALSE(state.empty());

  auto [fresh, ref] = NamingContextServant::create_root(orb_);
  const corba::ObjectRef remote_fresh = client->make_ref(ref.ior());
  remote_fresh.invoke("_set_state", {corba::Value(state)});
  NamingContextStub stub(remote_fresh);
  verify_tree(stub);
}

TEST_F(PersistenceTest, CorruptSnapshotsRejected) {
  auto [fresh, ref] = NamingContextServant::create_root(orb_);
  corba::Blob garbage{std::byte{9}, std::byte{9}};
  EXPECT_THROW(fresh->set_state(garbage), corba::MARSHAL);
  // A failed restore must not destroy existing bindings.
  fresh->bind(Name::parse("keep"), object_a_);
  EXPECT_THROW(fresh->set_state(garbage), corba::MARSHAL);
  EXPECT_EQ(fresh->resolve(Name::parse("keep")).ior(), object_a_.ior());
}

TEST_F(PersistenceTest, RoundRobinPositionIsNotPartOfTheState) {
  // Snapshot state is the *bindings*; transient cursor positions reset.
  root_->resolve_with(Name::parse("pool"), ResolveStrategy::round_robin);
  auto [fresh, ref] = NamingContextServant::create_root(orb_);
  fresh->set_state(root_->get_state());
  EXPECT_EQ(fresh->resolve_with(Name::parse("pool"),
                                ResolveStrategy::round_robin).ior(),
            object_a_.ior());  // starts from the first offer again
}

}  // namespace
}  // namespace naming
