// Tests of the per-name ranked-offer cache: winner resolves reuse the
// ranking while the manager's load epoch is unchanged, and the cache is
// invalidated by load-report ingest, placements and offer (un)binding.
// The quarantine filter is applied at pick time, NOT cached.
#include <gtest/gtest.h>

#include <set>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "obs/metrics.hpp"
#include "orb/orb.hpp"
#include "winner/system_manager.hpp"

namespace naming {
namespace {

class TagServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Tag:1.0";
  }
  corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
    throw corba::BAD_OPERATION(std::string(op));
  }
};

/// Forwarder that hides epoch tracking (load_epoch() = 0): callers must not
/// cache rankings through it.
class UntrackedWinner : public winner::LoadInformationService {
 public:
  explicit UntrackedWinner(std::shared_ptr<winner::SystemManager> inner)
      : inner_(std::move(inner)) {}
  void register_host(const std::string& n, double s) override {
    inner_->register_host(n, s);
  }
  void report_load(const std::string& n,
                   const winner::LoadSample& s) override {
    inner_->report_load(n, s);
  }
  std::string best_host(std::span<const std::string> c) override {
    return inner_->best_host(c);
  }
  std::vector<std::string> rank_hosts(
      std::span<const std::string> c) override {
    return inner_->rank_hosts(c);
  }
  void notify_placement(const std::string& h) override {
    inner_->notify_placement(h);
  }
  double host_index(const std::string& n) override {
    return inner_->host_index(n);
  }
  double host_speed(const std::string& n) override {
    return inner_->host_speed(n);
  }
  std::vector<std::string> known_hosts() override {
    return inner_->known_hosts();
  }
  // load_epoch() deliberately NOT overridden: stays 0.

 private:
  std::shared_ptr<winner::SystemManager> inner_;
};

class RankCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    server_ = corba::ORB::init({.endpoint_name = "names", .network = network_});
    winner_ = std::make_shared<winner::SystemManager>();
    for (int i = 0; i < 4; ++i) {
      winner_->register_host(host_name(i), 1.0);
      winner_->report_load(host_name(i), {double(i), 0.0});  // node0 best
    }
    hits_before_ = hits().value();
    misses_before_ = misses().value();
  }

  static std::string host_name(int i) { return "node" + std::to_string(i); }
  static obs::Counter& hits() {
    return obs::MetricsRegistry::global().counter(
        "naming.rank_cache_hits_total");
  }
  static obs::Counter& misses() {
    return obs::MetricsRegistry::global().counter(
        "naming.rank_cache_misses_total");
  }
  std::uint64_t new_hits() const { return hits().value() - hits_before_; }
  std::uint64_t new_misses() const {
    return misses().value() - misses_before_;
  }

  /// Root with winner strategy; placements NOT reported, so resolves alone
  /// do not advance the load epoch (the cache-friendly configuration).
  NamingContextStub make_root(int offer_count = 4,
                              bool notify_placements = false,
                              std::function<bool(const Name&, const Offer&)>
                                  filter = {},
                              std::shared_ptr<winner::LoadInformationService>
                                  winner_override = nullptr) {
    NamingContextOptions options;
    options.default_strategy = ResolveStrategy::winner;
    options.winner = winner_override ? winner_override : winner_;
    options.notify_placements = notify_placements;
    options.offer_filter = std::move(filter);
    auto [servant, ref] = NamingContextServant::create_root(server_, options);
    servant_ = servant;
    NamingContextStub root(server_->make_ref(ref.ior()));
    for (int i = 0; i < offer_count; ++i) {
      offers_.push_back(server_->activate(std::make_shared<TagServant>(),
                                          "w" + std::to_string(i)));
      root.bind_offer(Name::parse("pool"), offers_.back(), host_name(i));
    }
    return root;
  }

  int offer_index(const corba::ObjectRef& ref) const {
    for (std::size_t i = 0; i < offers_.size(); ++i)
      if (offers_[i].ior() == ref.ior()) return static_cast<int>(i);
    return -1;
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> server_;
  std::shared_ptr<winner::SystemManager> winner_;
  std::shared_ptr<NamingContextServant> servant_;
  std::vector<corba::ObjectRef> offers_;
  std::uint64_t hits_before_ = 0;
  std::uint64_t misses_before_ = 0;
};

TEST_F(RankCacheTest, RepeatedResolvesHitCacheWithinEpoch) {
  NamingContextStub root = make_root();
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);  // miss
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);  // hit
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);  // hit
  EXPECT_EQ(new_misses(), 1u);
  EXPECT_EQ(new_hits(), 2u);
}

TEST_F(RankCacheTest, LoadReportIngestInvalidatesCache) {
  NamingContextStub root = make_root();
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  winner_->report_load(host_name(0), {9.0, 0.0});  // node0 now worst
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 1);
  EXPECT_EQ(new_misses(), 2u);
  EXPECT_EQ(new_hits(), 0u);
}

TEST_F(RankCacheTest, PlacementNotificationInvalidatesCache) {
  // With notify_placements on, every successful resolve is itself a ranking
  // input — the paper's spreading behaviour must be preserved verbatim, so
  // consecutive resolves re-rank (all misses) and cover distinct hosts.
  for (int i = 0; i < 4; ++i)
    winner_->report_load(host_name(i), {0.0, 0.0});  // level the field
  NamingContextStub root = make_root(4, /*notify_placements=*/true);
  std::set<int> picked;
  for (int i = 0; i < 4; ++i)
    picked.insert(offer_index(root.resolve(Name::parse("pool"))));
  EXPECT_EQ(picked.size(), 4u);
  EXPECT_EQ(new_misses(), 4u);
  EXPECT_EQ(new_hits(), 0u);
}

TEST_F(RankCacheTest, BindOfferInvalidatesCache) {
  NamingContextStub root = make_root(3);  // node3 registered but unbound
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  EXPECT_EQ(new_hits() + new_misses(), 1u);
  // Binding an offer on an already-registered host changes no winner state
  // (no epoch bump) — the *membership* change alone must invalidate.
  offers_.push_back(server_->activate(std::make_shared<TagServant>(), "w3"));
  root.bind_offer(Name::parse("pool"), offers_.back(), host_name(3));
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  EXPECT_EQ(new_misses(), 2u);
}

TEST_F(RankCacheTest, UnbindOfferInvalidatesCache) {
  NamingContextStub root = make_root();
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  root.unbind_offer(Name::parse("pool"), host_name(0));
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 1);
  EXPECT_EQ(new_misses(), 2u);
  EXPECT_EQ(new_hits(), 0u);
}

TEST_F(RankCacheTest, FilterAppliedAtPickTimeWithoutInvalidation) {
  // Quarantining the best offer between two resolves must not force a
  // re-rank: the cached order is consulted and the filter applied live.
  std::set<std::string> quarantined;
  NamingContextStub root = make_root(
      4, false, [&](const Name&, const Offer& offer) {
        return !quarantined.contains(offer.host);
      });
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);  // miss
  quarantined.insert(host_name(0));
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 1);  // hit
  quarantined.erase(host_name(0));
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);  // hit
  EXPECT_EQ(new_misses(), 1u);
  EXPECT_EQ(new_hits(), 2u);
}

TEST_F(RankCacheTest, UntrackedWinnerNeverCaches) {
  auto untracked = std::make_shared<UntrackedWinner>(winner_);
  NamingContextStub root = make_root(4, false, {}, untracked);
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  EXPECT_EQ(new_misses(), 2u);
  EXPECT_EQ(new_hits(), 0u);
}

}  // namespace
}  // namespace naming
