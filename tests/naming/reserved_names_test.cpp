// Regression tests for the reserved `_obs` introspection namespace: names
// under it resolve exact-match only — first bound offer, no Winner ranking,
// no offer filter — and the reserved flag is hereditary across
// bind_new_context and get_state/set_state round-trips.
#include <gtest/gtest.h>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "orb/orb.hpp"
#include "winner/system_manager.hpp"

namespace naming {
namespace {

class ProbeServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Probe:1.0";
  }
  corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
    throw corba::BAD_OPERATION(std::string(op));
  }
};

class ReservedNamesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    server_ = corba::ORB::init({.endpoint_name = "names", .network = network_});
    winner_ = std::make_shared<winner::SystemManager>();
    // node1 is dramatically better than node0, so any Winner-ranked resolve
    // prefers it; a reserved resolve must ignore that and return the first
    // bound offer (node0's).
    winner_->register_host("node0", 1.0);
    winner_->register_host("node1", 1.0);
    winner_->report_load("node0", {.load_avg = 0.9, .timestamp = 0.0});
    winner_->report_load("node1", {.load_avg = 0.0, .timestamp = 0.0});
  }

  NamingContextStub make_root(NamingContextOptions options = {}) {
    options.winner = winner_;
    options.default_strategy = ResolveStrategy::winner;
    auto [servant, ref] = NamingContextServant::create_root(server_, options);
    servant_ = servant;
    return NamingContextStub(server_->make_ref(ref.ior()));
  }

  corba::ObjectRef activate_probe(const std::string& key) {
    return server_->activate(std::make_shared<ProbeServant>(), key);
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> server_;
  std::shared_ptr<winner::SystemManager> winner_;
  std::shared_ptr<NamingContextServant> servant_;
};

TEST(ReservedIds, PrefixRuleMatchesTheObsNamespace) {
  EXPECT_TRUE(is_reserved_id("_obs"));
  EXPECT_TRUE(is_reserved_id("_obs-shadow"));
  EXPECT_FALSE(is_reserved_id("obs"));
  EXPECT_FALSE(is_reserved_id("Solver"));
}

TEST_F(ReservedNamesTest, ReservedOffersSkipWinnerRanking) {
  NamingContextStub root = make_root();
  const corba::ObjectRef first = activate_probe("t0");
  const corba::ObjectRef second = activate_probe("t1");
  root.bind_offer(Name::parse("_obs-direct"), first, "node0");
  root.bind_offer(Name::parse("_obs-direct"), second, "node1");
  // Control: a plain name with the same offers goes to the better host.
  root.bind_offer(Name::parse("pool"), first, "node0");
  root.bind_offer(Name::parse("pool"), second, "node1");

  EXPECT_TRUE(root.resolve(Name::parse("pool")).ior() == second.ior());
  for (int i = 0; i < 4; ++i) {
    // Always the first bound offer — no ranking, no round-robin drift.
    EXPECT_TRUE(root.resolve(Name::parse("_obs-direct")).ior() == first.ior());
  }
}

TEST_F(ReservedNamesTest, ReservedContextIsHereditaryAndBypassesTheFilter) {
  NamingContextOptions options;
  // A filter that rejects everything: plain resolves starve, reserved
  // resolves (telemetry of quarantined hosts!) still work.
  options.offer_filter = [](const Name&, const Offer&) { return false; };
  NamingContextStub root = make_root(options);

  const corba::ObjectRef telemetry = activate_probe("telemetry");
  root.bind_new_context(Name::parse("_obs"));
  // `node0` is NOT itself a reserved id: only the inherited flag covers it.
  root.bind_offer(Name::parse("_obs/node0"), telemetry, "node0");
  root.bind_offer(Name::parse("plain"), telemetry, "node0");

  EXPECT_THROW(root.resolve(Name::parse("plain")), NotFound);
  EXPECT_TRUE(
      root.resolve(Name::parse("_obs/node0")).ior() == telemetry.ior());
}

TEST_F(ReservedNamesTest, ReservedFlagSurvivesStateRoundTrip) {
  NamingContextStub root = make_root();
  const corba::ObjectRef first = activate_probe("r0");
  const corba::ObjectRef second = activate_probe("r1");
  root.bind_new_context(Name::parse("_obs"));
  root.bind_offer(Name::parse("_obs/shared"), first, "node0");
  root.bind_offer(Name::parse("_obs/shared"), second, "node1");

  // Restore the tree into a fresh root (the naming service's own
  // checkpoint/restart path) and verify `_obs` children stay exact-match.
  const corba::Blob state = servant_->get_state();
  NamingContextOptions options;
  options.winner = winner_;
  options.default_strategy = ResolveStrategy::winner;
  auto [restored, ref] = NamingContextServant::create_root(server_, options);
  restored->set_state(state);
  NamingContextStub restored_root(server_->make_ref(ref.ior()));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(restored_root.resolve(Name::parse("_obs/shared")).ior() ==
                first.ior());
  }
}

TEST_F(ReservedNamesTest, ReservedNamesStayOutOfPlacementNotifications) {
  NamingContextStub root = make_root();
  const corba::ObjectRef probe = activate_probe("p0");
  root.bind_offer(Name::parse("_obs-quiet"), probe, "node1");
  const std::uint64_t epoch_before = winner_->load_epoch();
  const double index_before = winner_->host_index("node1");
  root.resolve(Name::parse("_obs-quiet"));
  // notify_placement would bump the manager's epoch and the host's selection
  // index; a reserved resolve must not touch the Winner at all.
  EXPECT_EQ(winner_->load_epoch(), epoch_before);
  EXPECT_DOUBLE_EQ(winner_->host_index("node1"), index_before);
}

}  // namespace
}  // namespace naming
