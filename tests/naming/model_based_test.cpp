// Model-based property test for the naming context: random operation
// sequences are applied both to the real servant (through the remote stub)
// and to a trivial in-memory reference model; observable behaviour must
// match exactly — results, exception types, and final listings.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <random>
#include <variant>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "orb/orb.hpp"

namespace naming {
namespace {

class NoopServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Noop:1.0";
  }
  corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
    throw corba::BAD_OPERATION(std::string(op));
  }
};

/// The reference model: one flat context with object/offer entries.
struct Model {
  struct Offers {
    std::vector<std::pair<std::string /*ior*/, std::string /*host*/>> offers;
  };
  using Entry = std::variant<std::string /*object ior*/, Offers>;
  std::map<std::string, Entry> entries;
};

enum class OpKind { bind, rebind, unbind, resolve_first, bind_offer,
                    unbind_offer, list_offers, list };

class ModelBasedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelBasedTest, RandomOperationSequencesMatchTheModel) {
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto orb = corba::ORB::init({.endpoint_name = "names", .network = network});
  auto [servant, root_ref] = NamingContextServant::create_root(orb);
  NamingContextStub context(orb->make_ref(root_ref.ior()));

  // A pool of distinct live objects to bind.
  std::vector<corba::ObjectRef> objects;
  for (int i = 0; i < 4; ++i)
    objects.push_back(orb->activate(std::make_shared<NoopServant>()));
  const std::vector<std::string> names = {"a", "b", "c"};
  const std::vector<std::string> hosts = {"h1", "h2"};

  Model model;
  std::mt19937_64 rng(GetParam());
  auto pick = [&](const auto& pool) -> const auto& {
    return pool[rng() % pool.size()];
  };

  for (int step = 0; step < 300; ++step) {
    const auto kind = static_cast<OpKind>(rng() % 8);
    const std::string& name = pick(names);
    const corba::ObjectRef& object = pick(objects);
    const std::string& host = pick(hosts);
    const std::string ior = object.ior().to_string();

    switch (kind) {
      case OpKind::bind: {
        const bool model_ok = !model.entries.count(name);
        try {
          context.bind(Name::parse(name), object);
          ASSERT_TRUE(model_ok) << "bind succeeded but model says bound";
          model.entries[name] = ior;
        } catch (const AlreadyBound&) {
          ASSERT_FALSE(model_ok) << "bind failed but model says free";
        }
        break;
      }
      case OpKind::rebind: {
        context.rebind(Name::parse(name), object);
        model.entries[name] = ior;  // rebind overwrites anything
        break;
      }
      case OpKind::unbind: {
        const bool model_ok = model.entries.count(name) != 0;
        try {
          context.unbind(Name::parse(name));
          ASSERT_TRUE(model_ok);
          model.entries.erase(name);
        } catch (const NotFound&) {
          ASSERT_FALSE(model_ok);
        }
        break;
      }
      case OpKind::resolve_first: {
        const auto it = model.entries.find(name);
        try {
          const corba::ObjectRef resolved =
              context.resolve_with(Name::parse(name), ResolveStrategy::first);
          ASSERT_NE(it, model.entries.end());
          const std::string expected =
              std::holds_alternative<std::string>(it->second)
                  ? std::get<std::string>(it->second)
                  : std::get<Model::Offers>(it->second).offers.front().first;
          ASSERT_EQ(resolved.ior().to_string(), expected);
        } catch (const NotFound&) {
          ASSERT_EQ(it, model.entries.end());
        }
        break;
      }
      case OpKind::bind_offer: {
        const auto it = model.entries.find(name);
        const bool model_ok =
            it == model.entries.end() ||
            std::holds_alternative<Model::Offers>(it->second);
        try {
          context.bind_offer(Name::parse(name), object, host);
          ASSERT_TRUE(model_ok);
          if (it == model.entries.end())
            model.entries[name] = Model::Offers{};
          std::get<Model::Offers>(model.entries[name])
              .offers.emplace_back(ior, host);
        } catch (const AlreadyBound&) {
          ASSERT_FALSE(model_ok);
        }
        break;
      }
      case OpKind::unbind_offer: {
        auto it = model.entries.find(name);
        const bool is_offers =
            it != model.entries.end() &&
            std::holds_alternative<Model::Offers>(it->second);
        bool model_ok = false;
        if (is_offers) {
          for (const auto& [offer_ior, offer_host] :
               std::get<Model::Offers>(it->second).offers)
            model_ok = model_ok || offer_host == host;
        }
        try {
          context.unbind_offer(Name::parse(name), host);
          ASSERT_TRUE(model_ok);
          auto& offers = std::get<Model::Offers>(it->second).offers;
          std::erase_if(offers,
                        [&](const auto& offer) { return offer.second == host; });
          if (offers.empty()) model.entries.erase(it);
        } catch (const NotFound&) {
          ASSERT_FALSE(model_ok);
        }
        break;
      }
      case OpKind::list_offers: {
        const auto it = model.entries.find(name);
        const bool is_offers =
            it != model.entries.end() &&
            std::holds_alternative<Model::Offers>(it->second);
        try {
          const std::vector<Offer> offers =
              context.list_offers(Name::parse(name));
          ASSERT_TRUE(is_offers);
          const auto& expected = std::get<Model::Offers>(it->second).offers;
          ASSERT_EQ(offers.size(), expected.size());
          for (std::size_t i = 0; i < offers.size(); ++i) {
            ASSERT_EQ(offers[i].ref.ior().to_string(), expected[i].first);
            ASSERT_EQ(offers[i].host, expected[i].second);
          }
        } catch (const NotFound&) {
          ASSERT_FALSE(is_offers);
        }
        break;
      }
      case OpKind::list: {
        const std::vector<Binding> bindings = context.list();
        ASSERT_EQ(bindings.size(), model.entries.size());
        for (const Binding& binding : bindings) {
          const auto it = model.entries.find(binding.name.to_string());
          ASSERT_NE(it, model.entries.end());
          const bool is_offers =
              std::holds_alternative<Model::Offers>(it->second);
          ASSERT_EQ(binding.offer_count > 0, is_offers);
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelBasedTest,
                         ::testing::Values(1, 7, 42, 1999, 20260704));

}  // namespace
}  // namespace naming
