// Tests of the load distribution extension: resolve strategies, Winner
// integration (best-host selection, placement spreading, dead-host
// avoidance) and the degraded-mode fallback.
#include <gtest/gtest.h>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "orb/orb.hpp"
#include "winner/system_manager.hpp"
#include "winner/system_manager_corba.hpp"

namespace naming {
namespace {

class TagServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Tag:1.0";
  }
  corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
    throw corba::BAD_OPERATION(std::string(op));
  }
};

class LoadBalancingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    server_ = corba::ORB::init({.endpoint_name = "names", .network = network_});
    winner_ = std::make_shared<winner::SystemManager>();
    for (int i = 0; i < 4; ++i) {
      const std::string host = host_name(i);
      winner_->register_host(host, 1.0);
      winner_->report_load(host, {0.0, 0.0});
    }
  }

  static std::string host_name(int i) { return "node" + std::to_string(i); }

  /// Creates a root with the given strategy and binds one offer per host.
  NamingContextStub make_root(ResolveStrategy strategy,
                              int offer_count = 4) {
    NamingContextOptions options;
    options.default_strategy = strategy;
    options.winner = winner_;
    options.random_seed = 7;
    auto [servant, ref] = NamingContextServant::create_root(server_, options);
    servant_ = servant;
    NamingContextStub root(server_->make_ref(ref.ior()));
    for (int i = 0; i < offer_count; ++i) {
      offers_.push_back(server_->activate(std::make_shared<TagServant>(),
                                          "w" + std::to_string(i)));
      root.bind_offer(Name::parse("pool"), offers_.back(), host_name(i));
    }
    return root;
  }

  int offer_index(const corba::ObjectRef& ref) const {
    for (std::size_t i = 0; i < offers_.size(); ++i)
      if (offers_[i].ior() == ref.ior()) return static_cast<int>(i);
    return -1;
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> server_;
  std::shared_ptr<winner::SystemManager> winner_;
  std::shared_ptr<NamingContextServant> servant_;
  std::vector<corba::ObjectRef> offers_;
};

TEST_F(LoadBalancingTest, RoundRobinCyclesThroughOffers) {
  NamingContextStub root = make_root(ResolveStrategy::round_robin);
  std::vector<int> picks;
  for (int i = 0; i < 8; ++i)
    picks.push_back(offer_index(root.resolve(Name::parse("pool"))));
  EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST_F(LoadBalancingTest, RandomIsDeterministicPerSeedAndCoversOffers) {
  NamingContextStub root = make_root(ResolveStrategy::random);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 200; ++i) {
    const int index = offer_index(root.resolve(Name::parse("pool")));
    ASSERT_GE(index, 0);
    ++counts[static_cast<std::size_t>(index)];
  }
  for (int count : counts) EXPECT_GT(count, 20);  // roughly uniform
}

TEST_F(LoadBalancingTest, WinnerPicksLeastLoadedHost) {
  winner_->report_load(host_name(0), {5.0, 0.0});
  winner_->report_load(host_name(1), {3.0, 0.0});
  winner_->report_load(host_name(2), {0.5, 0.0});
  winner_->report_load(host_name(3), {4.0, 0.0});
  NamingContextStub root = make_root(ResolveStrategy::winner);
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 2);
}

TEST_F(LoadBalancingTest, ConsecutiveWinnerResolvesSpreadAcrossHosts) {
  // The crucial property for placing k workers: k resolves yield k distinct
  // machines because each selection is reported as a placement.
  NamingContextStub root = make_root(ResolveStrategy::winner);
  std::set<int> picked;
  for (int i = 0; i < 4; ++i)
    picked.insert(offer_index(root.resolve(Name::parse("pool"))));
  EXPECT_EQ(picked.size(), 4u);
}

TEST_F(LoadBalancingTest, WinnerAvoidsLoadedHosts) {
  // Background load on nodes 0 and 2: four resolves must prefer 1 and 3
  // first, then reuse the least loaded.
  winner_->report_load(host_name(0), {1.0, 0.0});
  winner_->report_load(host_name(2), {1.0, 0.0});
  NamingContextStub root = make_root(ResolveStrategy::winner);
  const int first = offer_index(root.resolve(Name::parse("pool")));
  const int second = offer_index(root.resolve(Name::parse("pool")));
  EXPECT_TRUE((first == 1 && second == 3) || (first == 3 && second == 1));
}

TEST_F(LoadBalancingTest, ExplicitStrategyOverridesDefault) {
  NamingContextStub root = make_root(ResolveStrategy::first);
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  EXPECT_EQ(offer_index(root.resolve_with(Name::parse("pool"),
                                          ResolveStrategy::round_robin)),
            0);
  EXPECT_EQ(offer_index(root.resolve_with(Name::parse("pool"),
                                          ResolveStrategy::round_robin)),
            1);
}

TEST_F(LoadBalancingTest, ResolveOnPlainObjectIgnoresStrategy) {
  NamingContextStub root = make_root(ResolveStrategy::winner, 0);
  const corba::ObjectRef obj =
      server_->activate(std::make_shared<TagServant>());
  root.bind(Name::parse("single"), obj);
  EXPECT_EQ(root.resolve(Name::parse("single")).ior(), obj.ior());
}

TEST_F(LoadBalancingTest, WinnerFallsBackWhenNoFreshHost) {
  // A system manager that knows nothing: with fallback enabled, resolve
  // degrades to round robin instead of failing.
  winner_ = std::make_shared<winner::SystemManager>();
  NamingContextStub root = make_root(ResolveStrategy::winner);
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 1);
}

TEST_F(LoadBalancingTest, WinnerStrictModeRaises) {
  winner_ = std::make_shared<winner::SystemManager>();
  NamingContextOptions options;
  options.default_strategy = ResolveStrategy::winner;
  options.winner = winner_;
  options.winner_fallback = false;
  auto [servant, ref] = NamingContextServant::create_root(server_, options);
  NamingContextStub root(server_->make_ref(ref.ior()));
  root.bind_offer(Name::parse("pool"),
                  server_->activate(std::make_shared<TagServant>()), "nodeX");
  EXPECT_THROW(root.resolve(Name::parse("pool")), winner::NoHostAvailable);
}

TEST_F(LoadBalancingTest, RemoteWinnerThroughStubWorksToo) {
  // Wire the naming service to the system manager via CORBA (as deployed in
  // the paper's Fig. 1): the naming servant holds a SystemManagerStub.
  auto winner_orb =
      corba::ORB::init({.endpoint_name = "winner", .network = network_});
  const corba::ObjectRef manager_ref = winner_orb->activate(
      std::make_shared<winner::SystemManagerServant>(winner_), "SystemManager");
  auto remote_winner = std::make_shared<winner::SystemManagerStub>(
      server_->make_ref(manager_ref.ior()));

  winner_->report_load(host_name(1), {9.0, 0.0});
  winner_->report_load(host_name(2), {9.0, 0.0});
  winner_->report_load(host_name(3), {9.0, 0.0});

  NamingContextOptions options;
  options.default_strategy = ResolveStrategy::winner;
  options.winner = remote_winner;
  auto [servant, ref] = NamingContextServant::create_root(server_, options);
  NamingContextStub root(server_->make_ref(ref.ior()));
  for (int i = 0; i < 4; ++i) {
    offers_.push_back(server_->activate(std::make_shared<TagServant>()));
    root.bind_offer(Name::parse("pool"), offers_.back(), host_name(i));
  }
  EXPECT_EQ(offer_index(root.resolve(Name::parse("pool"))), 0);

  // If the Winner service dies, resolution degrades gracefully.
  winner_orb->shutdown();
  EXPECT_NO_THROW(root.resolve(Name::parse("pool")));
}

TEST_F(LoadBalancingTest, StrategyNamesParse) {
  EXPECT_EQ(parse_strategy("first"), ResolveStrategy::first);
  EXPECT_EQ(parse_strategy("round_robin"), ResolveStrategy::round_robin);
  EXPECT_EQ(parse_strategy("random"), ResolveStrategy::random);
  EXPECT_EQ(parse_strategy("winner"), ResolveStrategy::winner);
  EXPECT_THROW(parse_strategy("best"), corba::BAD_PARAM);
  EXPECT_EQ(to_string(ResolveStrategy::winner), "winner");
}

}  // namespace
}  // namespace naming
