// Unit tests for compound names: parsing, stringification, escaping.
#include "naming/name.hpp"

#include <gtest/gtest.h>

namespace naming {
namespace {

TEST(Name, ParseSingleComponent) {
  const Name name = Name::parse("workers");
  ASSERT_EQ(name.size(), 1u);
  EXPECT_EQ(name[0].id, "workers");
  EXPECT_EQ(name[0].kind, "");
}

TEST(Name, ParseComponentWithKind) {
  const Name name = Name::parse("worker.service");
  ASSERT_EQ(name.size(), 1u);
  EXPECT_EQ(name[0].id, "worker");
  EXPECT_EQ(name[0].kind, "service");
}

TEST(Name, ParseCompound) {
  const Name name = Name::parse("apps/optimization/worker.obj");
  ASSERT_EQ(name.size(), 3u);
  EXPECT_EQ(name[0].id, "apps");
  EXPECT_EQ(name[1].id, "optimization");
  EXPECT_EQ(name[2].id, "worker");
  EXPECT_EQ(name[2].kind, "obj");
}

TEST(Name, RoundTripWithEscapes) {
  const Name original{NameComponent{"a/b", "c.d"}, NameComponent{"e\\f", ""}};
  const std::string text = original.to_string();
  EXPECT_EQ(Name::parse(text), original);
}

TEST(Name, EscapedMetacharactersParse) {
  const Name name = Name::parse("weird\\/id\\.still\\\\one");
  ASSERT_EQ(name.size(), 1u);
  EXPECT_EQ(name[0].id, "weird/id.still\\one");
}

TEST(Name, InvalidNamesRejected) {
  EXPECT_THROW(Name::parse(""), InvalidName);
  EXPECT_THROW(Name::parse("a//b"), InvalidName);
  EXPECT_THROW(Name::parse("a/"), InvalidName);
  EXPECT_THROW(Name::parse("a.b.c"), InvalidName);
  EXPECT_THROW(Name::parse("trailing\\"), InvalidName);
}

TEST(Name, KindOnlyComponentAllowed) {
  // CosNaming permits empty ids with a kind (".kind").
  const Name name = Name::parse(".config");
  ASSERT_EQ(name.size(), 1u);
  EXPECT_EQ(name[0].id, "");
  EXPECT_EQ(name[0].kind, "config");
  EXPECT_EQ(name.to_string(), ".config");
}

TEST(Name, TailDropsFirstComponent) {
  const Name name = Name::parse("a/b/c");
  EXPECT_EQ(name.tail(), Name::parse("b/c"));
  EXPECT_THROW(Name().tail(), InvalidName);
}

TEST(Name, AppendBuildsNames) {
  Name name;
  name.append("apps").append("worker", "obj");
  EXPECT_EQ(name.to_string(), "apps/worker.obj");
}

TEST(Name, EqualityIsStructural) {
  EXPECT_EQ(Name::parse("a/b"), Name::parse("a/b"));
  EXPECT_FALSE(Name::parse("a/b") == Name::parse("a/b.c"));
}

}  // namespace
}  // namespace naming
