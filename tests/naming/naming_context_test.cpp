// Unit tests for standard CosNaming semantics of the naming context,
// exercised remotely through the stub (the way applications use it).
#include <gtest/gtest.h>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "orb/orb.hpp"

namespace naming {
namespace {

class NoopServant : public corba::Servant {
 public:
  explicit NoopServant(std::string id = "IDL:corbaft/tests/Noop:1.0")
      : id_(std::move(id)) {}
  std::string_view repo_id() const noexcept override { return id_; }
  corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
    throw corba::BAD_OPERATION(std::string(op));
  }

 private:
  std::string id_;
};

class NamingContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    server_ = corba::ORB::init({.endpoint_name = "names", .network = network_});
    client_ = corba::ORB::init({.endpoint_name = "app", .network = network_});
    auto [servant, ref] = NamingContextServant::create_root(server_);
    root_servant_ = servant;
    root_ = NamingContextStub(client_->make_ref(ref.ior()));
  }

  corba::ObjectRef make_object(std::string_view hint = "obj") {
    return server_->activate(std::make_shared<NoopServant>(), hint);
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> server_, client_;
  std::shared_ptr<NamingContextServant> root_servant_;
  NamingContextStub root_;
};

TEST_F(NamingContextTest, BindAndResolve) {
  const corba::ObjectRef obj = make_object();
  root_.bind(Name::parse("service"), obj);
  EXPECT_EQ(root_.resolve(Name::parse("service")).ior(), obj.ior());
}

TEST_F(NamingContextTest, ResolveUnboundRaisesNotFound) {
  EXPECT_THROW(root_.resolve(Name::parse("ghost")), NotFound);
}

TEST_F(NamingContextTest, DoubleBindRaisesAlreadyBound) {
  root_.bind(Name::parse("service"), make_object());
  EXPECT_THROW(root_.bind(Name::parse("service"), make_object()), AlreadyBound);
}

TEST_F(NamingContextTest, RebindReplaces) {
  const corba::ObjectRef first = make_object("first");
  const corba::ObjectRef second = make_object("second");
  root_.bind(Name::parse("service"), first);
  root_.rebind(Name::parse("service"), second);
  EXPECT_EQ(root_.resolve(Name::parse("service")).ior(), second.ior());
}

TEST_F(NamingContextTest, UnbindRemoves) {
  root_.bind(Name::parse("service"), make_object());
  root_.unbind(Name::parse("service"));
  EXPECT_THROW(root_.resolve(Name::parse("service")), NotFound);
  EXPECT_THROW(root_.unbind(Name::parse("service")), NotFound);
}

TEST_F(NamingContextTest, KindDistinguishesBindings) {
  const corba::ObjectRef a = make_object("a");
  const corba::ObjectRef b = make_object("b");
  root_.bind(Name::parse("svc.alpha"), a);
  root_.bind(Name::parse("svc.beta"), b);
  EXPECT_EQ(root_.resolve(Name::parse("svc.alpha")).ior(), a.ior());
  EXPECT_EQ(root_.resolve(Name::parse("svc.beta")).ior(), b.ior());
}

TEST_F(NamingContextTest, SubContextsAndCompoundNames) {
  root_.bind_new_context(Name::parse("apps"));
  root_.bind_new_context(Name::parse("apps/opt"));
  const corba::ObjectRef obj = make_object();
  root_.bind(Name::parse("apps/opt/worker"), obj);
  EXPECT_EQ(root_.resolve(Name::parse("apps/opt/worker")).ior(), obj.ior());

  // Resolving the intermediate name yields the context reference, which can
  // be used as a root of its own.
  NamingContextStub apps = root_.context(Name::parse("apps"));
  EXPECT_EQ(apps.resolve(Name::parse("opt/worker")).ior(), obj.ior());
}

TEST_F(NamingContextTest, BindThroughMissingContextRaisesNotFound) {
  EXPECT_THROW(root_.bind(Name::parse("nowhere/worker"), make_object()),
               NotFound);
}

TEST_F(NamingContextTest, BindThroughNonContextRaisesNotFound) {
  root_.bind(Name::parse("leaf"), make_object());
  EXPECT_THROW(root_.resolve(Name::parse("leaf/below")), NotFound);
}

TEST_F(NamingContextTest, BindNewContextTwiceRaisesAlreadyBound) {
  root_.bind_new_context(Name::parse("apps"));
  EXPECT_THROW(root_.bind_new_context(Name::parse("apps")), AlreadyBound);
}

TEST_F(NamingContextTest, ListShowsBindingTypes) {
  root_.bind(Name::parse("object"), make_object());
  root_.bind_new_context(Name::parse("ctx"));
  root_.bind_offer(Name::parse("offers"), make_object(), "host1");
  root_.bind_offer(Name::parse("offers"), make_object(), "host2");

  const std::vector<Binding> bindings = root_.list();
  ASSERT_EQ(bindings.size(), 3u);
  for (const Binding& binding : bindings) {
    if (binding.name == Name::parse("object")) {
      EXPECT_FALSE(binding.is_context);
      EXPECT_EQ(binding.offer_count, 0u);
    } else if (binding.name == Name::parse("ctx")) {
      EXPECT_TRUE(binding.is_context);
    } else {
      EXPECT_EQ(binding.name, Name::parse("offers"));
      EXPECT_EQ(binding.offer_count, 2u);
    }
  }
}

TEST_F(NamingContextTest, InvalidNameStringCrossesWire) {
  EXPECT_THROW(root_.resolve_str("a//b"), InvalidName);
}

TEST_F(NamingContextTest, OffersOverPlainBindingRejectedAndViceVersa) {
  root_.bind(Name::parse("plain"), make_object());
  EXPECT_THROW(root_.bind_offer(Name::parse("plain"), make_object(), "h"),
               AlreadyBound);
  root_.bind_offer(Name::parse("pool"), make_object(), "h");
  EXPECT_THROW(root_.bind(Name::parse("pool"), make_object()), AlreadyBound);
}

TEST_F(NamingContextTest, OfferLifecycle) {
  const corba::ObjectRef a = make_object("a");
  const corba::ObjectRef b = make_object("b");
  root_.bind_offer(Name::parse("pool"), a, "host1");
  root_.bind_offer(Name::parse("pool"), b, "host2");
  auto offers = root_.list_offers(Name::parse("pool"));
  ASSERT_EQ(offers.size(), 2u);
  EXPECT_EQ(offers[0].host, "host1");
  EXPECT_EQ(offers[1].host, "host2");

  root_.unbind_offer(Name::parse("pool"), "host1");
  offers = root_.list_offers(Name::parse("pool"));
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.ior(), b.ior());

  EXPECT_THROW(root_.unbind_offer(Name::parse("pool"), "host1"), NotFound);
  // Removing the last offer unbinds the name entirely.
  root_.unbind_offer(Name::parse("pool"), "host2");
  EXPECT_THROW(root_.resolve(Name::parse("pool")), NotFound);
}

TEST_F(NamingContextTest, ListOffersOnPlainBindingRaises) {
  root_.bind(Name::parse("plain"), make_object());
  EXPECT_THROW(root_.list_offers(Name::parse("plain")), NotFound);
  EXPECT_THROW(root_.list_offers(Name::parse("missing")), NotFound);
}

TEST_F(NamingContextTest, DefaultResolveOnOffersReturnsFirst) {
  const corba::ObjectRef a = make_object("a");
  const corba::ObjectRef b = make_object("b");
  root_.bind_offer(Name::parse("pool"), a, "host1");
  root_.bind_offer(Name::parse("pool"), b, "host2");
  // Default strategy of a plain context is `first`: behaves like a naming
  // service that knows nothing about load.
  EXPECT_EQ(root_.resolve(Name::parse("pool")).ior(), a.ior());
  EXPECT_EQ(root_.resolve(Name::parse("pool")).ior(), a.ior());
}

}  // namespace
}  // namespace naming
