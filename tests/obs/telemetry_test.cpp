// Wire round-trip tests of the in-band telemetry servant: the GIOP-lite
// operations a remote orbtop drives, the `_obs/<host>` registration helper,
// and the orbtop renderings over a real (in-process) naming tree.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/orbtop.hpp"
#include "obs/trace.hpp"
#include "orb/orb.hpp"

namespace obs {
namespace {

TEST(HealthReport, ValueRoundTripPreservesEveryField) {
  HealthReport report;
  report.host = "node3";
  report.now = 12.5;
  report.report_age = 0.25;
  report.load_index = 1.75;
  report.quarantined = 1;
  report.dispatch_queue_depth = 7;
  report.rpcs = 12345;
  report.rpc_p50 = 0.001;
  report.rpc_p99 = 0.05;
  report.recoveries = 3;
  report.checkpoints = 99;
  report.checkpoint_bytes = 4096;
  report.flight_recorded = 555;
  report.auto_dumps = 2;

  const HealthReport back = HealthReport::from_value(report.to_value());
  EXPECT_EQ(back.host, "node3");
  EXPECT_DOUBLE_EQ(back.now, 12.5);
  EXPECT_DOUBLE_EQ(back.report_age, 0.25);
  EXPECT_DOUBLE_EQ(back.load_index, 1.75);
  EXPECT_EQ(back.quarantined, 1u);
  EXPECT_EQ(back.dispatch_queue_depth, 7u);
  EXPECT_EQ(back.rpcs, 12345u);
  EXPECT_DOUBLE_EQ(back.rpc_p50, 0.001);
  EXPECT_DOUBLE_EQ(back.rpc_p99, 0.05);
  EXPECT_EQ(back.recoveries, 3u);
  EXPECT_EQ(back.checkpoints, 99u);
  EXPECT_EQ(back.checkpoint_bytes, 4096u);
  EXPECT_EQ(back.flight_recorded, 555u);
  EXPECT_EQ(back.auto_dumps, 2u);
}

TEST(HealthReport, FromValueRejectsMalformedSequences) {
  EXPECT_THROW(HealthReport::from_value(corba::Value(corba::ValueSeq{})),
               corba::BAD_PARAM);
  EXPECT_THROW(HealthReport::from_value(corba::Value(std::string("nope"))),
               corba::BAD_PARAM);
}

class TelemetryWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    server_ = corba::ORB::init({.endpoint_name = "node0", .network = network_});
    client_ = corba::ORB::init({.endpoint_name = "app", .network = network_});
    auto [servant, ref] = naming::NamingContextServant::create_root(server_);
    root_servant_ = servant;
    root_ = naming::NamingContextStub(client_->make_ref(ref.ior()));
  }

  TelemetryStub install(TelemetryOptions options) {
    const corba::ObjectRef ref =
        obs::install_telemetry(server_, *root_servant_, std::move(options));
    return TelemetryStub(client_->make_ref(ref.ior()));
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> server_, client_;
  std::shared_ptr<naming::NamingContextServant> root_servant_;
  naming::NamingContextStub root_;
};

TEST_F(TelemetryWireTest, MetricsCrossTheWireInEveryFormat) {
  MetricsRegistry::global().counter("orb.requests_total").inc();
  TelemetryStub telemetry = install({.host = "node0"});
  EXPECT_TRUE(telemetry.is_a(kTelemetryRepoId));

  const std::string text = telemetry.get_metrics("text");
  EXPECT_NE(text.find("orb.requests_total counter"), std::string::npos);
  const std::string json = telemetry.get_metrics("json");
  EXPECT_EQ(json.find("{\"schema_version\": 1, \"metrics\": ["), 0u);
  EXPECT_NE(json.find("\"taken_at\": "), std::string::npos);
  const std::string prom = telemetry.get_metrics("prometheus");
  EXPECT_NE(prom.find("orb_requests_total"), std::string::npos);
  EXPECT_THROW(telemetry.get_metrics("xml"), corba::SystemException);
}

TEST_F(TelemetryWireTest, FlightRecorderAndTimelineDumpsCrossTheWire) {
  FlightRecorder::global().record(FlightEvent::rpc_start, "probe-op", 42);
  TelemetryStub telemetry = install({.host = "node0"});
  const std::string flight = telemetry.get_flight_recorder();
  EXPECT_EQ(flight.find("flight-recorder: "), 0u);
  EXPECT_NE(flight.find("probe-op"), std::string::npos);
  // No timeline installed: empty, not an error.
  EXPECT_EQ(telemetry.get_timeline(), "");
}

TEST_F(TelemetryWireTest, SpansRespectTheLimit) {
  SpanCollector spans;
  spans.install();
  { Span a("test.alpha"); }
  { Span b("test.beta"); }
  { Span c("test.gamma"); }
  set_trace_sink(nullptr);

  TelemetryOptions options;
  options.host = "node0";
  options.spans = &spans;
  TelemetryStub telemetry = install(std::move(options));
  const std::string all = telemetry.get_spans(0);
  EXPECT_NE(all.find("test.alpha"), std::string::npos);
  EXPECT_NE(all.find("test.gamma"), std::string::npos);
  const std::string last = telemetry.get_spans(1);
  EXPECT_EQ(last.find("test.alpha"), std::string::npos);
  EXPECT_NE(last.find("test.gamma"), std::string::npos);
}

TEST_F(TelemetryWireTest, HealthMergesCallbacksAndMetrics) {
  TelemetryOptions options;
  options.host = "node0";
  options.report_age = [] { return 0.5; };
  options.load_index = [] { return 2.25; };
  options.quarantined = [] { return std::uint64_t{3}; };
  options.dispatch_queue_depth = [] { return std::uint64_t{9}; };
  TelemetryStub telemetry = install(std::move(options));

  MetricsRegistry::global().counter("orb.requests_total").inc();
  const HealthReport health = telemetry.health();
  EXPECT_EQ(health.host, "node0");
  EXPECT_DOUBLE_EQ(health.report_age, 0.5);
  EXPECT_DOUBLE_EQ(health.load_index, 2.25);
  EXPECT_EQ(health.quarantined, 3u);
  EXPECT_EQ(health.dispatch_queue_depth, 9u);
  EXPECT_GE(health.rpcs, 1u);
}

TEST_F(TelemetryWireTest, HealthReportsUnknownWithoutCallbacks) {
  TelemetryStub telemetry = install({.host = "node0"});
  const HealthReport health = telemetry.health();
  EXPECT_DOUBLE_EQ(health.report_age, -1.0);
  EXPECT_DOUBLE_EQ(health.load_index, -1.0);
  EXPECT_EQ(health.quarantined, 0u);
  EXPECT_EQ(health.dispatch_queue_depth, 0u);
}

TEST_F(TelemetryWireTest, InstallBindsUnderReservedPathAndReplacesOnRestart) {
  install({.host = "node0"});
  const corba::ObjectRef first = root_.resolve(naming::Name::parse("_obs/node0"));
  ASSERT_FALSE(first.is_nil());
  // A restarted node re-installs; rebind replaces the stale registration
  // instead of raising AlreadyBound.
  install({.host = "node0"});
  const corba::ObjectRef second =
      root_.resolve(naming::Name::parse("_obs/node0"));
  EXPECT_FALSE(second.ior() == first.ior());
  // A second host shares the `_obs` context.
  install({.host = "node1"});
  EXPECT_FALSE(root_.resolve(naming::Name::parse("_obs/node1")).is_nil());
}

TEST_F(TelemetryWireTest, OrbtopCollectsRendersAndEmitsJson) {
  install({.host = "node0", .load_index = [] { return 1.0; }});
  install({.host = "node1", .load_index = [] { return 0.5; }});

  const ClusterSnapshot snapshot = collect_cluster(root_);
  ASSERT_EQ(snapshot.nodes.size(), 2u);
  EXPECT_EQ(snapshot.nodes[0].name, "node0");
  EXPECT_TRUE(snapshot.nodes[0].reachable);
  EXPECT_EQ(snapshot.nodes[1].name, "node1");

  const std::string table = render_table(snapshot);
  EXPECT_EQ(table.find("HOST"), 0u);
  // node1 has the lower (better) load index and ranks first.
  EXPECT_LT(table.find("node1"), table.find("node0"));

  const std::string json = render_json(snapshot);
  EXPECT_EQ(json.find("{\"schema_version\": 1, \"collected_at\": "), 0u);
  EXPECT_NE(json.find("\"name\": \"node0\", \"reachable\": true"),
            std::string::npos);
  EXPECT_NE(json.find("\"load_index\": 0.5"), std::string::npos);
}

TEST_F(TelemetryWireTest, OrbtopKeepsUnreachableNodesInTheTable) {
  install({.host = "node0"});
  // A stale registration pointing at a deactivated object: the row must
  // survive as "unreachable", not break the whole collection.
  auto dead = std::make_shared<TelemetryServant>(TelemetryOptions{.host = "x"});
  const corba::ObjectRef dead_ref = server_->activate(dead, "DeadTelemetry");
  root_.rebind(naming::Name::parse("_obs/ghost"), dead_ref);
  server_->adapter().deactivate(dead_ref.ior().key);

  const ClusterSnapshot snapshot = collect_cluster(root_);
  ASSERT_EQ(snapshot.nodes.size(), 2u);
  EXPECT_EQ(snapshot.nodes[0].name, "ghost");
  EXPECT_FALSE(snapshot.nodes[0].reachable);
  EXPECT_FALSE(snapshot.nodes[0].error.empty());
  EXPECT_TRUE(snapshot.nodes[1].reachable);
  const std::string json = render_json(snapshot);
  EXPECT_NE(json.find("\"reachable\": false, \"error\": "), std::string::npos);
}

}  // namespace
}  // namespace obs
