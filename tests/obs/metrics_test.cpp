// Unit tests for the metrics registry: counters, gauges, histogram bucket
// semantics, snapshot merging and the exporters.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// Bounds are *inclusive upper* bounds, with an implicit overflow bucket.
TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h("test.hist", {1.0, 2.0, 5.0});
  h.record(0.5);   // bucket 0: <= 1
  h.record(1.0);   // bucket 0: boundary value stays in the lower bucket
  h.record(1.001); // bucket 1
  h.record(2.0);   // bucket 1
  h.record(5.0);   // bucket 2
  h.record(5.001); // bucket 3 (overflow)
  h.record(100.0); // bucket 3 (overflow)

  const auto s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 2u);
  EXPECT_EQ(s.count, 7u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 + 100.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram("test.bad", {2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, MeanAndQuantile) {
  Histogram h("test.hist", {1.0, 2.0, 5.0});
  for (int i = 0; i < 8; ++i) h.record(0.5);
  h.record(1.5);
  h.record(10.0);

  const auto s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.mean(), (8 * 0.5 + 1.5 + 10.0) / 10.0);
  // 10 samples: p50 lands in the first bucket (<=1), p90 in (1,2], the
  // overflow bucket reports the last finite bound.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  // Out-of-range q is clamped; an empty snapshot reports 0.
  EXPECT_DOUBLE_EQ(s.quantile(7.0), 5.0);
  EXPECT_DOUBLE_EQ(Histogram("test.empty", {1.0}).snapshot().quantile(0.5),
                   0.0);
}

TEST(Histogram, MergeAddsSamplesAndChecksBounds) {
  Histogram a("test.a", {1.0, 2.0});
  Histogram b("test.b", {1.0, 2.0});
  a.record(0.5);
  b.record(1.5);
  b.record(3.0);

  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.sum, 5.0);
  EXPECT_EQ(merged.buckets[0], 1u);
  EXPECT_EQ(merged.buckets[1], 1u);
  EXPECT_EQ(merged.buckets[2], 1u);

  Histogram other("test.other", {1.0, 3.0});
  auto bad = a.snapshot();
  EXPECT_THROW(bad.merge(other.snapshot()), std::invalid_argument);
}

TEST(Registry, HandlesAreStableAndKindChecked) {
  MetricsRegistry registry;
  Counter& c = registry.counter("layer.events_total");
  Counter& again = registry.counter("layer.events_total");
  EXPECT_EQ(&c, &again);
  EXPECT_THROW(registry.gauge("layer.events_total"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("layer.events_total"),
               std::invalid_argument);
  Histogram& h = registry.histogram("layer.latency_s", {1.0, 2.0});
  EXPECT_EQ(&h, &registry.histogram("layer.latency_s", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("layer.latency_s", {1.0, 3.0}),
               std::invalid_argument);
}

TEST(Registry, SnapshotIsNameSortedAndResetZeroesInPlace) {
  MetricsRegistry registry;
  Counter& c = registry.counter("z.count");
  registry.gauge("a.gauge").set(3.0);
  registry.histogram("m.hist", {1.0}).record(0.5);
  c.inc(5);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "a.gauge");
  EXPECT_EQ(snap.entries[1].name, "m.hist");
  EXPECT_EQ(snap.entries[2].name, "z.count");
  EXPECT_EQ(snap.entries[2].counter_value, 5u);

  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // the handle survives reset
  const MetricsSnapshot zeroed = registry.snapshot();
  EXPECT_EQ(zeroed.entries[2].counter_value, 0u);
  EXPECT_DOUBLE_EQ(zeroed.entries[0].gauge_value, 0.0);
  EXPECT_EQ(zeroed.entries[1].histogram.count, 0u);
}

TEST(Exporters, TextAndJsonCarryEveryKind) {
  MetricsRegistry registry;
  registry.counter("x.count").inc(2);
  registry.gauge("x.gauge").set(1.5);
  registry.histogram("x.hist", {1.0, 2.0}).record(0.25);
  const MetricsSnapshot snap = registry.snapshot();

  const std::string text = to_text(snap);
  EXPECT_NE(text.find("x.count counter 2"), std::string::npos);
  EXPECT_NE(text.find("x.gauge gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("x.hist histogram count=1"), std::string::npos);

  const std::string json = to_json(snap);
  EXPECT_NE(json.find("{\"schema_version\": 1, \"metrics\": ["),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\", \"value\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"gauge\", \"value\": 1.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [1, 2]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [1, 0, 0]"), std::string::npos);
}

TEST(Exporters, SnapshotCarriesAMonotonicTimestamp) {
  MetricsRegistry registry;
  registry.counter("x.count").inc();
  const MetricsSnapshot first = registry.snapshot();
  const MetricsSnapshot second = registry.snapshot();
  // taken_at comes from obs::now() (monotonic wall clock here), so scrapers
  // can compute rates from successive snapshots.
  EXPECT_GE(second.taken_at, first.taken_at);
  const std::string json = to_json(first);
  EXPECT_NE(json.find("], \"taken_at\": "), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(Exporters, PrometheusExpositionFormat) {
  MetricsRegistry registry;
  registry.counter("orb.requests_total").inc(3);
  registry.counter("naming.resolves").inc(1);  // no _total suffix yet
  registry.gauge("transport.tcp.connections").set(2.0);
  Histogram& h = registry.histogram("orb.request_latency_s", {0.1, 1.0});
  h.record(0.05);
  h.record(0.5);
  h.record(5.0);
  const std::string prom = to_prometheus(registry.snapshot());

  // Dots mangle to underscores; counters keep (or gain) the _total suffix.
  EXPECT_NE(prom.find("# TYPE orb_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("orb_requests_total 3"), std::string::npos);
  EXPECT_NE(prom.find("naming_resolves_total 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE transport_tcp_connections gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("transport_tcp_connections 2"), std::string::npos);

  // Histograms in seconds rename _s -> _seconds and render *cumulative*
  // le buckets plus +Inf, _sum and _count.
  EXPECT_NE(prom.find("# TYPE orb_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("orb_request_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("orb_request_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("orb_request_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("orb_request_latency_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(prom.find("orb_request_latency_seconds_sum"), std::string::npos);
}

// Hostile metric names must not corrupt either exporter: a name carrying a
// quote, backslash or newline could otherwise break JSON parsing or smuggle
// extra lines (even fake samples) into the Prometheus exposition.
TEST(Exporters, HostileMetricNamesAreEscapedEverywhere) {
  MetricsRegistry registry;
  const std::string hostile = "bad\nname\\with\"quote";
  registry.counter(hostile).inc(7);
  registry.gauge("9leads.with.digit").set(1.0);
  registry.histogram("evil\tlat_s", {0.1}).record(0.05);

  const std::string prom = to_prometheus(registry.snapshot());
  // Sample names sanitize every hostile byte to '_' (leading digits get a
  // prefix), so the exposition stays parseable...
  EXPECT_NE(prom.find("bad_name_with_quote_total 7"), std::string::npos);
  EXPECT_NE(prom.find("_9leads_with_digit 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE evil_lat_seconds histogram"), std::string::npos);
  EXPECT_NE(prom.find("evil_lat_seconds_count 1"), std::string::npos);
  // ... and the HELP line keeps the original name with exposition escaping
  // (literal backslash-n, escaped backslash), never a raw newline.
  EXPECT_NE(prom.find("# HELP bad_name_with_quote_total bad\\nname\\\\with\"quote"),
            std::string::npos);
  EXPECT_EQ(prom.find("bad\nname"), std::string::npos);
  // Every metric kind announces itself.
  EXPECT_NE(prom.find("# TYPE bad_name_with_quote_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE _9leads_with_digit gauge"), std::string::npos);

  const std::string json = to_json(registry.snapshot());
  // RFC 8259 escapes: no raw newline/tab/quote/backslash inside the name
  // string, so the document stays one valid JSON value.
  EXPECT_NE(json.find("\"bad\\nname\\\\with\\\"quote\""), std::string::npos);
  EXPECT_NE(json.find("\"evil\\tlat_s\""), std::string::npos);
  EXPECT_EQ(json.find("bad\nname"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(Registry, GlobalIsUsableAndStable) {
  Counter& c = MetricsRegistry::global().counter("test.global_probe_total");
  c.inc();
  EXPECT_EQ(&c,
            &MetricsRegistry::global().counter("test.global_probe_total"));
  EXPECT_GE(c.value(), 1u);
}

}  // namespace
}  // namespace obs
