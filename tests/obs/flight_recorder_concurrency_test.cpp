// Concurrency tests for the flight recorder: many writers hammering one
// ring while a reader renders dumps.  Every slot field is an atomic and the
// per-slot sequence word pairs payloads with their event index, so this is
// data-race-free by construction — the `tsan` ctest label runs exactly this
// binary under a SANITIZE=thread build to prove it.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace obs {
namespace {

TEST(FlightRecorderConcurrency, ParallelWritersLoseNothing) {
  FlightRecorder recorder(1 << 14);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&recorder, w] {
      const std::string subject = "writer-" + std::to_string(w);
      for (std::uint64_t i = 0; i < kPerWriter; ++i)
        recorder.record(FlightEvent::rpc_start, subject, i);
    });
  for (auto& t : writers) t.join();

  EXPECT_EQ(recorder.recorded(), kWriters * kPerWriter);
  const auto events = recorder.events();
  // Nothing wrapped (capacity exceeds the total), nothing torn (no writer
  // is active), so every event survives with a coherent payload.
  ASSERT_EQ(events.size(), kWriters * kPerWriter);
  std::vector<std::uint64_t> next(kWriters, 0);
  for (const auto& event : events) {
    ASSERT_EQ(event.subject.rfind("writer-", 0), 0u) << event.subject;
    const int w = event.subject[7] - '0';
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kWriters);
    // Per-writer payloads arrive in program order (indices are claimed
    // monotonically and events() walks them oldest-first).
    EXPECT_EQ(event.a, next[static_cast<std::size_t>(w)]++);
  }
}

TEST(FlightRecorderConcurrency, DumpingWhileWritersWrapStaysCoherent) {
  FlightRecorder recorder(64);  // small ring: constant wrap-around
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w)
    writers.emplace_back([&recorder, &stop, w] {
      const std::string subject = "wrap-" + std::to_string(w);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed))
        recorder.record(FlightEvent::dispatch_depth, subject, ++i);
    });

  for (int round = 0; round < 200; ++round) {
    const auto events = recorder.events();
    EXPECT_LE(events.size(), recorder.capacity());
    for (const auto& event : events) {
      // A torn slot is skipped, never surfaced: whatever we see must be a
      // fully published event.
      EXPECT_EQ(event.type, FlightEvent::dispatch_depth);
      EXPECT_EQ(event.subject.rfind("wrap-", 0), 0u);
      EXPECT_GT(event.a, 0u);
    }
    const std::string text = recorder.to_text();
    EXPECT_NE(text.find("flight-recorder: "), std::string::npos);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(FlightRecorderConcurrency, AutoDumpRacesWithWriters) {
  FlightRecorder recorder(64);
  std::atomic<std::uint64_t> delivered{0};
  recorder.set_auto_dump_sink(
      [&delivered](std::string_view, const std::string& dump) {
        ASSERT_FALSE(dump.empty());
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
  std::atomic<bool> stop{false};
  std::thread writer([&recorder, &stop] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed))
      recorder.record(FlightEvent::rpc_start, "op", ++i);
  });
  for (int i = 0; i < 100; ++i) recorder.auto_dump("race round");
  stop.store(true);
  writer.join();
  recorder.set_auto_dump_sink(nullptr);
  EXPECT_EQ(recorder.auto_dumps(), 100u);
  EXPECT_EQ(delivered.load(), 100u);
}

}  // namespace
}  // namespace obs
