// The push carrier over real sockets: an EventConsumer servant subscribed
// through a node's telemetry servant receives event batches as oneway
// `push` calls on the multiplexed TCP transport.  The headline property is
// the slow-subscriber bound: a consumer throttled to one batch per
// delivery-interval costs its own queue bound and nothing more — the
// publisher's burst loop never stalls, overflow is accounted, and memory
// stays bounded.  Also covers the wire encoding round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "obs/event_channel.hpp"
#include "obs/telemetry.hpp"
#include "orb/orb.hpp"

namespace obs {
namespace {

TEST(EventWire, ValueEncodingRoundTrips) {
  Event event;
  event.topic = Topic::session_state;
  event.host = "alpha";
  event.key = "peer:1234";
  event.t = 3.25;
  event.seq = 17;
  event.fields.push_back(num_field("index", 1.5));
  event.fields.push_back(int_field("frames", 3));
  event.fields.push_back(str_field("state", "resumed"));

  const Event back = event_from_value(event_to_value(event));
  EXPECT_EQ(back.topic, Topic::session_state);
  EXPECT_EQ(back.host, "alpha");
  EXPECT_EQ(back.key, "peer:1234");
  EXPECT_DOUBLE_EQ(back.t, 3.25);
  EXPECT_EQ(back.seq, 17u);
  ASSERT_EQ(back.fields.size(), 3u);
  EXPECT_EQ(back.fields[0], event.fields[0]);
  EXPECT_EQ(back.fields[1], event.fields[1]);
  EXPECT_EQ(back.fields[2], event.fields[2]);
}

TEST(EventWire, RejectsUnknownTopicsAndTags) {
  Event event;
  event.fields.push_back(num_field("x", 1.0));
  corba::Value wire = event_to_value(event);
  corba::ValueSeq seq = wire.as_sequence();
  seq[0] = corba::Value(std::string("not.a.topic"));
  EXPECT_THROW(event_from_value(corba::Value(seq)), corba::BAD_PARAM);
  EXPECT_THROW(event_from_value(corba::Value(std::string("scalar"))),
               corba::BAD_PARAM);
}

class EventPushTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The global channel may be left bound (worker mode) by other suites in
    // this binary; start every test from a clean slate.
    EventChannel::global().reset();
  }
  void TearDown() override { EventChannel::global().reset(); }
};

TEST_F(EventPushTcpTest, SlowSubscriberIsBoundedAndNeverStallsThePublisher) {
  auto server = corba::ORB::init({.endpoint_name = "alpha", .enable_tcp = true});
  auto [root_servant, root_ref] =
      naming::NamingContextServant::create_root(server);
  // install_telemetry binds the process-global channel in worker mode (no
  // defer executor): delivery happens on the channel's own thread.
  obs::install_telemetry(server, *root_servant, {.host = "alpha"});
  ASSERT_TRUE(EventChannel::global().bound());

  auto watcher =
      corba::ORB::init({.endpoint_name = "watcher", .enable_tcp = true});
  naming::NamingContextStub root(
      watcher->string_to_object(server->object_to_string(root_ref)));
  TelemetryStub telemetry(root.resolve(naming::Name::parse("_obs/alpha")));

  std::mutex mu;
  std::uint64_t received = 0;
  auto consumer_ref = watcher->activate(std::make_shared<EventConsumerServant>(
      [&](std::vector<Event> batch) {
        std::lock_guard lock(mu);
        for (const Event& event : batch) {
          if (event.topic == Topic::flight_event) ++received;
        }
      }));

  // Slow consumer: one batch per 50ms, 64-event queue, drop-oldest.  The
  // publisher below outruns that by orders of magnitude, so the policy has
  // to do real work.
  const std::uint64_t id =
      telemetry.subscribe_events(consumer_ref, {"flight.event"},
                                 /*queue_limit=*/64, "drop_oldest",
                                 /*delivery_interval=*/0.05);
  ASSERT_GT(id, 0u);
  ASSERT_TRUE(events_wanted());

  constexpr std::uint64_t kEvents = 3000;
  const auto burst_start = std::chrono::steady_clock::now();
  for (std::uint64_t n = 0; n < kEvents; ++n) {
    publish_event(Topic::flight_event, "alpha", "k" + std::to_string(n % 5),
                  {int_field("n", n)});
  }
  const double burst_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    burst_start)
          .count();
  // Never blocks on the consumer: at one batch per 50ms the consumer needs
  // seconds for this volume; the publish loop must not wait for it.
  EXPECT_LT(burst_seconds, 5.0);

  // Bounded memory, accounted overflow: the queue never exceeded its limit
  // and everything it couldn't hold is in `dropped`.
  bool seen = false;
  for (const auto& stat : EventChannel::global().stats()) {
    if (stat.id != id) continue;
    seen = true;
    EXPECT_LE(stat.depth, 64u);
    EXPECT_GT(stat.dropped, 0u);
    // >= rather than ==: the first overflow trips a flight-recorder dump,
    // which republishes the ring onto flight.event (by design).
    EXPECT_GE(stat.enqueued, kEvents);
  }
  EXPECT_TRUE(seen);

  // The stream is live: some batch crosses the wire and decodes.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  for (;;) {
    {
      std::lock_guard lock(mu);
      if (received > 0) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no push batch arrived";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  EXPECT_TRUE(telemetry.unsubscribe_events(id));
  EXPECT_FALSE(telemetry.unsubscribe_events(id));
  EXPECT_EQ(EventChannel::global().subscriber_count(), 0u);

  // Tear the channel down before the ORBs so no in-flight push outlives the
  // consumer's transport.
  EventChannel::global().reset();
  watcher->shutdown();
  server->shutdown();
}

TEST_F(EventPushTcpTest, SubscribeWithoutChannelFallsBackCleanly) {
  auto server = corba::ORB::init({.endpoint_name = "beta", .enable_tcp = true});
  auto [root_servant, root_ref] =
      naming::NamingContextServant::create_root(server);
  obs::install_telemetry(server, *root_servant, {.host = "beta"});
  // Simulate a node without a push plane: unbind after installation.
  EventChannel::global().reset();

  auto watcher =
      corba::ORB::init({.endpoint_name = "watcher2", .enable_tcp = true});
  naming::NamingContextStub root(
      watcher->string_to_object(server->object_to_string(root_ref)));
  TelemetryStub telemetry(root.resolve(naming::Name::parse("_obs/beta")));
  auto consumer_ref = watcher->activate(
      std::make_shared<EventConsumerServant>([](std::vector<Event>) {}));
  // The poll operations keep working; subscribe surfaces BAD_INV_ORDER,
  // which PushCollector and orbtop turn into the poll fallback.
  EXPECT_FALSE(telemetry.health().host.empty());
  EXPECT_THROW(telemetry.subscribe_events(consumer_ref), corba::BAD_INV_ORDER);
  watcher->shutdown();
  server->shutdown();
}

}  // namespace
}  // namespace obs
