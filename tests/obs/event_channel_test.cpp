// Unit and property tests for the push telemetry channel: topic vocabulary,
// bounded queues under both overflow policies (checked against a reference
// model on seeded random workloads), consumer-identity dedupe, failure
// auto-unsubscribe and the 1000-subscriber fan-out bound with a slow
// consumer.  Everything runs on a hand-rolled deterministic executor (the
// same shape SimRuntime wires: delayed callbacks on a virtual clock).
#include "obs/event_channel.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace obs {
namespace {

/// Virtual-clock executor: schedule(delay) queues a callback at now + delay;
/// run_until() executes in timestamp order, advancing `now`.  The obs clock
/// is pointed at `now` for the fixture's lifetime so delivery_interval math
/// sees the same time base.
class ManualExecutor {
 public:
  EventChannel::Defer defer() {
    return [this](double delay, std::function<void()> fn) {
      pending_.emplace(now_ + delay, std::move(fn));
    };
  }

  void run_until(double t) {
    while (!pending_.empty() && pending_.begin()->first <= t) {
      auto it = pending_.begin();
      now_ = std::max(now_, it->first);
      std::function<void()> fn = std::move(it->second);
      pending_.erase(it);
      fn();
    }
    now_ = std::max(now_, t);
  }

  void run_all() {
    while (!pending_.empty()) run_until(pending_.begin()->first);
  }

  double now() const { return now_; }
  void advance(double dt) { now_ += dt; }

 private:
  double now_ = 0.0;
  std::multimap<double, std::function<void()>> pending_;
};

class EventChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_token_ = set_clock([this] { return exec_.now(); });
  }
  void TearDown() override { clear_clock(clock_token_); }

  ManualExecutor exec_;
  std::uint64_t clock_token_ = 0;
};

Event make_event(Topic topic, std::string key, std::uint64_t n) {
  Event event;
  event.topic = topic;
  event.key = std::move(key);
  event.fields.push_back(int_field("n", n));
  return event;
}

std::uint64_t payload(const Event& event) {
  for (const auto& field : event.fields)
    if (field.name == "n") return field.u64;
  return ~0ull;
}

TEST(TopicVocabulary, NamesRoundTripAndDefaultsMatchDesign) {
  const Topic all[] = {Topic::metrics_delta,     Topic::flight_event,
                       Topic::load_report,       Topic::recovery_timeline,
                       Topic::session_state,     Topic::shard_state};
  for (Topic topic : all) {
    const auto parsed = parse_topic(to_string(topic));
    ASSERT_TRUE(parsed.has_value()) << to_string(topic);
    EXPECT_EQ(*parsed, topic);
  }
  EXPECT_EQ(to_string(Topic::metrics_delta), "metrics.delta");
  EXPECT_FALSE(parse_topic("metrics_delta").has_value());
  EXPECT_FALSE(parse_topic("").has_value());

  // State topics coalesce (a newer absolute value supersedes an unsent
  // older one); log topics drop oldest.
  EXPECT_EQ(default_policy(Topic::metrics_delta),
            OverflowPolicy::coalesce_by_key);
  EXPECT_EQ(default_policy(Topic::load_report),
            OverflowPolicy::coalesce_by_key);
  EXPECT_EQ(default_policy(Topic::flight_event), OverflowPolicy::drop_oldest);
  EXPECT_EQ(default_policy(Topic::recovery_timeline),
            OverflowPolicy::drop_oldest);
  EXPECT_EQ(default_policy(Topic::session_state), OverflowPolicy::drop_oldest);
  EXPECT_EQ(default_policy(Topic::shard_state),
            OverflowPolicy::coalesce_by_key);
}

TEST(TopicVocabulary, ToLineIsTheDeterministicStreamFormat) {
  Event event;
  event.topic = Topic::load_report;
  event.host = "node1";
  event.key = "node1";
  event.t = 1.5;
  event.seq = 42;
  event.fields.push_back(num_field("index", 2.25));
  event.fields.push_back(int_field("count", 7));
  event.fields.push_back(str_field("state", "resumed"));
  EXPECT_EQ(event.to_line(),
            "[1.500000000] #42 load.report host=node1 key=node1 "
            "index=2.25 count=7 state=resumed");
}

TEST_F(EventChannelTest, SubscribeRequiresBindAndPublishIsFreeWhenIdle) {
  EventChannel channel;
  EXPECT_FALSE(channel.bound());
  EXPECT_THROW(channel.subscribe({}, [](std::span<const Event>) {}),
               std::logic_error);

  channel.bind({.defer = exec_.defer()});
  // Published before any subscriber: not accounted, sequence not consumed.
  channel.publish(Topic::flight_event, "h", "k", {});

  std::vector<Event> received;
  channel.subscribe({}, [&](std::span<const Event> batch) {
    received.insert(received.end(), batch.begin(), batch.end());
  });
  channel.publish(Topic::flight_event, "h", "k", {int_field("n", 1)});
  exec_.run_all();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].seq, 1u);  // the idle publish consumed nothing
}

TEST_F(EventChannelTest, TopicFilterAndDeliveryOrder) {
  EventChannel channel;
  channel.bind({.defer = exec_.defer()});
  std::vector<Event> flight_only, everything;
  channel.subscribe({.topics = {Topic::flight_event}},
                    [&](std::span<const Event> batch) {
                      flight_only.insert(flight_only.end(), batch.begin(),
                                         batch.end());
                    });
  channel.subscribe({}, [&](std::span<const Event> batch) {
    everything.insert(everything.end(), batch.begin(), batch.end());
  });

  channel.publish(Topic::metrics_delta, "", "m", {int_field("n", 0)});
  channel.publish(Topic::flight_event, "", "f", {int_field("n", 1)});
  channel.publish(Topic::session_state, "", "s", {int_field("n", 2)});
  exec_.run_all();

  ASSERT_EQ(flight_only.size(), 1u);
  EXPECT_EQ(flight_only[0].topic, Topic::flight_event);
  ASSERT_EQ(everything.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(everything[i].seq, i + 1);
    EXPECT_EQ(payload(everything[i]), i);
  }
}

TEST_F(EventChannelTest, DropOldestKeepsTheNewestEvents) {
  EventChannel channel;
  channel.bind({.defer = exec_.defer()});
  std::vector<Event> received;
  channel.subscribe(
      {.queue_limit = 4, .policy = OverflowPolicy::drop_oldest,
       // Hold delivery back so the burst overflows before the drain runs.
       .delivery_interval = 10.0},
      [&](std::span<const Event> batch) {
        received.insert(received.end(), batch.begin(), batch.end());
      });
  for (std::uint64_t n = 0; n < 10; ++n)
    channel.publish(Topic::flight_event, "", "k", {int_field("n", n)});

  auto stats = channel.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].depth, 4u);
  EXPECT_EQ(stats[0].enqueued, 10u);
  EXPECT_EQ(stats[0].dropped, 6u);

  exec_.run_all();
  ASSERT_EQ(received.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(payload(received[i]), 6 + i);
}

TEST_F(EventChannelTest, CoalesceReplacesSameKeyAndFallsBackToDrop) {
  EventChannel channel;
  channel.bind({.defer = exec_.defer()});
  std::vector<Event> received;
  channel.subscribe({.queue_limit = 2,
                     .policy = OverflowPolicy::coalesce_by_key,
                     .delivery_interval = 10.0},
                    [&](std::span<const Event> batch) {
                      received.insert(received.end(), batch.begin(),
                                      batch.end());
                    });
  channel.publish(Topic::metrics_delta, "", "a", {int_field("n", 1)});
  channel.publish(Topic::metrics_delta, "", "b", {int_field("n", 2)});
  // Queue full.  Same key: replaced in place (queue position kept) ...
  channel.publish(Topic::metrics_delta, "", "a", {int_field("n", 3)});
  // ... unseen key: falls back to dropping the oldest ("a").
  channel.publish(Topic::metrics_delta, "", "c", {int_field("n", 4)});

  auto stats = channel.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].coalesced, 1u);
  EXPECT_EQ(stats[0].dropped, 1u);

  exec_.run_all();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].key, "b");
  EXPECT_EQ(payload(received[0]), 2u);
  EXPECT_EQ(received[1].key, "c");
  EXPECT_EQ(payload(received[1]), 4u);
}

// --- property test: channel vs reference model -------------------------------
// Random interleavings of publishes (small key alphabet) and drains must
// leave the channel's delivered stream identical to a trivially-correct
// bounded-queue model with the same policy.

struct ModelQueue {
  std::size_t limit = 4;
  OverflowPolicy policy = OverflowPolicy::drop_oldest;
  std::deque<Event> queue;
  std::vector<Event> delivered;
  std::uint64_t dropped = 0, coalesced = 0;

  void push(const Event& event) {
    if (queue.size() >= limit) {
      if (policy == OverflowPolicy::coalesce_by_key) {
        for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
          if (it->topic == event.topic && it->key == event.key) {
            *it = event;
            ++coalesced;
            return;
          }
        }
      }
      queue.pop_front();
      ++dropped;
    }
    queue.push_back(event);
  }

  void drain() {
    delivered.insert(delivered.end(), queue.begin(), queue.end());
    queue.clear();
  }
};

TEST_F(EventChannelTest, RandomWorkloadMatchesReferenceModel) {
  for (const OverflowPolicy policy :
       {OverflowPolicy::drop_oldest, OverflowPolicy::coalesce_by_key}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      ManualExecutor exec;
      const std::uint64_t token = set_clock([&exec] { return exec.now(); });
      EventChannel channel;
      channel.bind({.defer = exec.defer()});

      ModelQueue model{.limit = 4, .policy = policy};
      std::vector<Event> received;
      channel.subscribe({.queue_limit = 4,
                         .policy = policy,
                         // Drains happen only when the test says so: park the
                         // next delivery far in the future and advance past it
                         // to drain.
                         .delivery_interval = 1e6},
                        [&](std::span<const Event> batch) {
                          received.insert(received.end(), batch.begin(),
                                          batch.end());
                        });
      // The very first drain is due immediately; flush it so the interval
      // gate is armed before the workload starts.
      exec.run_all();
      model.drain();
      received.clear();
      model.delivered.clear();

      std::mt19937_64 rng(seed);
      std::uint64_t n = 0;
      for (int op = 0; op < 400; ++op) {
        if (rng() % 5 != 0) {
          Event event =
              make_event(Topic::metrics_delta, "k" + std::to_string(rng() % 4),
                         ++n);
          channel.publish(event.topic, "", event.key, event.fields);
          model.push(event);
        } else {
          exec.advance(2e6);  // past the interval gate: pending drain fires
          exec.run_all();
          model.drain();
        }
      }
      exec.advance(2e6);
      exec.run_all();
      model.drain();

      ASSERT_EQ(received.size(), model.delivered.size())
          << "policy=" << static_cast<int>(policy) << " seed=" << seed;
      for (std::size_t i = 0; i < received.size(); ++i) {
        EXPECT_EQ(received[i].key, model.delivered[i].key) << i;
        EXPECT_EQ(payload(received[i]), payload(model.delivered[i])) << i;
      }
      const auto stats = channel.stats();
      ASSERT_EQ(stats.size(), 1u);
      EXPECT_EQ(stats[0].dropped, model.dropped);
      EXPECT_EQ(stats[0].coalesced, model.coalesced);
      EXPECT_EQ(stats[0].delivered, received.size());
      clear_clock(token);
    }
  }
}

TEST_F(EventChannelTest, ConsumerIdDeduplicatesSubscriptions) {
  EventChannel channel;
  channel.bind({.defer = exec_.defer()});
  const auto a = channel.subscribe({.consumer_id = "IOR:watcher"},
                                   [](std::span<const Event>) {});
  const auto b = channel.subscribe({.consumer_id = "IOR:watcher"},
                                   [](std::span<const Event>) {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(channel.subscriber_count(), 1u);
  // Distinct (or absent) identities are distinct subscriptions.
  const auto c = channel.subscribe({}, [](std::span<const Event>) {});
  EXPECT_NE(a, c);
  EXPECT_EQ(channel.subscriber_count(), 2u);
  EXPECT_TRUE(channel.unsubscribe(a));
  EXPECT_FALSE(channel.unsubscribe(a));
  EXPECT_EQ(channel.subscriber_count(), 1u);
}

TEST_F(EventChannelTest, ThreeConsecutiveFailuresUnsubscribe) {
  EventChannel channel;
  channel.bind({.defer = exec_.defer()});
  int invocations = 0;
  channel.subscribe({}, [&](std::span<const Event>) {
    ++invocations;
    throw std::runtime_error("consumer is gone");
  });
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(channel.subscriber_count(), 1u) << i;
    channel.publish(Topic::flight_event, "", "k", {});
    exec_.run_all();
  }
  EXPECT_EQ(invocations, 3);
  EXPECT_EQ(channel.subscriber_count(), 0u);  // torn down, queue released
  // Further publishes are the idle fast path again.
  channel.publish(Topic::flight_event, "", "k", {});
  exec_.run_all();
  EXPECT_EQ(invocations, 3);
}

TEST_F(EventChannelTest, ThousandSubscriberFanOutStaysBoundedWithOneSlow) {
  EventChannel channel;
  channel.bind({.defer = exec_.defer(), .max_batch = 8});

  constexpr int kFast = 1000;
  std::vector<std::uint64_t> counts(kFast, 0);
  for (int i = 0; i < kFast; ++i) {
    channel.subscribe({.queue_limit = 256},
                      [&counts, i](std::span<const Event> batch) {
                        counts[static_cast<std::size_t>(i)] += batch.size();
                      });
  }
  // One consumer that takes a batch only every 1000 virtual seconds.
  std::uint64_t slow_count = 0;
  const auto slow_id = channel.subscribe(
      {.queue_limit = 8, .delivery_interval = 1000.0},
      [&](std::span<const Event> batch) { slow_count += batch.size(); });

  constexpr std::uint64_t kEvents = 100;
  for (std::uint64_t n = 0; n < kEvents; ++n)
    channel.publish(Topic::flight_event, "", "k" + std::to_string(n % 7),
                    {int_field("n", n)});
  exec_.run_until(exec_.now());  // due drains only; the slow one is parked

  for (int i = 0; i < kFast; ++i) EXPECT_EQ(counts[i], kEvents) << i;
  EXPECT_LE(slow_count, 8u);  // at most the first immediate batch
  bool found = false;
  for (const auto& stat : channel.stats()) {
    if (stat.id != slow_id) continue;
    found = true;
    // The slow consumer cost its own bound, nothing more: queue within
    // limit, the rest accounted as dropped.
    EXPECT_LE(stat.depth, 8u);
    EXPECT_EQ(stat.enqueued, kEvents);
    EXPECT_EQ(stat.dropped + stat.delivered + stat.depth, kEvents);
    EXPECT_GT(stat.dropped, 0u);
  }
  EXPECT_TRUE(found);
}

TEST_F(EventChannelTest, ResetRestartsSequenceNumbers) {
  EventChannel channel;
  channel.bind({.defer = exec_.defer()});
  std::vector<std::uint64_t> seqs;
  auto subscribe = [&] {
    channel.subscribe({}, [&](std::span<const Event> batch) {
      for (const auto& event : batch) seqs.push_back(event.seq);
    });
  };
  subscribe();
  channel.publish(Topic::flight_event, "", "k", {});
  channel.publish(Topic::flight_event, "", "k", {});
  exec_.run_all();

  channel.reset();
  EXPECT_FALSE(channel.bound());
  channel.bind({.defer = exec_.defer()});
  subscribe();
  channel.publish(Topic::flight_event, "", "k", {});
  exec_.run_all();
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 1}));
}

}  // namespace
}  // namespace obs
