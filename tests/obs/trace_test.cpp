// Unit tests for tracing: span lifecycle, context propagation, the shared
// clock's token discipline, and the same-seed determinism contract.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_trace_sink(nullptr);
    if (clock_token_) clear_clock(clock_token_);
    exchange_current_trace(TraceContext{});
  }

  /// Deterministic time source: t advances by 1 on every reading.
  void install_step_clock() {
    auto t = std::make_shared<double>(0.0);
    clock_token_ = set_clock([t] { return (*t)++; });
  }

  std::uint64_t clock_token_ = 0;
};

TEST_F(TraceTest, InertWithoutSink) {
  EXPECT_FALSE(tracing_enabled());
  Span span("rpc.client", "op");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  EXPECT_FALSE(current_trace().valid());
  span.annotate("ignored");  // must be a no-op, not a crash
}

TEST_F(TraceTest, SpansNestAndRestoreTheAmbientContext) {
  SpanCollector collector;
  collector.install();
  EXPECT_TRUE(tracing_enabled());

  TraceContext outer_ctx, inner_ctx;
  {
    Span outer("rpc.client", "solve");
    ASSERT_TRUE(outer.active());
    outer_ctx = outer.context();
    EXPECT_TRUE(outer_ctx.valid());
    EXPECT_EQ(outer_ctx.parent_span_id, 0u);
    EXPECT_EQ(current_trace(), outer_ctx);
    {
      Span inner("marshal.cdr", "solve");
      inner_ctx = inner.context();
      EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);
      EXPECT_EQ(inner_ctx.parent_span_id, outer_ctx.span_id);
      EXPECT_NE(inner_ctx.span_id, outer_ctx.span_id);
    }
    EXPECT_EQ(current_trace(), outer_ctx);
  }
  EXPECT_FALSE(current_trace().valid());

  // Spans are delivered on completion: inner first.
  const auto records = collector.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "marshal.cdr");
  EXPECT_EQ(records[0].context, inner_ctx);
  EXPECT_EQ(records[1].name, "rpc.client");
  EXPECT_EQ(records[1].context, outer_ctx);
}

TEST_F(TraceTest, AdoptedWireContextParentsTheLocalSpan) {
  SpanCollector collector;
  collector.install();

  // The server-side dispatch path adopts the wire context like this.
  const TraceContext wire{1234, 5678, 0};
  const TraceContext saved = exchange_current_trace(wire);
  EXPECT_FALSE(saved.valid());
  {
    Span span("servant.dispatch", "solve");
    EXPECT_EQ(span.context().trace_id, 1234u);
    EXPECT_EQ(span.context().parent_span_id, 5678u);
  }
  exchange_current_trace(saved);
  EXPECT_FALSE(current_trace().valid());
}

TEST_F(TraceTest, RecordSpanHonoursAnExplicitParent) {
  SpanCollector collector;
  collector.install();

  const TraceContext parent{99, 7, 0};
  record_span("transport.roundtrip", "solve -> node1 ok", 1.0, 2.5, parent);
  const auto records = collector.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].context.trace_id, 99u);
  EXPECT_EQ(records[0].context.parent_span_id, 7u);
  EXPECT_NE(records[0].context.span_id, 0u);
  EXPECT_DOUBLE_EQ(records[0].start, 1.0);
  EXPECT_DOUBLE_EQ(records[0].end, 2.5);
}

TEST_F(TraceTest, AnnotateAppendsToTheDetail) {
  SpanCollector collector;
  collector.install();
  {
    Span span("proxy.recover", "Service");
    span.annotate("via factory");
  }
  const auto records = collector.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].detail, "Service via factory");
}

TEST_F(TraceTest, SameSeedRunsProduceByteIdenticalDumps) {
  auto run_once = [&](std::uint64_t seed) {
    // A fresh step clock per run, so timestamps restart from zero too.
    if (clock_token_) clear_clock(clock_token_);
    install_step_clock();
    set_trace_seed(seed);
    SpanCollector collector;
    collector.install();
    {
      Span outer("rpc.client", "solve");
      Span inner("marshal.cdr", "solve");
    }
    record_span("transport.roundtrip", "solve -> node0 ok", 0.5, 1.5);
    return collector.dump();
  };

  const std::string first = run_once(2026);
  const std::string second = run_once(2026);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // A different seed draws different ids.
  EXPECT_NE(run_once(7), first);
}

TEST_F(TraceTest, ZeroSeedStillYieldsValidIds) {
  SpanCollector collector;
  collector.install();
  set_trace_seed(0);
  Span span("rpc.client", "op");
  EXPECT_TRUE(span.context().valid());
  EXPECT_NE(span.context().span_id, 0u);
}

TEST_F(TraceTest, ClockTokensOnlyClearTheirOwnInstallation) {
  const std::uint64_t first = set_clock([] { return 1e9; });
  EXPECT_DOUBLE_EQ(now(), 1e9);
  const std::uint64_t second = set_clock([] { return 2e9; });
  EXPECT_DOUBLE_EQ(now(), 2e9);

  // A stale token (the replaced clock's destructor) must not tear down the
  // successor.
  clear_clock(first);
  EXPECT_DOUBLE_EQ(now(), 2e9);
  clear_clock(second);
  EXPECT_LT(now(), 1e8);  // back on the default monotonic clock
}

}  // namespace
}  // namespace obs
