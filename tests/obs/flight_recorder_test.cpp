// Unit tests for the always-on flight recorder: recording, wrap-around,
// the enabled kill switch, deterministic renderings and auto-dump triggers.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace obs {
namespace {

TEST(FlightRecorder, RecordsAndDecodesEvents) {
  FlightRecorder recorder(8);
  recorder.record(FlightEvent::rpc_start, "solve", 7);
  recorder.record(FlightEvent::rpc_end, "solve", 7, 1);
  recorder.record(FlightEvent::checkpoint_ship, "worker-0", 3, 1024);

  const std::vector<FlightRecorder::Event> events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEvent::rpc_start);
  EXPECT_EQ(events[0].subject, "solve");
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 0u);
  EXPECT_EQ(events[0].index, 0u);
  EXPECT_EQ(events[1].type, FlightEvent::rpc_end);
  EXPECT_EQ(events[1].b, 1u);
  EXPECT_EQ(events[2].subject, "worker-0");
  EXPECT_EQ(events[2].a, 3u);
  EXPECT_EQ(events[2].b, 1024u);
  EXPECT_EQ(recorder.recorded(), 3u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
}

TEST(FlightRecorder, LongSubjectsAreTruncatedNotDropped) {
  FlightRecorder recorder(4);
  const std::string subject(40, 'x');
  recorder.record(FlightEvent::rpc_start, subject);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].subject,
            std::string(FlightRecorder::kSubjectCapacity, 'x'));
}

TEST(FlightRecorder, WrapAroundKeepsTheNewestEvents) {
  FlightRecorder recorder(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    recorder.record(FlightEvent::rpc_start, "op", i);
  EXPECT_EQ(recorder.recorded(), 10u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and exactly the last `capacity` events survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].index, 6u + i);
    EXPECT_EQ(events[i].a, 6u + i);
  }
  const std::string text = recorder.to_text();
  EXPECT_NE(
      text.find("flight-recorder: 10 events recorded, 4 retained (capacity 4)"),
      std::string::npos);
  EXPECT_NE(text.find("#9 rpc_start op a=9 b=0"), std::string::npos);
  EXPECT_EQ(text.find("#5 "), std::string::npos);  // overwritten
}

TEST(FlightRecorder, DisabledRecorderDropsEventsAndReenables) {
  FlightRecorder recorder(4);
  recorder.set_enabled(false);
  EXPECT_FALSE(recorder.enabled());
  recorder.record(FlightEvent::rpc_start, "dropped");
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.set_enabled(true);
  recorder.record(FlightEvent::rpc_start, "kept");
  ASSERT_EQ(recorder.events().size(), 1u);
  EXPECT_EQ(recorder.events()[0].subject, "kept");
}

TEST(FlightRecorder, ClearForgetsEverything) {
  FlightRecorder recorder(4);
  recorder.record(FlightEvent::conn_open, "a:1");
  recorder.record(FlightEvent::conn_close, "a:1", 2);
  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.events().empty());
  // Recording restarts from index 0 (per-run determinism).
  recorder.record(FlightEvent::conn_open, "b:2");
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].index, 0u);
}

TEST(FlightRecorder, ToJsonCarriesSchemaAndEvents) {
  FlightRecorder recorder(4);
  recorder.record(FlightEvent::quarantine_trip, "Solver", 0, 1);
  const std::string json = recorder.to_json();
  EXPECT_EQ(json.find("{\"schema_version\": 1, \"recorded\": 1"), 0u);
  EXPECT_NE(json.find("\"type\": \"quarantine_trip\""), std::string::npos);
  EXPECT_NE(json.find("\"subject\": \"Solver\""), std::string::npos);
  EXPECT_NE(json.find("\"b\": 1"), std::string::npos);
}

TEST(FlightRecorder, AutoDumpCountsWithoutASinkAndDeliversWithOne) {
  FlightRecorder recorder(4);
  recorder.record(FlightEvent::rpc_start, "op");
  EXPECT_EQ(recorder.auto_dumps(), 0u);
  recorder.auto_dump("no sink installed");
  EXPECT_EQ(recorder.auto_dumps(), 1u);

  std::string seen_reason;
  std::string seen_dump;
  recorder.set_auto_dump_sink(
      [&](std::string_view reason, const std::string& dump) {
        seen_reason = std::string(reason);
        seen_dump = dump;
      });
  recorder.auto_dump("batched COMM_FAILURE on node0:1");
  EXPECT_EQ(recorder.auto_dumps(), 2u);
  EXPECT_EQ(seen_reason, "batched COMM_FAILURE on node0:1");
  EXPECT_NE(seen_dump.find("rpc_start op"), std::string::npos);

  // A throwing sink must not propagate out of the failing path.
  recorder.set_auto_dump_sink(
      [](std::string_view, const std::string&) { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(recorder.auto_dump("still fine"));
  EXPECT_EQ(recorder.auto_dumps(), 3u);
  recorder.set_auto_dump_sink(nullptr);
}

TEST(FlightRecorder, GlobalRecorderIsOnByDefault) {
  EXPECT_TRUE(FlightRecorder::global().enabled());
  EXPECT_GE(FlightRecorder::global().capacity(),
            FlightRecorder::kDefaultCapacity);
}

}  // namespace
}  // namespace obs
