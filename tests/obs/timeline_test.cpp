// Unit tests for the recovery timeline: recording, rendering, and the
// install/uninstall contract of the process-wide reporting helpers.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace obs {
namespace {

class TimelineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    install_timeline(nullptr);
    if (clock_token_) clear_clock(clock_token_);
  }

  std::uint64_t clock_token_ = 0;
};

TEST_F(TimelineTest, RecordsInOrderWithExplicitTimestamps) {
  RecoveryTimeline timeline;
  timeline.record_at(1.5, "detector", "Service", "fault confirmed on node1");
  timeline.record_at(2.0, "proxy", "Service", "recovery started");
  ASSERT_EQ(timeline.size(), 2u);
  const auto events = timeline.events();
  EXPECT_DOUBLE_EQ(events[0].t, 1.5);
  EXPECT_EQ(events[0].category, "detector");
  EXPECT_EQ(events[1].subject, "Service");
  EXPECT_EQ(events[1].detail, "recovery started");
}

TEST_F(TimelineTest, RecordStampsFromTheInstalledClock) {
  clock_token_ = set_clock([] { return 42.125; });
  RecoveryTimeline timeline;
  timeline.record("proxy", "Service", "rebound to node2");
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_DOUBLE_EQ(timeline.events()[0].t, 42.125);
}

TEST_F(TimelineTest, ToStringRendersOneLinePerEvent) {
  RecoveryTimeline timeline;
  timeline.record_at(1.5, "detector", "Service", "fault confirmed on node1");
  timeline.record_at(2.0, "proxy", "Service", "recovery started");
  EXPECT_EQ(timeline.to_string(),
            "[1.500000000] detector Service: fault confirmed on node1\n"
            "[2.000000000] proxy Service: recovery started\n");
  timeline.clear();
  EXPECT_EQ(timeline.size(), 0u);
  EXPECT_EQ(timeline.to_string(), "");
}

TEST_F(TimelineTest, HelpersAreNoOpsWithoutAnInstalledTimeline) {
  EXPECT_EQ(installed_timeline(), nullptr);
  timeline_event("proxy", "Service", "dropped");
  timeline_event_at(1.0, "proxy", "Service", "dropped");  // must not crash
}

TEST_F(TimelineTest, HelpersRouteToTheInstalledTimeline) {
  RecoveryTimeline timeline;
  install_timeline(&timeline);
  EXPECT_EQ(installed_timeline(), &timeline);

  timeline_event_at(3.0, "quarantine", "Service", "quarantined node0");
  clock_token_ = set_clock([] { return 4.0; });
  timeline_event("pipeline", "key", "dropped checkpoint v7 after 3 attempts");

  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.events()[0].category, "quarantine");
  EXPECT_DOUBLE_EQ(timeline.events()[1].t, 4.0);

  install_timeline(nullptr);
  timeline_event_at(5.0, "proxy", "Service", "not recorded");
  EXPECT_EQ(timeline.size(), 2u);
}

}  // namespace
}  // namespace obs
