// Tests of the hierarchical (wide-area) Winner manager: domain routing,
// WAN penalty in placement, spill-over behaviour, and freshness filtering
// across sites.
#include "winner/meta_manager.hpp"

#include <gtest/gtest.h>

#include "winner/system_manager.hpp"

namespace winner {
namespace {

class MetaManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    home_ = std::make_shared<SystemManager>();
    remote_ = std::make_shared<SystemManager>();
    meta_ = std::make_unique<MetaSystemManager>(
        MetaManagerOptions{.home_domain = "siegen", .remote_penalty = 1.0});
    meta_->add_domain("siegen", home_);
    meta_->add_domain("remote", remote_);
    for (int i = 0; i < 2; ++i) {
      meta_->register_host("siegen/s" + std::to_string(i), 1.0);
      meta_->register_host("remote/r" + std::to_string(i), 1.0);
    }
    for (const char* host : {"s0", "s1"}) home_->report_load(host, {0.0, 0.0});
    for (const char* host : {"r0", "r1"}) remote_->report_load(host, {0.0, 0.0});
  }

  std::shared_ptr<SystemManager> home_, remote_;
  std::unique_ptr<MetaSystemManager> meta_;
};

TEST_F(MetaManagerTest, ConfigValidation) {
  EXPECT_THROW(MetaSystemManager({}), corba::BAD_PARAM);
  EXPECT_THROW(MetaSystemManager({.home_domain = "x", .remote_penalty = -1}),
               corba::BAD_PARAM);
  EXPECT_THROW(meta_->add_domain("siegen", home_), corba::BAD_PARAM);
  EXPECT_THROW(meta_->add_domain("", home_), corba::BAD_PARAM);
  EXPECT_THROW(meta_->add_domain("x", nullptr), corba::BAD_PARAM);
  EXPECT_THROW(meta_->register_host("unqualified", 1.0), corba::BAD_PARAM);
  EXPECT_THROW(meta_->register_host("nowhere/h", 1.0), corba::BAD_PARAM);
}

TEST_F(MetaManagerTest, RegistrationRoutesToTheSite) {
  EXPECT_EQ(home_->known_hosts(), (std::vector<std::string>{"s0", "s1"}));
  EXPECT_EQ(remote_->known_hosts(), (std::vector<std::string>{"r0", "r1"}));
  EXPECT_EQ(meta_->known_hosts().size(), 4u);
  EXPECT_EQ(meta_->domain_of("r1"), "remote");
}

TEST_F(MetaManagerTest, IdleClusterPrefersHomeDomain) {
  // All hosts idle: the WAN penalty makes home hosts strictly better.
  const std::string best = meta_->best_host({});
  EXPECT_TRUE(best == "s0" || best == "s1");
  const auto ranked = meta_->rank_hosts({});
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].front(), 's');
  EXPECT_EQ(ranked[1].front(), 's');
  EXPECT_EQ(ranked[2].front(), 'r');
  EXPECT_EQ(ranked[3].front(), 'r');
}

TEST_F(MetaManagerTest, SpillsToRemoteOnlyWhenHomeOverloaded) {
  // Home load below the penalty: stay local.
  home_->report_load("s0", {0.5, 0.0});
  home_->report_load("s1", {0.5, 0.0});
  EXPECT_EQ(meta_->best_host({}).front(), 's');
  // Home load above the penalty: the remote site wins despite the WAN.
  home_->report_load("s0", {2.0, 0.0});
  home_->report_load("s1", {2.0, 0.0});
  EXPECT_EQ(meta_->best_host({}).front(), 'r');
}

TEST_F(MetaManagerTest, HostIndexCarriesThePenalty) {
  EXPECT_DOUBLE_EQ(meta_->host_index("s0"), 0.0);
  EXPECT_DOUBLE_EQ(meta_->host_index("r0"), 1.0);
  remote_->report_load("r0", {2.0, 0.0});
  EXPECT_DOUBLE_EQ(meta_->host_index("r0"), 3.0);
  EXPECT_THROW(meta_->host_index("unknown"), corba::BAD_PARAM);
}

TEST_F(MetaManagerTest, PlacementsAndReportsRouteToTheRightSite) {
  meta_->notify_placement("r0");
  EXPECT_DOUBLE_EQ(remote_->host_index("r0"), 1.0);  // no penalty at the site
  EXPECT_DOUBLE_EQ(home_->host_index("s0"), 0.0);

  meta_->report_load("s1", {3.0, 1.0});
  EXPECT_DOUBLE_EQ(home_->host_index("s1"), 3.0);
}

TEST_F(MetaManagerTest, CandidateFilterWorksAcrossDomains) {
  home_->report_load("s0", {5.0, 0.0});
  const std::vector<std::string> candidates = {"s0", "r1"};
  EXPECT_EQ(meta_->best_host(candidates), "r1");  // 5.0 vs 0+1 penalty
}

TEST_F(MetaManagerTest, StaleSitesDropOut) {
  double now = 0.0;
  auto fresh_home = std::make_shared<SystemManager>(SystemManagerOptions{
      .stale_after = 2.0, .clock = [&now] { return now; }});
  MetaSystemManager meta({.home_domain = "a", .remote_penalty = 1.0});
  meta.add_domain("a", fresh_home);
  meta.add_domain("b", remote_);
  fresh_home->register_host("a0", 1.0);
  fresh_home->report_load("a0", {0.0, 0.0});
  EXPECT_EQ(meta.best_host({}), "a0");
  now = 10.0;  // a0's report is stale; only the remote site remains
  EXPECT_EQ(meta.best_host({}).front(), 'r');
}

TEST_F(MetaManagerTest, NoFreshHostAnywhereRaises) {
  MetaSystemManager meta({.home_domain = "a"});
  meta.add_domain("a", std::make_shared<SystemManager>());
  EXPECT_THROW(meta.best_host({}), NoHostAvailable);
}

TEST_F(MetaManagerTest, SpeedQueriesForwarded) {
  meta_->register_host("remote/big", 8.0);
  remote_->report_load("big", {0.0, 0.0});
  EXPECT_DOUBLE_EQ(meta_->host_speed("big"), 8.0);
}

}  // namespace
}  // namespace winner
