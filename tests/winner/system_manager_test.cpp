// Unit tests for the Winner system manager: ranking policy, placement
// compensation, staleness-based failure detection, and the CORBA
// servant/stub pair.
#include "winner/system_manager.hpp"

#include <gtest/gtest.h>

#include "orb/orb.hpp"
#include "winner/system_manager_corba.hpp"

namespace winner {
namespace {

TEST(SystemManager, BestHostPrefersLowestLoadPerSpeed) {
  SystemManager manager;
  manager.register_host("a", 1.0);
  manager.register_host("b", 1.0);
  manager.report_load("a", {2.0, 0.0});
  manager.report_load("b", {0.5, 0.0});
  EXPECT_EQ(manager.best_host({}), "b");
}

TEST(SystemManager, SpeedIndexNormalizesLoad) {
  // Host "big" is 4x faster; even with load 2 it beats an idle-ish slow box
  // with load 1: 2/4 < 1/1.
  SystemManager manager;
  manager.register_host("big", 4.0);
  manager.register_host("small", 1.0);
  manager.report_load("big", {2.0, 0.0});
  manager.report_load("small", {1.0, 0.0});
  EXPECT_EQ(manager.best_host({}), "big");
  EXPECT_DOUBLE_EQ(manager.host_index("big"), 0.5);
  EXPECT_DOUBLE_EQ(manager.host_index("small"), 1.0);
}

TEST(SystemManager, CandidateFilterRestrictsSelection) {
  SystemManager manager;
  for (const char* name : {"a", "b", "c"}) {
    manager.register_host(name, 1.0);
    manager.report_load(name, {0.0, 0.0});
  }
  manager.report_load("a", {0.0, 0.0});
  manager.report_load("b", {1.0, 0.0});
  manager.report_load("c", {2.0, 0.0});
  const std::vector<std::string> candidates = {"b", "c"};
  EXPECT_EQ(manager.best_host(candidates), "b");
}

TEST(SystemManager, RankOrdersAllCandidates) {
  SystemManager manager;
  manager.register_host("a", 1.0);
  manager.register_host("b", 1.0);
  manager.register_host("c", 1.0);
  manager.report_load("a", {3.0, 0.0});
  manager.report_load("b", {1.0, 0.0});
  manager.report_load("c", {2.0, 0.0});
  EXPECT_EQ(manager.rank_hosts({}), (std::vector<std::string>{"b", "c", "a"}));
}

TEST(SystemManager, UnreportedHostsAreNotEligible) {
  SystemManager manager;
  manager.register_host("silent", 1.0);
  EXPECT_THROW(manager.best_host({}), NoHostAvailable);
  manager.report_load("silent", {0.0, 0.0});
  EXPECT_EQ(manager.best_host({}), "silent");
}

TEST(SystemManager, ReportsFromUnknownHostsIgnored) {
  SystemManager manager;
  manager.report_load("stranger", {0.0, 0.0});
  EXPECT_THROW(manager.best_host({}), NoHostAvailable);
  EXPECT_TRUE(manager.known_hosts().empty());
}

TEST(SystemManager, PlacementsCountUntilObservedByAReport) {
  double now = 0.0;
  SystemManager manager({.clock = [&now] { return now; }});
  manager.register_host("a", 1.0);
  manager.register_host("b", 1.0);
  manager.report_load("a", {0.0, 0.0});
  manager.report_load("b", {0.0, 0.0});

  // Two consecutive placements spread across hosts instead of piling onto
  // the first one — this is what makes k resolve() calls pick k machines.
  const std::string first = manager.best_host({});
  manager.notify_placement(first);
  const std::string second = manager.best_host({});
  EXPECT_NE(first, second);

  // A report sampled *after* the placement clears the compensation.
  now = 5.0;
  manager.report_load(first, {1.0, 5.0});  // the placed process is visible
  EXPECT_DOUBLE_EQ(manager.host_index(first), 1.0);
}

TEST(SystemManager, StaleReportBeforePlacementKeepsCompensation) {
  double now = 10.0;
  SystemManager manager({.clock = [&now] { return now; }});
  manager.register_host("a", 1.0);
  manager.notify_placement("a");  // placed at t=10
  // A late-arriving report sampled at t=8 must not clear the placement.
  manager.report_load("a", {0.0, 8.0});
  EXPECT_DOUBLE_EQ(manager.host_index("a"), 1.0);
  // A report sampled at t=12 does.
  manager.report_load("a", {1.0, 12.0});
  EXPECT_DOUBLE_EQ(manager.host_index("a"), 1.0);  // measured load only
}

TEST(SystemManager, StaleHostsDropOutOfSelection) {
  double now = 0.0;
  SystemManager manager({.stale_after = 3.0, .clock = [&now] { return now; }});
  manager.register_host("a", 1.0);
  manager.register_host("b", 1.0);
  manager.report_load("a", {0.0, 0.0});
  manager.report_load("b", {5.0, 0.0});
  EXPECT_EQ(manager.best_host({}), "a");

  now = 10.0;                      // "a" has not reported since t=0
  manager.report_load("b", {5.0, 10.0});
  EXPECT_EQ(manager.best_host({}), "b");  // dead host avoided despite load

  now = 20.0;                      // both stale now
  EXPECT_THROW(manager.best_host({}), NoHostAvailable);
}

TEST(SystemManager, DemotedStaleHostsKeepSelectionAliveUnderPartition) {
  double now = 0.0;
  SystemManager manager({.stale_after = 3.0,
                         .clock = [&now] { return now; },
                         .demote_stale_hosts = true});
  manager.register_host("a", 1.0);
  manager.register_host("b", 1.0);
  manager.report_load("a", {0.0, 0.0});
  manager.report_load("b", {5.0, 0.0});
  EXPECT_EQ(manager.best_host({}), "a");
  EXPECT_EQ(manager.stale_selections(), 0u);

  // Every report goes stale (e.g. the manager is partitioned from the
  // reporters): selection degrades to the last known ranking instead of
  // refusing placement outright.
  now = 20.0;
  EXPECT_EQ(manager.best_host({}), "a");
  EXPECT_EQ(manager.stale_selections(), 1u);
  EXPECT_EQ(manager.rank_hosts({}), (std::vector<std::string>{"a", "b"}));

  // A fresh host always outranks demoted ones, even at worse load.
  manager.report_load("b", {9.0, 20.0});
  EXPECT_EQ(manager.best_host({}), "b");
  EXPECT_EQ(manager.stale_selections(), 1u);  // the front was fresh again

  // Partition heals: a fresh report from "a" reinstates normal ranking.
  manager.report_load("a", {0.0, 20.0});
  EXPECT_EQ(manager.best_host({}), "a");
}

TEST(SystemManager, DemotionOffStillFailsFastWhenAllStale) {
  double now = 0.0;
  SystemManager manager({.stale_after = 3.0, .clock = [&now] { return now; }});
  manager.register_host("a", 1.0);
  manager.report_load("a", {0.0, 0.0});
  now = 10.0;
  EXPECT_THROW(manager.best_host({}), NoHostAvailable);
  EXPECT_EQ(manager.stale_selections(), 0u);
}

TEST(SystemManager, NeverReportedHostsAreNotDemotionCandidates) {
  double now = 0.0;
  SystemManager manager({.stale_after = 3.0,
                         .clock = [&now] { return now; },
                         .demote_stale_hosts = true});
  manager.register_host("silent", 1.0);
  EXPECT_THROW(manager.best_host({}), NoHostAvailable);
}

TEST(SystemManager, InvalidRegistrationsRejected) {
  SystemManager manager;
  EXPECT_THROW(manager.register_host("", 1.0), corba::BAD_PARAM);
  EXPECT_THROW(manager.register_host("a", 0.0), corba::BAD_PARAM);
  EXPECT_THROW(manager.host_index("missing"), corba::BAD_PARAM);
}

TEST(SystemManager, TieBreaksAreDeterministic) {
  SystemManager manager;
  for (const char* name : {"n1", "n2", "n3"}) {
    manager.register_host(name, 1.0);
    manager.report_load(name, {1.0, 0.0});
  }
  // Equal indices: stable sort keeps registration (map) order.
  EXPECT_EQ(manager.rank_hosts({}),
            (std::vector<std::string>{"n1", "n2", "n3"}));
}

// --- CORBA servant/stub round trip -----------------------------------------

class SystemManagerCorbaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    server_ = corba::ORB::init({.endpoint_name = "winner", .network = network_});
    client_ = corba::ORB::init({.endpoint_name = "app", .network = network_});
    impl_ = std::make_shared<SystemManager>();
    const corba::ObjectRef ref =
        server_->activate(std::make_shared<SystemManagerServant>(impl_),
                          "SystemManager");
    stub_ = SystemManagerStub(client_->make_ref(ref.ior()));
  }

  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> server_, client_;
  std::shared_ptr<SystemManager> impl_;
  SystemManagerStub stub_;
};

TEST_F(SystemManagerCorbaTest, FullProtocolOverTheWire) {
  stub_.register_host("a", 2.0);
  stub_.register_host("b", 1.0);
  stub_.report_load("a", {1.0, 0.0});
  stub_.report_load("b", {1.0, 0.0});
  EXPECT_EQ(stub_.best_host({}), "a");
  EXPECT_EQ(stub_.rank_hosts({}), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(stub_.host_index("a"), 0.5);
  EXPECT_EQ(stub_.known_hosts(), (std::vector<std::string>{"a", "b"}));
  stub_.notify_placement("a");
  EXPECT_DOUBLE_EQ(stub_.host_index("a"), 1.0);
}

TEST_F(SystemManagerCorbaTest, NoHostAvailableCrossesTheWire) {
  EXPECT_THROW(stub_.best_host({}), NoHostAvailable);
}

TEST_F(SystemManagerCorbaTest, IsATypeCheck) {
  EXPECT_TRUE(stub_.is_a(kSystemManagerRepoId));
}

TEST_F(SystemManagerCorbaTest, CandidateListMarshalsCorrectly) {
  stub_.register_host("x", 1.0);
  stub_.register_host("y", 1.0);
  stub_.report_load("x", {9.0, 0.0});
  stub_.report_load("y", {0.0, 0.0});
  const std::vector<std::string> only_x = {"x"};
  EXPECT_EQ(stub_.best_host(only_x), "x");
}

}  // namespace
}  // namespace winner
