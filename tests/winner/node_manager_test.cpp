// Unit tests for node managers and load sensors, in both simulated and
// threaded drive modes.
#include "winner/node_manager.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "sim/cluster.hpp"
#include "winner/system_manager.hpp"

namespace winner {
namespace {

TEST(LoadSensor, CallbackSensorReturnsFunctionValue) {
  double load = 1.5;
  CallbackSensor sensor([&load] { return load; });
  EXPECT_EQ(sensor.sample(), 1.5);
  load = 3.0;
  EXPECT_EQ(sensor.sample(), 3.0);
}

TEST(LoadSensor, SimHostSensorTracksHostState) {
  sim::EventQueue events;
  sim::Host host(events, "h", 100.0, 2);
  SimHostSensor sensor(host);
  EXPECT_EQ(sensor.sample(), 2.0);
  host.submit(1000.0, [] {});
  EXPECT_EQ(sensor.sample(), 3.0);
}

TEST(LoadSensor, ProcLoadavgParsesFirstField) {
  const std::string path = ::testing::TempDir() + "/loadavg";
  std::ofstream(path) << "0.42 0.36 0.30 1/234 5678\n";
  ProcLoadavgSensor sensor(path);
  EXPECT_DOUBLE_EQ(sensor.sample(), 0.42);
}

TEST(LoadSensor, ProcLoadavgMissingFileThrows) {
  ProcLoadavgSensor sensor("/definitely/not/here");
  EXPECT_THROW(sensor.sample(), std::runtime_error);
}

TEST(NodeManager, ConstructionValidatesArguments) {
  auto sensor = std::make_shared<CallbackSensor>([] { return 0.0; });
  auto manager = std::make_shared<SystemManager>();
  EXPECT_THROW(NodeManager("h", nullptr, manager, 1.0), corba::BAD_PARAM);
  EXPECT_THROW(NodeManager("h", sensor, nullptr, 1.0), corba::BAD_PARAM);
  EXPECT_THROW(NodeManager("h", sensor, manager, 0.0), corba::BAD_PARAM);
}

TEST(NodeManager, TickSamplesAndReports) {
  auto manager = std::make_shared<SystemManager>();
  manager->register_host("h", 1.0);
  auto sensor = std::make_shared<CallbackSensor>([] { return 2.5; });
  NodeManager node("h", sensor, manager, 1.0);
  node.tick(7.0);
  EXPECT_EQ(node.reports_sent(), 1u);
  EXPECT_EQ(manager->last_sample("h").load_avg, 2.5);
  EXPECT_EQ(manager->last_sample("h").timestamp, 7.0);
}

TEST(NodeManager, SensorFailureDoesNotPropagate) {
  auto manager = std::make_shared<SystemManager>();
  manager->register_host("h", 1.0);
  auto sensor = std::make_shared<CallbackSensor>(
      []() -> double { throw std::runtime_error("sensor wedged"); });
  NodeManager node("h", sensor, manager, 1.0);
  EXPECT_NO_THROW(node.tick(0.0));
  EXPECT_EQ(node.reports_sent(), 0u);
}

TEST(NodeManager, SimulatedModeReportsPeriodically) {
  sim::Cluster cluster;
  sim::Host& host = cluster.add_host("h", 100.0, 1);
  auto manager = std::make_shared<SystemManager>();
  manager->register_host("h", 1.0);
  NodeManager node("h", std::make_shared<SimHostSensor>(host), manager, 2.0);
  node.start_simulated(cluster.events());
  cluster.events().run_until(9.0);
  // Reports at t = 0, 2, 4, 6, 8.
  EXPECT_EQ(node.reports_sent(), 5u);
  EXPECT_EQ(manager->last_sample("h").timestamp, 8.0);
  EXPECT_EQ(manager->last_sample("h").load_avg, 1.0);
  node.stop();
  const auto before = node.reports_sent();
  cluster.events().run_until(20.0);
  EXPECT_EQ(node.reports_sent(), before);  // stopped managers stay silent
}

TEST(NodeManager, SimulatedReportsTrackChangingLoad) {
  sim::Cluster cluster;
  sim::Host& host = cluster.add_host("h", 100.0);
  auto manager = std::make_shared<SystemManager>();
  manager->register_host("h", 1.0);
  NodeManager node("h", std::make_shared<SimHostSensor>(host), manager, 1.0);
  node.start_simulated(cluster.events());
  cluster.events().schedule_at(2.5, [&] { host.set_background_processes(4); });
  cluster.events().run_until(2.0);
  EXPECT_EQ(manager->last_sample("h").load_avg, 0.0);
  cluster.events().run_until(3.0);
  EXPECT_EQ(manager->last_sample("h").load_avg, 4.0);
  node.stop();
}

TEST(NodeManager, ThreadedModeReportsOnWallClock) {
  auto manager = std::make_shared<SystemManager>();
  manager->register_host("h", 1.0);
  auto sensor = std::make_shared<CallbackSensor>([] { return 1.0; });
  NodeManager node("h", sensor, manager, 0.02);
  node.start_threaded();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (node.reports_sent() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  node.stop();
  EXPECT_GE(node.reports_sent(), 3u);
}

TEST(NodeManager, StopIsIdempotent) {
  auto manager = std::make_shared<SystemManager>();
  auto sensor = std::make_shared<CallbackSensor>([] { return 0.0; });
  NodeManager node("h", sensor, manager, 1.0);
  node.start_threaded();
  node.stop();
  node.stop();
}

}  // namespace
}  // namespace winner
