// Unit tests for the cluster: host registry, endpoint mapping, network
// model, failure injection, and local-work pumping.
#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace sim {
namespace {

TEST(Cluster, AddAndLookupHosts) {
  Cluster cluster;
  cluster.add_host("node01", 100.0);
  cluster.add_host("node02", 200.0, 1);
  EXPECT_TRUE(cluster.has_host("node01"));
  EXPECT_FALSE(cluster.has_host("node99"));
  EXPECT_EQ(cluster.size(), 2u);
  EXPECT_EQ(cluster.host("node02").speed(), 200.0);
  EXPECT_EQ(cluster.host("node02").background_processes(), 1);
  EXPECT_EQ(cluster.host_names(), (std::vector<std::string>{"node01", "node02"}));
}

TEST(Cluster, DuplicateAndUnknownHostsRejected) {
  Cluster cluster;
  cluster.add_host("node01", 100.0);
  EXPECT_THROW(cluster.add_host("node01", 100.0), std::invalid_argument);
  EXPECT_THROW(cluster.host("nope"), std::out_of_range);
}

TEST(Cluster, EndpointMapping) {
  Cluster cluster;
  cluster.add_host("node01", 100.0);
  cluster.map_endpoint("sim://node01", "node01");
  ASSERT_NE(cluster.host_for_endpoint("sim://node01"), nullptr);
  EXPECT_EQ(cluster.host_for_endpoint("sim://node01")->name(), "node01");
  EXPECT_EQ(cluster.host_for_endpoint("unmapped"), nullptr);
  EXPECT_THROW(cluster.map_endpoint("x", "missing-host"), std::out_of_range);
}

TEST(NetworkModel, TransferTimeIsLatencyPlusBytesOverBandwidth) {
  NetworkModel net;
  net.latency_s = 1e-3;
  net.bandwidth_bytes_per_s = 1e6;
  EXPECT_DOUBLE_EQ(net.transfer_time(0), 1e-3);
  EXPECT_DOUBLE_EQ(net.transfer_time(1000), 1e-3 + 1e-3);
}

TEST(Cluster, BackgroundLoadInjection) {
  Cluster cluster;
  cluster.add_host("node01", 100.0);
  cluster.set_background_load("node01", 3);
  EXPECT_EQ(cluster.host("node01").background_processes(), 3);
}

TEST(Cluster, ScheduledCrashFiresAtTime) {
  Cluster cluster;
  cluster.add_host("node01", 100.0);
  cluster.crash_host_at(5.0, "node01");
  EXPECT_TRUE(cluster.host("node01").alive());
  cluster.events().run_until(4.9);
  EXPECT_TRUE(cluster.host("node01").alive());
  cluster.events().run_until(5.0);
  EXPECT_FALSE(cluster.host("node01").alive());
  cluster.restart_host("node01");
  EXPECT_TRUE(cluster.host("node01").alive());
}

TEST(Cluster, RunLocalWorkAdvancesVirtualTime) {
  Cluster cluster;
  cluster.add_host("node01", 100.0, 1);  // 1 background => half rate
  cluster.run_local_work("node01", 100.0);
  EXPECT_NEAR(cluster.events().now(), 2.0, 1e-9);
}

TEST(Cluster, RunLocalWorkThrowsOnCrash) {
  Cluster cluster;
  cluster.add_host("node01", 100.0);
  cluster.crash_host_at(0.5, "node01");
  EXPECT_THROW(cluster.run_local_work("node01", 1000.0), std::runtime_error);
}

}  // namespace
}  // namespace sim
