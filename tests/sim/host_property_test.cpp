// Property tests for the processor-sharing host model under randomized
// workloads: work conservation, busy-period length, completion-order
// monotonicity for equal-size tasks, and background-load scaling.
#include <gtest/gtest.h>

#include <random>

#include "sim/cluster.hpp"

namespace sim {
namespace {

struct Arrival {
  Time at;
  double work;
};

class HostPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HostPropertyTest, WorkConservationUnderRandomArrivals) {
  // Property: for any arrival pattern, the host finishes all work no
  // earlier than total_work/speed after the last idle instant, and exactly
  // then when the host is never idle.
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> work_dist(1.0, 200.0);
  std::uniform_real_distribution<double> gap_dist(0.0, 0.5);

  EventQueue q;
  Host host(q, "h", 100.0);
  double total_work = 0.0;
  Time at = 0.0;
  Time last_done = 0.0;
  int completed = 0;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    at += gap_dist(rng);
    const double work = work_dist(rng);
    total_work += work;
    q.schedule_at(at, [&host, &q, &last_done, &completed, work] {
      host.submit(work, [&q, &last_done, &completed] {
        last_done = q.now();
        ++completed;
      });
    });
  }
  q.run_until_idle();
  ASSERT_EQ(completed, n);
  // All arrivals land within ~20 virtual seconds; total work of ~4000 units
  // at speed 100 keeps the host continuously busy from the first arrival,
  // so the makespan is exactly first_arrival + total_work/speed.
  EXPECT_NEAR(host.completed_work(), total_work, 1e-6);
  EXPECT_GE(last_done + 1e-9, total_work / 100.0);
}

TEST_P(HostPropertyTest, EqualTasksFinishInArrivalOrder) {
  // Property: under processor sharing, tasks with equal remaining work
  // finish in arrival order (earlier arrivals have strictly less remaining
  // work at any shared instant).
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> gap_dist(0.01, 0.3);

  EventQueue q;
  Host host(q, "h", 100.0);
  std::vector<int> completion_order;
  Time at = 0.0;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    at += gap_dist(rng);
    q.schedule_at(at, [&host, &completion_order, i] {
      host.submit(50.0, [&completion_order, i] {
        completion_order.push_back(i);
      });
    });
  }
  q.run_until_idle();
  ASSERT_EQ(completion_order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(completion_order[static_cast<std::size_t>(i)], i);
}

TEST_P(HostPropertyTest, BackgroundScalingIsExact) {
  // Property: a single task under constant background load B takes exactly
  // (B+1)x its solo time, for any work size.
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> work_dist(1.0, 500.0);
  for (int bg = 0; bg < 4; ++bg) {
    EventQueue q;
    Host host(q, "h", 100.0, bg);
    const double work = work_dist(rng);
    Time done = -1;
    host.submit(work, [&] { done = q.now(); });
    q.run_until_idle();
    EXPECT_NEAR(done, (bg + 1) * work / 100.0, 1e-9);
  }
}

TEST_P(HostPropertyTest, SpeedInvariance) {
  // Property: scaling host speed and all work sizes by the same factor
  // leaves every completion time unchanged (the model is unit-free).
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> work_dist(1.0, 100.0);
  std::vector<double> works;
  for (int i = 0; i < 10; ++i) works.push_back(work_dist(rng));

  auto run = [&](double scale) {
    EventQueue q;
    Host host(q, "h", 100.0 * scale);
    std::vector<Time> completions;
    for (double work : works)
      host.submit(work * scale,
                  [&completions, &q] { completions.push_back(q.now()); });
    q.run_until_idle();
    return completions;
  };
  const auto base = run(1.0);
  const auto scaled = run(1000.0);
  ASSERT_EQ(base.size(), scaled.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_NEAR(base[i], scaled[i], 1e-9 * (1.0 + base[i]));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostPropertyTest,
                         ::testing::Values(3, 17, 99, 2026));

}  // namespace
}  // namespace sim
