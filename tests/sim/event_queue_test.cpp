// Unit tests for the virtual-time event queue: ordering, clock monotonicity,
// reentrancy, and the run_while/run_until pumping primitives.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, EventsFireInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule_at(5.0, [&, i] { order.push_back(i); });
  q.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.step();
  EXPECT_EQ(q.now(), 10.0);
  double fired_at = -1;
  q.schedule_at(2.0, [&] { fired_at = q.now(); });
  q.step();
  EXPECT_EQ(fired_at, 10.0);  // clock never goes backwards
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(4.0, [&] {
    q.schedule_after(1.5, [&] { fired_at = q.now(); });
  });
  q.run_until_idle();
  EXPECT_DOUBLE_EQ(fired_at, 5.5);
}

TEST(EventQueue, NegativeDelayClampsToZero) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(3.0, [&] {
    q.schedule_after(-5.0, [&] { fired_at = q.now(); });
  });
  q.run_until_idle();
  EXPECT_EQ(fired_at, 3.0);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(9.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunWhileStopsWhenConditionClears) {
  EventQueue q;
  bool done = false;
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [&] { done = true; });
  q.schedule_at(3.0, [] {});
  EXPECT_TRUE(q.run_while([&] { return !done; }));
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunWhileReportsDrainedQueue) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  EXPECT_FALSE(q.run_while([] { return true; }));
}

TEST(EventQueue, ReentrantPumpingInsideEvent) {
  // An event may pump the queue recursively (nested synchronous call in the
  // simulator); time remains monotonic.
  EventQueue q;
  std::vector<double> times;
  bool inner_done = false;
  q.schedule_at(1.0, [&] {
    times.push_back(q.now());
    q.schedule_at(2.0, [&] {
      times.push_back(q.now());
      inner_done = true;
    });
    q.run_while([&] { return !inner_done; });
    times.push_back(q.now());
  });
  q.schedule_at(5.0, [&] { times.push_back(q.now()); });
  q.run_until_idle();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 2.0, 5.0}));
}

TEST(EventQueue, CountsExecutedEvents) {
  EventQueue q;
  for (int i = 0; i < 42; ++i) q.schedule_after(1.0, [] {});
  q.run_until_idle();
  EXPECT_EQ(q.executed(), 42u);
}

}  // namespace
}  // namespace sim
