// Unit tests for the processor-sharing host model.  These pin down the
// timing semantics the Fig. 3 reproduction rests on: background load slows
// tasks proportionally, colocated tasks share the CPU, and crashes fail
// resident work.
#include "sim/host.hpp"

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace sim {
namespace {

struct Completion {
  bool done = false;
  bool failed = false;
  Time at = -1;
};

void submit_tracked(Host& host, EventQueue& q, double work, Completion& c) {
  host.submit(
      work,
      [&c, &q] {
        c.done = true;
        c.at = q.now();
      },
      [&c, &q] {
        c.failed = true;
        c.at = q.now();
      });
}

TEST(Host, SingleTaskRunsAtFullSpeed) {
  EventQueue q;
  Host host(q, "h", 100.0);  // 100 units/s
  Completion c;
  submit_tracked(host, q, 500.0, c);
  q.run_until_idle();
  EXPECT_TRUE(c.done);
  EXPECT_NEAR(c.at, 5.0, 1e-9);
}

TEST(Host, SpeedScalesCompletionTime) {
  EventQueue q;
  Host fast(q, "fast", 200.0);
  Host slow(q, "slow", 50.0);
  Completion cf, cs;
  submit_tracked(fast, q, 100.0, cf);
  submit_tracked(slow, q, 100.0, cs);
  q.run_until_idle();
  EXPECT_NEAR(cf.at, 0.5, 1e-9);
  EXPECT_NEAR(cs.at, 2.0, 1e-9);
}

TEST(Host, BackgroundLoadHalvesThroughput) {
  // One background process + one task => each gets half the CPU, exactly
  // the paper's "background load" effect on a timeshared workstation.
  EventQueue q;
  Host host(q, "h", 100.0, /*background=*/1);
  Completion c;
  submit_tracked(host, q, 100.0, c);
  q.run_until_idle();
  EXPECT_NEAR(c.at, 2.0, 1e-9);
}

class HostBackgroundSweep : public ::testing::TestWithParam<int> {};

TEST_P(HostBackgroundSweep, SlowdownIsOnePlusBackground) {
  const int bg = GetParam();
  EventQueue q;
  Host host(q, "h", 100.0, bg);
  Completion c;
  submit_tracked(host, q, 100.0, c);
  q.run_until_idle();
  EXPECT_NEAR(c.at, 1.0 * (1 + bg), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HostBackgroundSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 9));

TEST(Host, TwoEqualTasksShareAndFinishTogether) {
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion a, b;
  submit_tracked(host, q, 100.0, a);
  submit_tracked(host, q, 100.0, b);
  q.run_until_idle();
  EXPECT_NEAR(a.at, 2.0, 1e-9);
  EXPECT_NEAR(b.at, 2.0, 1e-9);
}

TEST(Host, UnequalTasksProcessorShareCorrectly) {
  // Tasks of 100 and 300 units at speed 100: both run at 50/s until the
  // short one finishes at t=2; the long one then has 200 left at 100/s,
  // finishing at t=4.
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion small, large;
  submit_tracked(host, q, 100.0, small);
  submit_tracked(host, q, 300.0, large);
  q.run_until_idle();
  EXPECT_NEAR(small.at, 2.0, 1e-9);
  EXPECT_NEAR(large.at, 4.0, 1e-9);
}

TEST(Host, LateArrivalSharesRemainingWork) {
  // Task A (200 units) starts alone at t=0; task B (100 units) arrives at
  // t=1 when A has 100 left.  They share: both at 50/s, finishing at t=3.
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion a, b;
  submit_tracked(host, q, 200.0, a);
  q.schedule_at(1.0, [&] { submit_tracked(host, q, 100.0, b); });
  q.run_until_idle();
  EXPECT_NEAR(a.at, 3.0, 1e-9);
  EXPECT_NEAR(b.at, 3.0, 1e-9);
}

TEST(Host, BackgroundChangeMidFlightRetimesTasks) {
  // 100 units at speed 100; at t=0.5 (50 done) one background process
  // appears, halving the rate: the remaining 50 units take 1s more.
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion c;
  submit_tracked(host, q, 100.0, c);
  q.schedule_at(0.5, [&] { host.set_background_processes(1); });
  q.run_until_idle();
  EXPECT_NEAR(c.at, 1.5, 1e-9);
}

TEST(Host, ZeroWorkCompletesImmediatelyButAsynchronously) {
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion c;
  submit_tracked(host, q, 0.0, c);
  EXPECT_FALSE(c.done);  // not synchronous
  q.run_until_idle();
  EXPECT_TRUE(c.done);
  EXPECT_EQ(c.at, 0.0);
}

TEST(Host, CrashFailsResidentTasks) {
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion c;
  submit_tracked(host, q, 100.0, c);
  q.schedule_at(0.25, [&] { host.crash(); });
  q.run_until_idle();
  EXPECT_TRUE(c.failed);
  EXPECT_FALSE(c.done);
  EXPECT_NEAR(c.at, 0.25, 1e-9);
  EXPECT_FALSE(host.alive());
}

TEST(Host, SubmitToDeadHostFailsAsynchronously) {
  EventQueue q;
  Host host(q, "h", 100.0);
  host.crash();
  Completion c;
  submit_tracked(host, q, 100.0, c);
  EXPECT_FALSE(c.failed);
  q.run_until_idle();
  EXPECT_TRUE(c.failed);
}

TEST(Host, RestartAcceptsNewWork) {
  EventQueue q;
  Host host(q, "h", 100.0);
  host.crash();
  host.restart();
  EXPECT_TRUE(host.alive());
  Completion c;
  submit_tracked(host, q, 100.0, c);
  q.run_until_idle();
  EXPECT_TRUE(c.done);
}

TEST(Host, CrashCancelsScheduledCompletionForGood) {
  // After a crash the stale completion event must not resurrect anything.
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion c;
  submit_tracked(host, q, 100.0, c);
  q.schedule_at(0.5, [&] { host.crash(); });
  q.run_until_idle();
  EXPECT_TRUE(c.failed);
  EXPECT_EQ(host.active_tasks(), 0u);
}

TEST(Host, ObservedLoadCountsTasksAndBackground) {
  EventQueue q;
  Host host(q, "h", 100.0, 2);
  EXPECT_EQ(host.observed_load(), 2.0);
  Completion a, b;
  submit_tracked(host, q, 1000.0, a);
  submit_tracked(host, q, 1000.0, b);
  EXPECT_EQ(host.observed_load(), 4.0);
  q.run_until_idle();
  EXPECT_EQ(host.observed_load(), 2.0);
}

TEST(Host, CompletedWorkAccounting) {
  EventQueue q;
  Host host(q, "h", 100.0);
  Completion a;
  submit_tracked(host, q, 123.0, a);
  q.run_until_idle();
  EXPECT_NEAR(host.completed_work(), 123.0, 1e-9);
  // A crashed task's unfinished work is not counted.
  Completion b;
  submit_tracked(host, q, 100.0, b);
  q.schedule_after(0.5, [&] { host.crash(); });
  q.run_until_idle();
  EXPECT_NEAR(host.completed_work(), 123.0 + 50.0, 1e-9);
}

TEST(Host, InvalidConstructionRejected) {
  EventQueue q;
  EXPECT_THROW(Host(q, "h", 0.0), std::invalid_argument);
  EXPECT_THROW(Host(q, "h", -1.0), std::invalid_argument);
  EXPECT_THROW(Host(q, "h", 1.0, -1), std::invalid_argument);
  Host host(q, "h", 1.0);
  EXPECT_THROW(host.submit(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(host.set_background_processes(-2), std::invalid_argument);
}

TEST(Host, ManyTasksFairness) {
  // Property: N equal tasks on one host all finish at N * t_alone.
  for (int n : {2, 4, 8}) {
    EventQueue q;
    Host host(q, "h", 100.0);
    std::vector<Completion> completions(static_cast<std::size_t>(n));
    for (auto& c : completions) submit_tracked(host, q, 100.0, c);
    q.run_until_idle();
    for (const auto& c : completions) {
      EXPECT_TRUE(c.done);
      EXPECT_NEAR(c.at, 1.0 * n, 1e-9);
    }
  }
}

TEST(Host, WorkConservation) {
  // Property: regardless of arrival pattern, total completion time of the
  // last task equals total work / speed when the host is never idle.
  EventQueue q;
  Host host(q, "h", 50.0);
  std::vector<Completion> completions(5);
  const double works[] = {10, 70, 30, 55, 35};  // total 200
  for (std::size_t i = 0; i < 5; ++i)
    submit_tracked(host, q, works[i], completions[i]);
  q.run_until_idle();
  Time last = 0;
  for (const auto& c : completions) last = std::max(last, c.at);
  EXPECT_NEAR(last, 200.0 / 50.0, 1e-9);
}

}  // namespace
}  // namespace sim
