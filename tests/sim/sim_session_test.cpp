// Deterministic mirror of the resumable-session protocol: a connection-reset
// fault severs the (simulated) connection without killing a host.  With
// sessions off that is a batched COMM_FAILURE, exactly like a drop; with
// sessions on the transport resumes — the call completes exactly-once after
// a deterministic penalty and the session counters advance.  Same-seed runs
// produce byte-identical fault traces.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/orb.hpp"
#include "orb/session.hpp"
#include "orb/stub.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sim_transport.hpp"
#include "sim/work_meter.hpp"

namespace sim {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

class EchoServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "burn") {
      check_arity(op, args, 1);
      WorkMeter::charge(args[0].as_f64());
      ++calls_;
      return corba::Value(static_cast<std::int64_t>(calls_));
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  int calls_ = 0;
};

class SimSessionTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { build(/*enable_sessions=*/GetParam()); }

  void build(bool enable_sessions) {
    network_ = std::make_shared<corba::InProcessNetwork>();
    transport_ = std::make_shared<SimTransport>(cluster_, network_, "client",
                                                /*request_timeout_s=*/0,
                                                enable_sessions);
    cluster_.network().latency_s = 1.0;
    cluster_.network().bandwidth_bytes_per_s = 1e18;
    cluster_.add_host("server", 100.0);
    server_orb_ = corba::ORB::init({.endpoint_name = "server",
                                    .network = network_,
                                    .client_transport_override = transport_});
    cluster_.map_endpoint("server", "server");
    cluster_.add_host("clienthost", 100.0);
    cluster_.map_endpoint("client", "clienthost");
    client_ = corba::ORB::init({.endpoint_name = "client",
                                .network = network_,
                                .client_transport_override = transport_});
    servant_ = std::make_shared<EchoServant>();
    ref_ = client_->make_ref(server_orb_->activate(servant_, "echo").ior());
  }

  void arm(FaultPlan plan) {
    cluster_.set_fault_injector(std::make_shared<FaultInjector>(plan));
  }
  void arm_at(double t, FaultPlan plan) {
    cluster_.events().schedule_at(t, [this, plan = std::move(plan)] {
      auto injector = std::make_shared<FaultInjector>(plan);
      injector->set_origin(0.0);
      cluster_.set_fault_injector(injector);
    });
  }

  corba::Value burn(double work) {
    return ref_.invoke("burn", {corba::Value(work)});
  }

  Cluster cluster_;
  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<SimTransport> transport_;
  std::shared_ptr<corba::ORB> server_orb_;
  std::shared_ptr<corba::ORB> client_;
  std::shared_ptr<EchoServant> servant_;
  corba::ObjectRef ref_;
};

TEST(FaultPlanResetTest, ValidationAndTraceVocabulary) {
  EXPECT_THROW(FaultInjector({.reset_probability = -0.5}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector({.reset_probability = 1.5}),
               std::invalid_argument);

  FaultInjector faults({.seed = 3, .reset_probability = 1.0});
  const MessageFate request = faults.fate("a", "b", 1.5, /*is_reply=*/false);
  EXPECT_EQ(request.action, MessageFate::Action::reset);
  const MessageFate reply = faults.fate("b", "a", 2.5, /*is_reply=*/true);
  EXPECT_EQ(reply.action, MessageFate::Action::reset);
  EXPECT_EQ(faults.connection_resets(), 2u);
  ASSERT_EQ(faults.trace().size(), 2u);
  EXPECT_NE(faults.trace()[0].find("reset request a->b"), std::string::npos);
  EXPECT_NE(faults.trace()[1].find("reset reply b->a"), std::string::npos);
}

TEST(FaultPlanResetTest, SameSeedSameTrace) {
  const FaultPlan plan{.seed = 11,
                       .drop_probability = 0.1,
                       .reset_probability = 0.4,
                       .duplicate_probability = 0.1,
                       .latency_spike_probability = 0.1,
                       .latency_spike_s = 1.0};
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 300; ++i) {
    a.fate("x", "y", i * 0.1, i % 2 == 0);
    b.fate("x", "y", i * 0.1, i % 2 == 0);
  }
  EXPECT_EQ(a.trace(), b.trace());
  EXPECT_EQ(a.connection_resets(), b.connection_resets());
  EXPECT_GT(a.connection_resets(), 0u);
}

TEST(FaultPlanResetTest, ZeroResetProbabilityLeavesOtherStreamsAligned) {
  // The reset draw sits between drop and duplicate; with probability 0 it
  // must not consume from the seeded stream, so pre-session plans keep
  // byte-identical traces.
  const FaultPlan with_field{.seed = 5,
                             .drop_probability = 0.2,
                             .reset_probability = 0.0,
                             .duplicate_probability = 0.3,
                             .latency_spike_probability = 0.2,
                             .latency_spike_s = 0.5};
  FaultPlan default_field = with_field;
  default_field.reset_probability = 0.0;
  FaultInjector a(with_field), b(default_field);
  for (int i = 0; i < 300; ++i) {
    a.fate("x", "y", i * 0.1, i % 3 == 0);
    b.fate("x", "y", i * 0.1, i % 3 == 0);
  }
  EXPECT_EQ(a.trace(), b.trace());
}

INSTANTIATE_TEST_SUITE_P(SessionsOnOff, SimSessionTest, ::testing::Bool());

TEST_P(SimSessionTest, ResetRequestFate) {
  const bool sessions = GetParam();
  const std::uint64_t resumes_before =
      counter_value("transport.session.resumes_total");
  const std::uint64_t retransmits_before =
      counter_value("transport.session.retransmitted_frames_total");
  // Reset only the request hop: the injector is disarmed again at the
  // server, before the reply leaves.
  arm({.seed = 2, .reset_probability = 1.0});
  arm_at(1.5, {});  // replace with a quiet injector before the reply hop

  if (sessions) {
    // Request transfer (1s) + resume penalty (3 × latency) → dispatch at
    // t=4; 1s of work; quiet reply hop (1s) → reply at t=6.  Exactly-once.
    EXPECT_EQ(burn(100.0).as_i64(), 1);
    EXPECT_EQ(servant_->calls_, 1);
    EXPECT_NEAR(cluster_.events().now(), 6.0, 1e-6);
    EXPECT_EQ(counter_value("transport.session.resumes_total"),
              resumes_before + 1);
    EXPECT_EQ(counter_value("transport.session.retransmitted_frames_total"),
              retransmits_before + 1);
  } else {
    try {
      burn(100.0);
      FAIL() << "expected COMM_FAILURE";
    } catch (const corba::COMM_FAILURE& e) {
      EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_no);
    }
    EXPECT_EQ(servant_->calls_, 0);
    EXPECT_EQ(counter_value("transport.session.resumes_total"),
              resumes_before);
  }
}

TEST_P(SimSessionTest, ResetReplyFate) {
  const bool sessions = GetParam();
  const std::uint64_t resumes_before =
      counter_value("transport.session.resumes_total");
  const std::uint64_t replayed_before =
      counter_value("transport.session.replayed_replies_total");
  // Armed after the request hop (t=1) but before the reply leaves (t=6):
  // only the reply is reset.  The method ran either way.
  arm_at(2.0, {.seed = 2, .reset_probability = 1.0});

  if (sessions) {
    // Request 1s + 5s work; reply transfer 1s + resume penalty 3s → t=10.
    EXPECT_EQ(burn(500.0).as_i64(), 1);
    EXPECT_EQ(servant_->calls_, 1);
    EXPECT_NEAR(cluster_.events().now(), 10.0, 1e-6);
    EXPECT_EQ(counter_value("transport.session.resumes_total"),
              resumes_before + 1);
    EXPECT_EQ(counter_value("transport.session.replayed_replies_total"),
              replayed_before + 1);
  } else {
    try {
      burn(500.0);
      FAIL() << "expected COMM_FAILURE";
    } catch (const corba::COMM_FAILURE& e) {
      EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
    }
    EXPECT_EQ(servant_->calls_, 1);  // the method DID run
    EXPECT_EQ(counter_value("transport.session.resumes_total"),
              resumes_before);
  }
}

}  // namespace
}  // namespace sim
