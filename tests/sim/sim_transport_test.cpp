// Tests of the simulator transport: virtual-time call timing, processor
// sharing across concurrent calls, background-load slowdown, and the full
// CORBA failure vocabulary (unknown endpoint, dead host, mid-call crash,
// stopped server process).
#include "sim/sim_transport.hpp"

#include <gtest/gtest.h>

#include "orb/dii.hpp"
#include "orb/exceptions.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"
#include "sim/work_meter.hpp"

namespace sim {
namespace {

// A servant whose only operation burns a caller-chosen amount of work.
class BurnerServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Burner:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "burn") {
      check_arity(op, args, 1);
      const double work = args[0].as_f64();
      WorkMeter::charge(work);
      ++calls_;
      return corba::Value(work);
    }
    if (op == "calls") {
      return corba::Value(static_cast<std::int64_t>(calls_));
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  int calls_ = 0;
};

class SimTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    transport_ = std::make_shared<SimTransport>(cluster_, network_);
    // Ten-node NOW with unit speeds; network costs zeroed for exact timing
    // assertions (separate tests cover the network model).
    cluster_.network().latency_s = 0;
    cluster_.network().bandwidth_bytes_per_s = 1e18;
    for (int i = 0; i < 3; ++i) {
      const std::string host = "node" + std::to_string(i);
      cluster_.add_host(host, 100.0);
      orbs_.push_back(corba::ORB::init({.endpoint_name = host,
                                        .network = network_,
                                        .client_transport_override = transport_}));
      cluster_.map_endpoint(host, host);
    }
    client_ = corba::ORB::init({.endpoint_name = "client",
                                .network = network_,
                                .client_transport_override = transport_});
  }

  corba::ObjectRef burner_on(int node) {
    auto servant = std::make_shared<BurnerServant>();
    const corba::ObjectRef ref =
        orbs_[static_cast<std::size_t>(node)]->activate(servant, "burner");
    return client_->make_ref(ref.ior());
  }

  Cluster cluster_;
  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<SimTransport> transport_;
  std::vector<std::shared_ptr<corba::ORB>> orbs_;
  std::shared_ptr<corba::ORB> client_;
};

TEST_F(SimTransportTest, SyncCallAdvancesVirtualTimeByWorkOverSpeed) {
  const corba::ObjectRef ref = burner_on(0);
  const double t0 = cluster_.events().now();
  const corba::Value result = ref.invoke("burn", {corba::Value(500.0)});
  EXPECT_EQ(result.as_f64(), 500.0);
  EXPECT_NEAR(cluster_.events().now() - t0, 5.0, 1e-9);
}

TEST_F(SimTransportTest, NetworkCostsAddToCallTime) {
  cluster_.network().latency_s = 0.1;
  const corba::ObjectRef ref = burner_on(0);
  ref.invoke("burn", {corba::Value(100.0)});
  // 0.1 request latency + 1.0 compute + 0.1 reply latency (+ size/bw ~ 0).
  EXPECT_NEAR(cluster_.events().now(), 1.2, 1e-6);
}

TEST_F(SimTransportTest, ParallelCallsToDistinctHostsOverlap) {
  // The deferred-synchronous pattern of the paper's manager: two equal
  // calls on two hosts take max(), not sum().
  corba::Request a(burner_on(0), "burn");
  corba::Request b(burner_on(1), "burn");
  a.add_argument(corba::Value(500.0));
  b.add_argument(corba::Value(500.0));
  a.send_deferred();
  b.send_deferred();
  a.get_response();
  b.get_response();
  EXPECT_NEAR(cluster_.events().now(), 5.0, 1e-9);
}

TEST_F(SimTransportTest, ParallelCallsToSameHostProcessorShare) {
  corba::Request a(burner_on(0), "burn");
  corba::Request b(burner_on(0), "burn");
  a.add_argument(corba::Value(500.0));
  b.add_argument(corba::Value(500.0));
  a.send_deferred();
  b.send_deferred();
  a.get_response();
  b.get_response();
  EXPECT_NEAR(cluster_.events().now(), 10.0, 1e-9);
}

TEST_F(SimTransportTest, BackgroundLoadSlowsCallsProportionally) {
  cluster_.set_background_load("node0", 1);
  const corba::ObjectRef ref = burner_on(0);
  ref.invoke("burn", {corba::Value(500.0)});
  EXPECT_NEAR(cluster_.events().now(), 10.0, 1e-9);
}

TEST_F(SimTransportTest, UnmappedEndpointIsCommFailureCompletedNo) {
  corba::IOR bogus;
  bogus.protocol = std::string(corba::protocol::inproc);
  bogus.host = "ghost-node";
  bogus.key = corba::ObjectKey::from_string("k");
  try {
    client_->make_ref(bogus).invoke("burn", {corba::Value(1.0)});
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.minor(), corba::minor_code::endpoint_unknown);
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_no);
  }
}

TEST_F(SimTransportTest, DeadHostIsCommFailureHostDown) {
  const corba::ObjectRef ref = burner_on(0);
  cluster_.crash_host("node0");
  try {
    ref.invoke("burn", {corba::Value(1.0)});
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.minor(), corba::minor_code::host_down);
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_no);
  }
}

TEST_F(SimTransportTest, CrashDuringCallIsCompletedMaybe) {
  const corba::ObjectRef ref = burner_on(0);
  cluster_.events().schedule_at(2.0, [this] { cluster_.crash_host("node0"); });
  try {
    ref.invoke("burn", {corba::Value(500.0)});  // would finish at t=5
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.minor(), corba::minor_code::server_crashed);
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
  }
  EXPECT_NEAR(cluster_.events().now(), 2.0, 1e-9);
}

TEST_F(SimTransportTest, StoppedServerProcessIsConnectFailed) {
  const corba::ObjectRef ref = burner_on(1);
  orbs_[1]->shutdown();  // process gone, host still up
  try {
    ref.invoke("burn", {corba::Value(1.0)});
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.minor(), corba::minor_code::connect_failed);
  }
}

TEST_F(SimTransportTest, ServerSideExceptionsStillCarriedInReply) {
  const corba::ObjectRef ref = burner_on(0);
  EXPECT_THROW(ref.invoke("no_such_op", {}), corba::BAD_OPERATION);
}

TEST_F(SimTransportTest, OnewayDeliversWithoutBlocking) {
  auto servant = std::make_shared<BurnerServant>();
  const corba::ObjectRef server_ref = orbs_[0]->activate(servant, "burner");
  const corba::ObjectRef ref = client_->make_ref(server_ref.ior());
  ref.invoke_oneway("burn", {corba::Value(100.0)});
  EXPECT_EQ(servant->calls_, 0);  // nothing delivered yet in virtual time
  cluster_.events().run_until_idle();
  EXPECT_EQ(servant->calls_, 1);
}

TEST_F(SimTransportTest, SequentialCallsAccumulateTime) {
  const corba::ObjectRef ref = burner_on(2);
  for (int i = 0; i < 4; ++i) ref.invoke("burn", {corba::Value(100.0)});
  EXPECT_NEAR(cluster_.events().now(), 4.0, 1e-9);
}

TEST_F(SimTransportTest, SlowAndFastHostHeterogeneity) {
  Cluster cluster;
  cluster.network().latency_s = 0;
  cluster.network().bandwidth_bytes_per_s = 1e18;
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto transport = std::make_shared<SimTransport>(cluster, network);
  cluster.add_host("fast", 200.0);
  cluster.add_host("slow", 50.0);
  auto fast_orb = corba::ORB::init({.endpoint_name = "fast",
                                    .network = network,
                                    .client_transport_override = transport});
  auto slow_orb = corba::ORB::init({.endpoint_name = "slow",
                                    .network = network,
                                    .client_transport_override = transport});
  cluster.map_endpoint("fast", "fast");
  cluster.map_endpoint("slow", "slow");
  const corba::ObjectRef on_fast =
      fast_orb->activate(std::make_shared<BurnerServant>());
  const corba::ObjectRef on_slow =
      slow_orb->activate(std::make_shared<BurnerServant>());

  const double t0 = cluster.events().now();
  on_fast.invoke("burn", {corba::Value(100.0)});
  const double fast_elapsed = cluster.events().now() - t0;
  on_slow.invoke("burn", {corba::Value(100.0)});
  const double slow_elapsed = cluster.events().now() - t0 - fast_elapsed;
  EXPECT_NEAR(fast_elapsed, 0.5, 1e-9);
  EXPECT_NEAR(slow_elapsed, 2.0, 1e-9);
}

}  // namespace
}  // namespace sim
