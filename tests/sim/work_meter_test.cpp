// Unit tests for work metering: scope nesting (a nested dispatch bills its
// own host, not the outer one), inactive-mode no-ops, and thread locality.
#include "sim/work_meter.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sim {
namespace {

TEST(WorkMeter, InactiveByDefault) {
  EXPECT_FALSE(WorkMeter::active());
  WorkMeter::charge(100.0);  // silently dropped
}

TEST(WorkMeter, ScopeCollectsCharges) {
  WorkScope scope;
  EXPECT_TRUE(WorkMeter::active());
  WorkMeter::charge(10.0);
  WorkMeter::charge(5.5);
  EXPECT_DOUBLE_EQ(scope.consumed(), 15.5);
}

TEST(WorkMeter, NegativeAndZeroChargesIgnored) {
  WorkScope scope;
  WorkMeter::charge(0.0);
  WorkMeter::charge(-7.0);
  EXPECT_DOUBLE_EQ(scope.consumed(), 0.0);
}

TEST(WorkMeter, NestedScopesIsolateCharges) {
  // A servant dispatched from within another dispatch must bill its own
  // host only: the inner scope shadows the outer one.
  WorkScope outer;
  WorkMeter::charge(1.0);
  {
    WorkScope inner;
    WorkMeter::charge(100.0);
    EXPECT_DOUBLE_EQ(inner.consumed(), 100.0);
  }
  WorkMeter::charge(2.0);
  EXPECT_DOUBLE_EQ(outer.consumed(), 3.0);
}

TEST(WorkMeter, ScopesAreThreadLocal) {
  WorkScope main_scope;
  std::thread worker([] {
    EXPECT_FALSE(WorkMeter::active());  // the main thread's scope is invisible
    WorkScope scope;
    WorkMeter::charge(42.0);
    EXPECT_DOUBLE_EQ(scope.consumed(), 42.0);
  });
  worker.join();
  EXPECT_DOUBLE_EQ(main_scope.consumed(), 0.0);
}

}  // namespace
}  // namespace sim
