// Multiplexed semantics in the simulated transport: concurrent deferred
// calls share one per-target virtual connection, a lost message fails every
// sibling in flight on that connection (batched failure, mirroring the TCP
// transport), duplicated replies never mispair request ids, and the whole
// machinery stays deterministic under a fixed fault seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "orb/dii.hpp"
#include "orb/exceptions.hpp"
#include "orb/orb.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sim_transport.hpp"
#include "sim/work_meter.hpp"

namespace sim {
namespace {

class BurnerServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Burner:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "burn") {
      check_arity(op, args, 1);
      const double work = args[0].as_f64();
      WorkMeter::charge(work);
      ++calls_;
      return corba::Value(work);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  int calls_ = 0;
};

class SimMultiplexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    transport_ = std::make_shared<SimTransport>(cluster_, network_, "client");
    cluster_.network().latency_s = 0;
    cluster_.network().bandwidth_bytes_per_s = 1e18;
    cluster_.add_host("server", 100.0);
    cluster_.add_host("clienthost", 100.0);
    server_orb_ = corba::ORB::init({.endpoint_name = "server",
                                    .network = network_,
                                    .client_transport_override = transport_});
    cluster_.map_endpoint("server", "server");
    cluster_.map_endpoint("client", "clienthost");
    client_ = corba::ORB::init({.endpoint_name = "client",
                                .network = network_,
                                .client_transport_override = transport_});
    servant_ = std::make_shared<BurnerServant>();
    ref_ = client_->make_ref(server_orb_->activate(servant_, "burner").ior());
  }

  void arm(FaultPlan plan) {
    cluster_.set_fault_injector(std::make_shared<FaultInjector>(plan));
  }
  void arm_at(double t, FaultPlan plan) {
    cluster_.events().schedule_at(t, [this, plan = std::move(plan)] {
      auto injector = std::make_shared<FaultInjector>(plan);
      injector->set_origin(0.0);
      cluster_.set_fault_injector(injector);
    });
  }

  static obs::Counter& pipelined() {
    return obs::MetricsRegistry::global().counter(
        "transport.sim.pipelined_total");
  }
  static obs::Counter& batched() {
    return obs::MetricsRegistry::global().counter(
        "transport.sim.batched_failures_total");
  }

  Cluster cluster_;
  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<SimTransport> transport_;
  std::shared_ptr<corba::ORB> server_orb_;
  std::shared_ptr<corba::ORB> client_;
  std::shared_ptr<BurnerServant> servant_;
  corba::ObjectRef ref_;
};

TEST_F(SimMultiplexTest, ConcurrentDeferredCallsArePipelined) {
  const std::uint64_t pipelined_before = pipelined().value();
  corba::Request a(ref_, "burn");
  corba::Request b(ref_, "burn");
  a.add_argument(corba::Value(200.0));
  b.add_argument(corba::Value(400.0));
  a.send_deferred();
  b.send_deferred();  // second in flight on the same virtual connection
  a.get_response();
  b.get_response();
  EXPECT_EQ(a.return_value().as_f64(), 200.0);
  EXPECT_EQ(b.return_value().as_f64(), 400.0);
  EXPECT_EQ(pipelined().value(), pipelined_before + 1);
}

TEST_F(SimMultiplexTest, DroppedRequestFailsSiblingInFlight) {
  // 100% drop: call A's lost request resets the shared connection; sibling
  // B — already in flight on it — fails as part of the same batch.
  arm({.drop_probability = 1.0});
  const std::uint64_t batched_before = batched().value();
  corba::Request a(ref_, "burn");
  corba::Request b(ref_, "burn");
  a.add_argument(corba::Value(100.0));
  b.add_argument(corba::Value(100.0));
  a.send_deferred();
  b.send_deferred();
  try {
    a.get_response();
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_no);
  }
  try {
    b.get_response();
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    // B did not fail on its own: it was collateral of the connection reset.
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
  }
  EXPECT_EQ(servant_->calls_, 0);
  EXPECT_GE(batched().value(), batched_before + 1);
}

TEST_F(SimMultiplexTest, DroppedReplyFailsWholeBatchCompletedMaybe) {
  // Injector armed after both requests are delivered: only replies drop.
  arm_at(1.0, {.drop_probability = 1.0});
  corba::Request a(ref_, "burn");
  corba::Request b(ref_, "burn");
  a.add_argument(corba::Value(500.0));
  b.add_argument(corba::Value(500.0));
  a.send_deferred();
  b.send_deferred();
  int maybe_failures = 0;
  for (corba::Request* r : {&a, &b}) {
    try {
      r->get_response();
      FAIL() << "expected COMM_FAILURE";
    } catch (const corba::COMM_FAILURE& e) {
      if (e.completed() == corba::CompletionStatus::completed_maybe)
        ++maybe_failures;
    }
  }
  EXPECT_EQ(maybe_failures, 2);
  EXPECT_EQ(servant_->calls_, 2);  // both methods DID run
}

TEST_F(SimMultiplexTest, DuplicatedRepliesNeverMispairRequests) {
  // At-least-once delivery: every request is duplicated, the servant runs
  // twice per call, and the duplicate replies are discarded — each waiter
  // still receives exactly ITS result.
  arm({.duplicate_probability = 1.0});
  corba::Request a(ref_, "burn");
  corba::Request b(ref_, "burn");
  a.add_argument(corba::Value(100.0));
  b.add_argument(corba::Value(300.0));
  a.send_deferred();
  b.send_deferred();
  a.get_response();
  b.get_response();
  EXPECT_EQ(a.return_value().as_f64(), 100.0);
  EXPECT_EQ(b.return_value().as_f64(), 300.0);
  EXPECT_EQ(servant_->calls_, 4);
}

TEST_F(SimMultiplexTest, HealthyConnectionSurvivesUnrelatedFailure) {
  // A failure on the connection to one endpoint leaves calls to another
  // endpoint untouched: connections are per-target.
  cluster_.add_host("other", 100.0);
  auto other_orb = corba::ORB::init({.endpoint_name = "other",
                                     .network = network_,
                                     .client_transport_override = transport_});
  cluster_.map_endpoint("other", "other");
  auto other_servant = std::make_shared<BurnerServant>();
  const corba::ObjectRef other_ref =
      client_->make_ref(other_orb->activate(other_servant, "burner").ior());

  corba::Request ok(other_ref, "burn");
  ok.add_argument(corba::Value(500.0));
  ok.send_deferred();
  // Crash the first server while the "other" call is in flight.
  cluster_.events().schedule_at(1.0, [this] { cluster_.crash_host("server"); });
  corba::Request doomed(ref_, "burn");
  doomed.add_argument(corba::Value(500.0));
  doomed.send_deferred();
  EXPECT_THROW(doomed.get_response(), corba::COMM_FAILURE);
  ok.get_response();  // unaffected
  EXPECT_EQ(ok.return_value().as_f64(), 500.0);
}

// One full run of a small chaos scenario; returns a textual trace.
std::vector<std::string> chaos_trace(std::uint64_t seed) {
  Cluster cluster;
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto transport = std::make_shared<SimTransport>(cluster, network, "client");
  cluster.network().latency_s = 0.01;
  cluster.add_host("server", 100.0);
  cluster.add_host("clienthost", 100.0);
  auto server_orb = corba::ORB::init({.endpoint_name = "server",
                                      .network = network,
                                      .client_transport_override = transport,
                                      .adapter_id = 1});
  cluster.map_endpoint("server", "server");
  cluster.map_endpoint("client", "clienthost");
  auto client = corba::ORB::init({.endpoint_name = "client",
                                  .network = network,
                                  .client_transport_override = transport,
                                  .adapter_id = 2});
  auto servant = std::make_shared<BurnerServant>();
  const corba::ObjectRef ref =
      client->make_ref(server_orb->activate(servant, "burner").ior());
  cluster.set_fault_injector(std::make_shared<FaultInjector>(FaultPlan{
      .seed = seed, .drop_probability = 0.3, .duplicate_probability = 0.2}));

  std::vector<std::string> trace;
  for (int round = 0; round < 10; ++round) {
    // Two concurrent in-flight calls per round, like a pipelined client.
    corba::Request a(ref, "burn");
    corba::Request b(ref, "burn");
    a.add_argument(corba::Value(100.0 + round));
    b.add_argument(corba::Value(200.0 + round));
    a.send_deferred();
    b.send_deferred();
    for (corba::Request* r : {&a, &b}) {
      try {
        r->get_response();
        trace.push_back("ok:" + std::to_string(r->return_value().as_f64()));
      } catch (const corba::COMM_FAILURE& e) {
        trace.push_back(std::string("comm_failure:") +
                        (e.completed() == corba::CompletionStatus::completed_no
                             ? "no"
                             : "maybe"));
      }
    }
    trace.push_back("t=" + std::to_string(cluster.events().now()));
  }
  return trace;
}

TEST(SimMultiplexDeterminism, SameSeedYieldsIdenticalTraces) {
  const auto first = chaos_trace(42);
  const auto second = chaos_trace(42);
  EXPECT_EQ(first, second);
  // And the trace actually exercised both outcomes.
  bool saw_ok = false, saw_failure = false;
  for (const std::string& line : first) {
    if (line.starts_with("ok:")) saw_ok = true;
    if (line.starts_with("comm_failure:")) saw_failure = true;
  }
  EXPECT_TRUE(saw_failure) << "chaos plan produced no failures";
  (void)saw_ok;
}

}  // namespace
}  // namespace sim
