// Tests of the domain-aware (WAN) network model: intra- vs inter-domain
// transfer costs and their effect on simulated invocations.
#include <gtest/gtest.h>

#include "orb/orb.hpp"
#include "sim/cluster.hpp"
#include "sim/sim_transport.hpp"
#include "sim/work_meter.hpp"

namespace sim {
namespace {

TEST(WanNetwork, DomainAssignmentAndLookup) {
  Cluster cluster;
  cluster.add_host("a", 100.0);
  cluster.add_host("b", 100.0);
  EXPECT_EQ(cluster.domain_of("a"), "");
  cluster.set_host_domain("a", "site1");
  EXPECT_EQ(cluster.domain_of("a"), "site1");
  EXPECT_THROW(cluster.set_host_domain("missing", "x"), std::out_of_range);
}

TEST(WanNetwork, TransferTimePicksModelByDomain) {
  Cluster cluster;
  cluster.add_host("a", 100.0);
  cluster.add_host("b", 100.0);
  cluster.add_host("c", 100.0);
  cluster.map_endpoint("a", "a");
  cluster.map_endpoint("b", "b");
  cluster.map_endpoint("c", "c");
  cluster.set_host_domain("a", "site1");
  cluster.set_host_domain("b", "site1");
  cluster.set_host_domain("c", "site2");
  cluster.network().latency_s = 1e-3;
  cluster.network().wan_latency_s = 0.1;
  cluster.network().bandwidth_bytes_per_s = 1e18;
  cluster.network().wan_bandwidth_bytes_per_s = 1e18;

  EXPECT_DOUBLE_EQ(cluster.transfer_time("a", "b", 0), 1e-3);  // same site
  EXPECT_DOUBLE_EQ(cluster.transfer_time("a", "c", 0), 0.1);   // cross site
  EXPECT_DOUBLE_EQ(cluster.transfer_time("c", "a", 0), 0.1);
  // Unknown endpoints (external drivers) count as local.
  EXPECT_DOUBLE_EQ(cluster.transfer_time("", "a", 0), 1e-3);
  // Hosts in the implicit "" domain are local to each other.
  Cluster flat;
  flat.add_host("x", 100.0);
  flat.add_host("y", 100.0);
  flat.map_endpoint("x", "x");
  flat.map_endpoint("y", "y");
  EXPECT_DOUBLE_EQ(flat.transfer_time("x", "y", 0),
                   flat.network().transfer_time(0));
}

TEST(WanNetwork, BandwidthDiffersAcrossTheWan) {
  Cluster cluster;
  cluster.add_host("a", 100.0);
  cluster.add_host("b", 100.0);
  cluster.map_endpoint("a", "a");
  cluster.map_endpoint("b", "b");
  cluster.set_host_domain("a", "s1");
  cluster.set_host_domain("b", "s2");
  cluster.network().wan_latency_s = 0;
  cluster.network().wan_bandwidth_bytes_per_s = 1e6;
  EXPECT_DOUBLE_EQ(cluster.transfer_time("a", "b", 1000000), 1.0);
}

class PingServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Ping:1.0";
  }
  corba::Value dispatch(std::string_view op, const corba::ValueSeq&) override {
    if (op == "noop") return {};
    throw corba::BAD_OPERATION(std::string(op));
  }
};

TEST(WanNetwork, CrossDomainInvocationPaysWanLatency) {
  Cluster cluster;
  cluster.add_host("local", 100.0);
  cluster.add_host("far", 100.0);
  cluster.set_host_domain("local", "here");
  cluster.set_host_domain("far", "there");
  cluster.network().latency_s = 0.001;
  cluster.network().wan_latency_s = 0.2;
  cluster.network().bandwidth_bytes_per_s = 1e18;
  cluster.network().wan_bandwidth_bytes_per_s = 1e18;

  auto network = std::make_shared<corba::InProcessNetwork>();
  auto make_orb = [&](const std::string& endpoint) {
    cluster.map_endpoint(endpoint, endpoint);
    return corba::ORB::init(
        {.endpoint_name = endpoint,
         .network = network,
         .client_transport_override =
             std::make_shared<SimTransport>(cluster, network, endpoint)});
  };
  auto local_orb = make_orb("local");
  auto far_orb = make_orb("far");

  const corba::ObjectRef on_local =
      local_orb->activate(std::make_shared<PingServant>());
  const corba::ObjectRef on_far =
      far_orb->activate(std::make_shared<PingServant>());

  // local -> local: 2 x 1 ms.
  double t0 = cluster.events().now();
  local_orb->make_ref(on_local.ior()).invoke("noop", {});
  EXPECT_NEAR(cluster.events().now() - t0, 0.002, 1e-9);

  // local -> far: 2 x 200 ms.
  t0 = cluster.events().now();
  local_orb->make_ref(on_far.ior()).invoke("noop", {});
  EXPECT_NEAR(cluster.events().now() - t0, 0.4, 1e-9);
}

}  // namespace
}  // namespace sim
