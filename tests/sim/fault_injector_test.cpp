// Tests of the deterministic fault injector: plan validation, partition /
// link-fault / stall semantics at the injector level, and the CORBA
// exception mapping SimTransport applies per message hop.
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include "orb/exceptions.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"
#include "sim/sim_transport.hpp"
#include "sim/work_meter.hpp"

namespace sim {
namespace {

TEST(FaultPlanTest, ValidationRejectsBadPlans) {
  EXPECT_THROW(FaultInjector({.drop_probability = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector({.drop_probability = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector({.duplicate_probability = 2.0}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector({.latency_spike_s = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector({.partitions = {{0.0, 1.0, {}}}}),
               std::invalid_argument);
  EXPECT_THROW(
      FaultInjector({.stalls = {{.host = "a", .start = 0, .duration = -1}}}),
      std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector({.drop_probability = 0.5}));
}

TEST(FaultInjectorTest, PartitionBlocksAcrossTheCutOnly) {
  FaultInjector faults({.partitions = {{1.0, 5.0, {"a", "b"}}}});
  EXPECT_FALSE(faults.blocked("a", "c", 0.5));  // not started yet
  EXPECT_TRUE(faults.blocked("a", "c", 2.0));   // across the cut
  EXPECT_TRUE(faults.blocked("c", "b", 2.0));   // symmetric
  EXPECT_FALSE(faults.blocked("a", "b", 2.0));  // within the group
  EXPECT_FALSE(faults.blocked("c", "d", 2.0));  // within the rest
  EXPECT_FALSE(faults.blocked("a", "c", 5.0));  // healed
  ASSERT_TRUE(faults.heal_time("a", "c", 2.0).has_value());
  EXPECT_DOUBLE_EQ(*faults.heal_time("a", "c", 2.0), 5.0);
  EXPECT_FALSE(faults.heal_time("a", "c", 6.0).has_value());  // unblocked
}

TEST(FaultInjectorTest, NeverHealingPartitionHasNoHealTime) {
  FaultInjector faults({.partitions = {{.start = 1.0, .heal = 0.0,
                                        .group = {"a"}}}});
  EXPECT_TRUE(faults.blocked("a", "b", 100.0));
  EXPECT_FALSE(faults.heal_time("a", "b", 100.0).has_value());
}

TEST(FaultInjectorTest, LinkFaultIsPairwiseAndOrderInsensitive) {
  FaultInjector faults(
      {.link_faults = {{.host_a = "a", .host_b = "b", .start = 0, .heal = 2}}});
  EXPECT_TRUE(faults.blocked("a", "b", 1.0));
  EXPECT_TRUE(faults.blocked("b", "a", 1.0));
  EXPECT_FALSE(faults.blocked("a", "c", 1.0));
  EXPECT_FALSE(faults.blocked("a", "b", 3.0));
}

TEST(FaultInjectorTest, OriginShiftsScheduledItems) {
  FaultInjector faults({.partitions = {{2.0, 4.0, {"a"}}}});
  faults.set_origin(100.0);
  EXPECT_FALSE(faults.blocked("a", "b", 3.0));
  EXPECT_TRUE(faults.blocked("a", "b", 103.0));
  EXPECT_DOUBLE_EQ(*faults.heal_time("a", "b", 103.0), 104.0);
  EXPECT_FALSE(faults.blocked("a", "b", 105.0));
}

TEST(FaultInjectorTest, StallEndCoversActiveStallsOnly) {
  FaultInjector faults(
      {.stalls = {{.host = "a", .start = 1.0, .duration = 2.0}}});
  EXPECT_FALSE(faults.stall_end("a", 0.5).has_value());
  ASSERT_TRUE(faults.stall_end("a", 1.5).has_value());
  EXPECT_DOUBLE_EQ(*faults.stall_end("a", 1.5), 3.0);
  EXPECT_FALSE(faults.stall_end("b", 1.5).has_value());
  EXPECT_FALSE(faults.stall_end("a", 3.0).has_value());
}

TEST(FaultInjectorTest, SameSeedSameTrace) {
  const FaultPlan plan{.seed = 7,
                       .drop_probability = 0.3,
                       .duplicate_probability = 0.2,
                       .latency_spike_probability = 0.2,
                       .latency_spike_s = 1.0};
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 200; ++i) {
    a.fate("x", "y", i * 0.1, i % 2 == 0);
    b.fate("x", "y", i * 0.1, i % 2 == 0);
  }
  EXPECT_EQ(a.trace(), b.trace());
  EXPECT_GT(a.trace().size(), 0u);
  EXPECT_EQ(a.drops(), b.drops());

  FaultPlan other = plan;
  other.seed = 8;
  FaultInjector c(other);
  for (int i = 0; i < 200; ++i) c.fate("x", "y", i * 0.1, i % 2 == 0);
  EXPECT_NE(a.trace(), c.trace());
}

// --- transport-level exception mapping --------------------------------------

class EchoServant : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/tests/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "burn") {
      check_arity(op, args, 1);
      WorkMeter::charge(args[0].as_f64());
      ++calls_;
      return corba::Value(static_cast<std::int64_t>(calls_));
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  int calls_ = 0;
};

class FaultTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<corba::InProcessNetwork>();
    transport_ = std::make_shared<SimTransport>(cluster_, network_, "client");
    cluster_.network().latency_s = 0;
    cluster_.network().bandwidth_bytes_per_s = 1e18;
    cluster_.add_host("server", 100.0);
    cluster_.add_host("spare", 100.0);
    server_orb_ = corba::ORB::init({.endpoint_name = "server",
                                    .network = network_,
                                    .client_transport_override = transport_});
    cluster_.map_endpoint("server", "server");
    // The driving client runs on its own workstation so partitions between
    // it and the server have well-defined endpoints.
    cluster_.add_host("clienthost", 100.0);
    cluster_.map_endpoint("client", "clienthost");
    client_ = corba::ORB::init({.endpoint_name = "client",
                                .network = network_,
                                .client_transport_override = transport_});
    servant_ = std::make_shared<EchoServant>();
    ref_ = client_->make_ref(server_orb_->activate(servant_, "echo").ior());
  }

  void arm(FaultPlan plan) {
    cluster_.set_fault_injector(std::make_shared<FaultInjector>(plan));
  }
  /// Installs the injector at virtual time `t` — after the request hop but
  /// (with enough servant work) before the reply hop.
  void arm_at(double t, FaultPlan plan) {
    cluster_.events().schedule_at(t, [this, plan = std::move(plan)] {
      auto injector = std::make_shared<FaultInjector>(plan);
      injector->set_origin(0.0);
      cluster_.set_fault_injector(injector);
    });
  }

  corba::Value burn(double work) {
    return ref_.invoke("burn", {corba::Value(work)});
  }

  Cluster cluster_;
  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<SimTransport> transport_;
  std::shared_ptr<corba::ORB> server_orb_;
  std::shared_ptr<corba::ORB> client_;
  std::shared_ptr<EchoServant> servant_;
  corba::ObjectRef ref_;
};

TEST_F(FaultTransportTest, DroppedRequestIsCommFailureCompletedNo) {
  arm({.drop_probability = 1.0});
  try {
    burn(100.0);
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_no);
  }
  EXPECT_EQ(servant_->calls_, 0);
  EXPECT_EQ(cluster_.fault_injector()->drops(), 1u);
}

TEST_F(FaultTransportTest, DroppedReplyIsCommFailureCompletedMaybe) {
  // Injector armed at t=1, after the request (t=0) but before the reply
  // (t=5): only the reply hop sees the 100% drop.
  arm_at(1.0, {.drop_probability = 1.0});
  try {
    burn(500.0);
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
  }
  EXPECT_EQ(servant_->calls_, 1);  // the method DID run
}

TEST_F(FaultTransportTest, PartitionedRequestIsTransientUntilHeal) {
  arm({.partitions = {{0.0, 4.0, {"server"}}}});
  try {
    burn(100.0);
    FAIL() << "expected TRANSIENT";
  } catch (const corba::TRANSIENT& e) {
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_no);
  }
  EXPECT_EQ(servant_->calls_, 0);
  cluster_.events().run_until(4.5);
  EXPECT_EQ(burn(100.0).as_i64(), 1);  // healed
}

TEST_F(FaultTransportTest, ReplyHeldUntilPartitionHeals) {
  // Partition active over the reply hop (t=5) healing at t=20: the reply
  // arrives when TCP gets through, at the heal time.
  arm_at(1.0, {.partitions = {{0.0, 20.0, {"server"}}}});
  EXPECT_EQ(burn(500.0).as_i64(), 1);
  EXPECT_NEAR(cluster_.events().now(), 20.0, 1e-6);
}

TEST_F(FaultTransportTest, NeverHealingPartitionReplyIsCompletedMaybe) {
  arm_at(1.0, {.partitions = {{.start = 0.0, .heal = 0.0,
                               .group = {"server"}}}});
  try {
    burn(500.0);
    FAIL() << "expected COMM_FAILURE";
  } catch (const corba::COMM_FAILURE& e) {
    EXPECT_EQ(e.completed(), corba::CompletionStatus::completed_maybe);
  }
  EXPECT_EQ(servant_->calls_, 1);
}

TEST_F(FaultTransportTest, StalledHostServesAfterTheStall) {
  arm({.stalls = {{.host = "server", .start = 0.0, .duration = 3.0}}});
  EXPECT_EQ(burn(500.0).as_i64(), 1);
  // Dispatch deferred to t=3, then 5s of work.
  EXPECT_NEAR(cluster_.events().now(), 8.0, 1e-6);
  EXPECT_EQ(cluster_.fault_injector()->stall_deferrals(), 1u);
}

TEST_F(FaultTransportTest, DuplicatedRequestExecutesTwiceClientSeesOneReply) {
  arm({.duplicate_probability = 1.0});
  const corba::Value result = burn(100.0);
  EXPECT_EQ(result.as_i64(), 1);  // first completion wins
  EXPECT_EQ(servant_->calls_, 2);  // at-least-once delivery executed twice
  EXPECT_EQ(cluster_.fault_injector()->duplicates(), 1u);
}

TEST_F(FaultTransportTest, LatencySpikesDelayBothHops) {
  arm({.latency_spike_probability = 1.0, .latency_spike_s = 2.0});
  EXPECT_EQ(burn(500.0).as_i64(), 1);
  // 2s spike on the request, 5s work, 2s spike on the reply.
  EXPECT_NEAR(cluster_.events().now(), 9.0, 1e-6);
  EXPECT_EQ(cluster_.fault_injector()->latency_spikes(), 2u);
}

}  // namespace
}  // namespace sim
